//! The `thicketd` server: accept loop, bounded work queue, worker
//! pool, and the per-request pin lifecycle.
//!
//! Robustness invariants, in the order the request path enforces them:
//!
//! * **Event-driven accept.** The accept thread sits in blocking
//!   `accept(2)` — no poll tick, no idle wakeups, no added connection
//!   latency. Shutdown wakes it with a loopback connection (plus a
//!   nonblocking-fd fallback) instead of waiting out a sleep.
//! * **Bounded queueing.** Accepted connections enter a
//!   `sync_channel` of fixed depth. A full queue sheds the connection
//!   with a typed [`ServeError::Overloaded`] frame (carrying a retry
//!   hint) instead of queueing unboundedly — the client backs off, the
//!   server never falls behind silently.
//! * **One pin per request.** Every data-touching request opens a
//!   generation-pinned snapshot ([`Store::open_pinned_opts`]) *inside*
//!   the request scope and releases it on every exit path: success,
//!   typed error, deadline, client disconnect, and worker panic (the
//!   snapshot lives inside the `catch_unwind` closure, so an unwind
//!   drops it before the panic is even caught).
//! * **Per-request deadlines.** The clock starts when the request
//!   frame completes; stages check it between pin, select, and load.
//!   A blown deadline is a typed [`ServeError::DeadlineExceeded`], and
//!   the connection stays usable.
//! * **Panic isolation.** Request execution runs under
//!   `catch_unwind`, the same discipline as
//!   [`thicket_perfsim::parallel_map_catch`]: one poisoned request
//!   answers [`ServeError::Internal`]; the worker, the connection, and
//!   every other request keep going.
//! * **Graceful drain.** [`Server::shutdown`] stops the accept loop,
//!   lets workers finish (and answer) everything already queued or
//!   in flight, then joins them. In-flight pins are released by the
//!   normal request epilogue; nothing is abandoned.

use std::io::Read;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use thicket_core::{ProfileSource, StoreSource, Thicket, ThicketError};
use thicket_perfsim::{
    default_threads, Json, Profile, Store, StoreError, StoreOptions, Strictness,
};
use thicket_query::parse_pred;

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::proto::{NodeStat, Request, Response, ServeError, StatusInfo};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Depth of the bounded accept→worker queue; a full queue sheds.
    pub queue_depth: usize,
    /// Cap on a declared frame length (bytes), checked pre-allocation.
    pub max_frame: usize,
    /// Per-request deadline, measured from the completed request frame.
    pub request_deadline: Duration,
    /// Retry hint attached to `Overloaded` responses.
    pub retry_after: Duration,
    /// Socket read timeout: the tick at which idle workers poll the
    /// shutdown flag.
    pub idle_timeout: Duration,
    /// Harvest a connection (close it, freeing its worker) after this
    /// much continuous idleness between requests. With persistent
    /// client connections a worker is held for a connection's
    /// lifetime, so without a harvest `workers` idle clients would
    /// starve everyone else; the client's reconnect-on-stale path
    /// makes the close invisible to it.
    pub idle_harvest: Duration,
    /// Wall-time budget for one frame, first byte to last (the
    /// slow-loris cut).
    pub frame_deadline: Duration,
    /// Enable `debug_sleep` / `debug_panic` (tests only; off by
    /// default so production servers reject them as bad requests).
    pub enable_debug_ops: bool,
    /// Store knobs the per-request pins use (lease ttl, lock timeout).
    pub store: StoreOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 2,
            queue_depth: 32,
            max_frame: DEFAULT_MAX_FRAME,
            request_deadline: Duration::from_secs(10),
            retry_after: Duration::from_millis(50),
            idle_timeout: Duration::from_millis(200),
            idle_harvest: Duration::from_secs(5),
            frame_deadline: Duration::from_secs(2),
            enable_debug_ops: false,
            store: StoreOptions::default(),
        }
    }
}

/// Counters shared by the accept loop, the workers, and `status`.
struct ServerStats {
    served: AtomicU64,
    shed: AtomicU64,
    started: Instant,
}

/// A running `thicketd` instance; dropping it without
/// [`Server::shutdown`] aborts the threads non-gracefully at process
/// exit (tests should always shut down).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
    /// A dup of the listening socket, used only to flip the shared fd
    /// nonblocking at shutdown — the fallback wake for the blocking
    /// accept if the loopback wake connection cannot be made.
    listener: Option<TcpListener>,
}

/// Everything a worker needs to execute requests.
struct Engine {
    store_dir: PathBuf,
    opts: ServeOptions,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving the store at `store_dir`.
    pub fn bind(
        store_dir: impl Into<PathBuf>,
        addr: &str,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let listener_dup = listener.try_clone().ok();
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats {
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            started: Instant::now(),
        });
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(opts.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let engine = Arc::new(Engine {
            store_dir: store_dir.into(),
            opts: opts.clone(),
            stats: Arc::clone(&stats),
            shutdown: Arc::clone(&shutdown),
        });

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let retry_after = opts.retry_after;
            std::thread::spawn(move || accept_loop(listener, tx, shutdown, stats, retry_after))
        };

        let workers = (0..opts.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || worker_loop(rx, engine))
            })
            .collect();

        Ok(Server {
            addr: local,
            shutdown,
            accept: Some(accept),
            workers,
            stats,
            listener: listener_dup,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.stats.served.load(Ordering::Relaxed)
    }

    /// Connections shed with `Overloaded` so far.
    pub fn shed(&self) -> u64 {
        self.stats.shed.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join every thread. Returns once the last worker has
    /// exited — at which point every per-request pin is released.
    ///
    /// The accept thread sits in blocking `accept(2)` (no poll tick),
    /// so shutdown wakes it explicitly: flip the shared listening fd
    /// nonblocking (a dup shares file status flags, so the blocked
    /// accept returns `WouldBlock`), then make a throwaway loopback
    /// connection for the common case where the fd dup failed.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(listener) = &self.listener {
            let _ = listener.set_nonblocking(true);
        }
        let _ = TcpStream::connect_timeout(&wake_addr(self.addr), Duration::from_millis(200));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Where shutdown's wake connection should aim: the bound address,
/// with an unspecified IP (0.0.0.0 / ::) rewritten to loopback so the
/// connect actually lands on this host's listener.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    let mut addr = addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// The accept thread: blocking `accept(2)`, no poll tick. Between
/// connections it burns zero CPU and adds zero latency — the kernel
/// hands over each connection the moment it completes. Shutdown wakes
/// it via [`Server::shutdown`]'s loopback connection (or the
/// nonblocking-fd fallback), after which the flag check exits the loop.
fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<TcpStream>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    retry_after: Duration,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    // The shutdown wake connection itself (or a client
                    // racing the drain): hang up unanswered — the
                    // client's retry policy treats it as transient.
                    drop(stream);
                    break;
                }
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) | Err(TrySendError::Disconnected(stream)) => {
                        // Shed: answer with a typed Overloaded frame on
                        // the accept thread (tiny write) and hang up.
                        stats.shed.fetch_add(1, Ordering::Relaxed);
                        shed_connection(stream, retry_after);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Only reachable after shutdown flipped the listener
                // nonblocking; the flag check at the top exits.
            }
            // Transient accept failure (EMFILE, aborted handshake):
            // brief pause so a persistent error cannot spin the thread.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping tx closes the queue: workers drain what is already
    // inside and then exit.
}

fn shed_connection(mut stream: TcpStream, retry_after: Duration) {
    let resp = Response::Error(ServeError::Overloaded {
        retry_after_ms: retry_after.as_millis() as u64,
    });
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    if write_frame(&mut stream, resp.to_json().to_string_compact().as_bytes()).is_err() {
        return;
    }
    // The client's request bytes are still unread in our receive buffer
    // (shedding never reads them); closing a socket with unread data
    // sends RST, which can destroy the Overloaded frame before the
    // client reads it. Signal end-of-responses, then drain the request
    // until the client's EOF so the eventual close is graceful.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn worker_loop(rx: Arc<Mutex<Receiver<TcpStream>>>, engine: Arc<Engine>) {
    loop {
        // Hold the lock only for the recv itself.
        let next = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            guard.recv()
        };
        match next {
            Ok(stream) => engine.handle_connection(stream),
            // Channel closed and drained: the accept loop is gone and
            // nothing is queued — the drain is complete.
            Err(_) => return,
        }
    }
}

impl Engine {
    /// Serve one (possibly persistent) connection: frames in, frames
    /// out, until the peer hangs up, violates the protocol, or the
    /// server drains.
    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(self.opts.idle_timeout));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_nodelay(true);
        let mut idle = Duration::ZERO;
        loop {
            let payload =
                match read_frame(&mut stream, self.opts.max_frame, self.opts.frame_deadline) {
                    Ok(Some(p)) => {
                        idle = Duration::ZERO;
                        p
                    }
                    // Clean disconnect at a frame boundary.
                    Ok(None) => return,
                    Err(FrameError::IdleTimeout) => {
                        // No request in progress: close if draining or
                        // if the peer has idled past the harvest budget
                        // (frees this worker for queued connections);
                        // otherwise keep waiting.
                        if self.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        idle += self.opts.idle_timeout;
                        if idle >= self.opts.idle_harvest {
                            return;
                        }
                        continue;
                    }
                    Err(e @ FrameError::Oversized { .. }) => {
                        // Typed refusal, then hang up: the stream
                        // position is unrecoverable past a bad length.
                        self.respond(
                            &mut stream,
                            Response::Error(ServeError::BadRequest(e.to_string())),
                        );
                        return;
                    }
                    // Torn frame, slow-loris, hard I/O error: nothing
                    // sane can be written back.
                    Err(_) => return,
                };

            if self.shutdown.load(Ordering::SeqCst) {
                self.respond(&mut stream, Response::Error(ServeError::ShuttingDown));
                return;
            }

            let response = match parse_request(&payload) {
                Err(detail) => Response::Error(ServeError::BadRequest(detail)),
                Ok(request) => {
                    let deadline = Instant::now() + self.opts.request_deadline;
                    // The snapshot (pin) is created inside this
                    // closure, so a panicking request drops it during
                    // unwind — before catch_unwind even reports.
                    match catch_unwind(AssertUnwindSafe(|| self.execute(request, deadline))) {
                        Ok(resp) => {
                            self.stats.served.fetch_add(1, Ordering::Relaxed);
                            resp
                        }
                        Err(_) => Response::Error(ServeError::Internal(
                            "request worker panicked; request isolated, pin released".into(),
                        )),
                    }
                }
            };
            if !self.respond(&mut stream, response) {
                return;
            }
        }
    }

    /// Write one response frame; false means the connection is dead.
    fn respond(&self, stream: &mut TcpStream, response: Response) -> bool {
        write_frame(stream, response.to_json().to_string_compact().as_bytes()).is_ok()
    }

    fn execute(&self, request: Request, deadline: Instant) -> Response {
        match self.execute_inner(request, deadline) {
            Ok(resp) => resp,
            Err(e) => Response::Error(e),
        }
    }

    fn execute_inner(&self, request: Request, deadline: Instant) -> Result<Response, ServeError> {
        match request {
            Request::Status => {
                let snap = self.pin()?;
                check_deadline(deadline)?;
                Ok(Response::Status(StatusInfo {
                    generation: snap.generation(),
                    profiles: snap.manifest().profiles.len(),
                    served: self.stats.served.load(Ordering::Relaxed),
                    shed: self.stats.shed.load(Ordering::Relaxed),
                    uptime_ms: self.stats.started.elapsed().as_millis() as u64,
                }))
            }
            Request::LoadMatching { pred } => {
                let snap = self.pin()?;
                check_deadline(deadline)?;
                let (generation, profiles) = load_matching(snap, pred.as_deref(), deadline)?;
                Ok(Response::Profiles { generation, profiles })
            }
            Request::Query { query, pred } => {
                let snap = self.pin()?;
                check_deadline(deadline)?;
                // load_matching consumes the snapshot, so the pin is
                // released before the CPU-bound compose below.
                let (_, profiles) = load_matching(snap, pred.as_deref(), deadline)?;
                check_deadline(deadline)?;
                let (tk, _) = Thicket::loader(profiles)
                    .load()
                    .map_err(|e| ServeError::Internal(format!("compose: {e}")))?;
                check_deadline(deadline)?;
                let queried = tk
                    .query_str(&query)
                    .map_err(|e| ServeError::BadRequest(format!("query: {e}")))?;
                let graph = queried.graph();
                let nodes = graph.ids().map(|id| graph.node(id).name().to_string()).collect();
                Ok(Response::Nodes { nodes, rows: queried.perf_data().len() })
            }
            Request::NodeStats { metric, pred } => {
                let snap = self.pin()?;
                check_deadline(deadline)?;
                let (_, profiles) = load_matching(snap, pred.as_deref(), deadline)?;
                check_deadline(deadline)?;
                Ok(Response::Stats { rows: node_stats(&profiles, &metric), metric })
            }
            Request::DebugSleep { ms } => {
                self.debug_op("debug_sleep")?;
                // Pin while sleeping: the op models a long-running
                // query holding its snapshot, which is exactly what
                // drain and daemon-kill tests need to observe.
                let _snap = self.pin()?;
                // Sleep in slices so the deadline stays honest even
                // mid-sleep; keep going through a drain (in-flight
                // work finishes during shutdown by design).
                let until = Instant::now() + Duration::from_millis(ms);
                while Instant::now() < until {
                    check_deadline(deadline)?;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Ok(Response::Done)
            }
            Request::DebugPanic => {
                self.debug_op("debug_panic")?;
                panic!("injected debug panic (worker isolation test)");
            }
        }
    }

    fn debug_op(&self, name: &str) -> Result<(), ServeError> {
        if self.opts.enable_debug_ops {
            Ok(())
        } else {
            Err(ServeError::BadRequest(format!("{name} requires enable_debug_ops")))
        }
    }

    /// Pin a snapshot for the current request, mapping store
    /// contention to the typed `Busy` response.
    fn pin(&self) -> Result<thicket_perfsim::Snapshot, ServeError> {
        Store::open_pinned_opts(&self.store_dir, &self.opts.store).map_err(store_error)
    }
}

fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    let doc = Json::parse(text).map_err(|e| format!("frame is not JSON: {e}"))?;
    Request::from_json(&doc)
}

fn check_deadline(deadline: Instant) -> Result<(), ServeError> {
    if Instant::now() >= deadline {
        Err(ServeError::DeadlineExceeded)
    } else {
        Ok(())
    }
}

fn store_error(e: StoreError) -> ServeError {
    match e {
        StoreError::Busy { waited } => {
            ServeError::Busy { waited_ms: waited.as_millis() as u64 }
        }
        other => ServeError::Internal(format!("store: {other}")),
    }
}

/// Load the profiles matching an optional dialect predicate off a
/// pinned snapshot, routed through the same [`ProfileSource`] the
/// loader uses for every store read: the snapshot becomes a
/// [`StoreSource`], the predicate is pushed down to its columnar
/// manifest selection, and chunks are pulled with a deadline check
/// between each. Consumes the snapshot — the pin is released when the
/// source is dropped, before this function returns.
fn load_matching(
    snap: thicket_perfsim::Snapshot,
    pred: Option<&str>,
    deadline: Instant,
) -> Result<(u64, Vec<Profile>), ServeError> {
    let expr = match pred {
        None => None,
        Some(text) => Some(
            parse_pred(text).map_err(|e| ServeError::BadRequest(format!("predicate: {e}")))?,
        ),
    };
    check_deadline(deadline)?;
    let generation = snap.generation();
    let threads = default_threads(snap.manifest().profiles.len());
    let mut src = StoreSource::from_snapshot(snap, Some(threads), Strictness::FailFast);
    if let Some(expr) = &expr {
        // A snapshot-backed source always claims the pushdown (no
        // entry filter is set), so chunks arrive pre-selected.
        let _ = src.push_filter(expr);
    }
    let mut profiles = Vec::new();
    while let Some(chunk) = src.next_chunk().map_err(load_error)? {
        profiles.extend(chunk);
        check_deadline(deadline)?;
    }
    Ok((generation, profiles))
}

/// Map a source-load failure to the wire: store contention stays the
/// typed retryable `Busy`, anything else is internal.
fn load_error(e: ThicketError) -> ServeError {
    match e {
        ThicketError::Store(StoreError::Busy { waited }) => {
            ServeError::Busy { waited_ms: waited.as_millis() as u64 }
        }
        other => ServeError::Internal(format!("store load: {other}")),
    }
}

/// Per-node aggregate stats of `metric` across `profiles`: count,
/// mean, min, max keyed by node name, first-seen order.
fn node_stats(profiles: &[Profile], metric: &str) -> Vec<NodeStat> {
    let mut order: Vec<String> = Vec::new();
    let mut agg: std::collections::HashMap<String, (u64, f64, f64, f64)> =
        std::collections::HashMap::new();
    for p in profiles {
        let graph = p.graph();
        for id in graph.ids() {
            let Some(v) = p.metric(id, metric) else { continue };
            let name = graph.node(id).name();
            let entry = agg.entry(name.to_string()).or_insert_with(|| {
                order.push(name.to_string());
                (0, 0.0, f64::INFINITY, f64::NEG_INFINITY)
            });
            entry.0 += 1;
            entry.1 += v;
            entry.2 = entry.2.min(v);
            entry.3 = entry.3.max(v);
        }
    }
    order
        .into_iter()
        .map(|node| {
            let (count, sum, min, max) = agg[&node];
            NodeStat { node, count, mean: sum / count as f64, min, max }
        })
        .collect()
}
