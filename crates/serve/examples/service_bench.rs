//! PERF.md workload driver for W6: N concurrent clients hammering one
//! `thicketd` server with filtered loads, printed as ready-to-paste
//! markdown.
//!
//! ```sh
//! cargo run -p thicket-serve --release --example service_bench           # 2000 profiles
//! cargo run -p thicket-serve --release --example service_bench -- 200   # smaller store
//! ```
//!
//! One server (in-process, same code path as the `thicketd serve` verb),
//! a client-count sweep at 1/2/4/8 concurrent [`ThicketClient`]s, each
//! issuing a fixed batch of requests over a persistent connection:
//!
//! * **status** — the empty round trip: frame codec + dispatch + one
//!   snapshot pin/release, no payload to speak of. This is the protocol
//!   floor.
//! * **filtered load** — `seed < 10` over the full store: metadata
//!   pushdown below the shard read server-side, then 10 profiles
//!   decoded, re-encoded as JSON frames, and parsed back client-side.
//!   This is the workload the service exists for.
//!
//! Per cell: median per-request latency across every request in the
//! sweep, plus aggregate throughput (requests / wall time). Workers are
//! fixed at 2 so the client sweep is the only variable.

use std::time::Instant;

use thicket_perfsim::{simulate_cpu_run, CpuRunConfig, Store};
use thicket_serve::{ServeOptions, Server, ThicketClient};

/// Requests per client per cell — enough for a stable median, small
/// enough that the full sweep stays in seconds.
const BATCH: usize = 20;

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Run `clients` concurrent clients, each issuing `BATCH` requests via
/// `op`; returns (median per-request ms, aggregate requests/sec).
fn sweep_cell(addr: &str, clients: usize, op: fn(&ThicketClient)) -> (f64, f64) {
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let client = ThicketClient::new(&addr);
                (0..BATCH)
                    .map(|_| {
                        let t = Instant::now();
                        op(&client);
                        t.elapsed().as_secs_f64() * 1e3
                    })
                    .collect::<Vec<f64>>()
            })
        })
        .collect();
    let mut samples: Vec<f64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    let wall_s = wall.elapsed().as_secs_f64();
    let rps = samples.len() as f64 / wall_s;
    (median_ms(&mut samples), rps)
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000)
        .max(10); // the filtered-load cell asserts on a 10-profile subset

    let nproc = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "rustc (version unavailable)".into());
    println!("_host: nproc = {nproc}, {rustc}_\n");

    eprintln!("seeding {n}-profile store...");
    let dir = std::env::temp_dir().join("thicket-service-bench");
    let _ = std::fs::remove_dir_all(&dir);
    let profiles: Vec<_> = (0..n)
        .map(|seed| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect();
    Store::save(&dir, &profiles).unwrap();
    drop(profiles);

    let server = Server::bind(&dir, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.addr().to_string();

    println!("## W6: concurrent clients vs one thicketd, {n}-profile store, 2 workers\n");
    println!("| clients | status median | status req/s | filtered load median | load req/s |");
    println!("|---|---|---|---|---|");
    for clients in [1usize, 2, 4, 8] {
        let (status_ms, status_rps) = sweep_cell(&addr, clients, |c| {
            c.status().unwrap();
        });
        let (load_ms, load_rps) = sweep_cell(&addr, clients, |c| {
            let (_, got) = c.load_matching(Some("seed < 10")).unwrap();
            assert_eq!(got.len(), 10, "pushdown returned the wrong subset");
        });
        println!(
            "| {clients} | {status_ms:.2} ms | {status_rps:.0} | {load_ms:.1} ms | {load_rps:.0} |"
        );
    }

    server.shutdown();
    let leases = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("pin-"))
        .count();
    assert_eq!(leases, 0, "bench leaked {leases} pin leases");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("done (zero pin leases left behind)");
}
