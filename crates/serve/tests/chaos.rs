//! The wire chaos suite: drive every [`FaultKind::WIRE`] fault against
//! a live `thicketd` and assert the ISSUE's acceptance contract —
//! every in-flight request ends in a typed response or a clean
//! disconnect, the (restarted) daemon keeps serving, fsck reports
//! nothing worse than `StaleLease`, and after GC the store holds zero
//! leaked pin leases and exactly one complete newest generation.
//!
//! Four of the five faults are socket-level and run against an
//! in-process [`Server`]; `DaemonKill` needs a real process to SIGKILL
//! and uses the repo's child-test subprocess pattern (a `#[test]`
//! body gated by an env var, spawned via `current_exe`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use thicket_perfsim::{
    simulate_cpu_run, CpuRunConfig, DiagKind, FaultKind, Json, Profile, Store,
};
use thicket_serve::{
    read_frame, write_frame, Request, Response, ServeError, ServeOptions, Server, ThicketClient,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-chaos-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(seed: u64) -> Profile {
    let mut cfg = CpuRunConfig::quartz_default();
    cfg.seed = seed;
    simulate_cpu_run(&cfg)
}

fn pin_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("pin-"))
        .count()
}

/// Wait (bounded) for every per-request pin to be released.
fn await_zero_pins(dir: &Path, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while pin_count(dir) != 0 {
        assert!(Instant::now() < deadline, "{what}: pin lease leaked");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn raw_response(stream: &mut TcpStream) -> Response {
    let frame = read_frame(stream, 8 << 20, Duration::from_secs(10))
        .unwrap()
        .expect("server closed before responding");
    Response::from_json(&Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()).unwrap()
}

/// The server must answer a well-formed request after each fault: the
/// probe that proves one poisoned connection cannot poison the daemon.
fn assert_still_serving(addr: &str, fault: FaultKind) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(
        &mut stream,
        Request::Status.to_json().to_string_compact().as_bytes(),
    )
    .unwrap();
    let resp = raw_response(&mut stream);
    assert!(
        matches!(resp, Response::Status(_)),
        "after {fault:?}: expected Status, got {resp:?}"
    );
}

/// Socket-level faults: torn frame, oversized declared length,
/// slow-loris writer, mid-request connection kill — each followed by a
/// health probe and a zero-leaked-pins check, then a drain.
#[test]
fn socket_fault_schedule_leaves_no_leases_and_a_serving_daemon() {
    let dir = tmp("socket");
    Store::save(&dir, &(0..4).map(run).collect::<Vec<_>>()).unwrap();
    let opts = ServeOptions {
        idle_timeout: Duration::from_millis(100),
        frame_deadline: Duration::from_millis(300),
        enable_debug_ops: true,
        ..ServeOptions::default()
    };
    let server = Server::bind(&dir, "127.0.0.1:0", opts).unwrap();
    let addr = server.addr().to_string();

    let mut covered = 0;
    for fault in FaultKind::WIRE {
        match fault {
            FaultKind::TornFrame => {
                // Half a length prefix, then hang up: the server must
                // treat it as a torn frame and just drop the peer.
                let mut s = TcpStream::connect(&addr).unwrap();
                s.write_all(&[0x00, 0x00]).unwrap();
                drop(s);
            }
            FaultKind::OversizedFrame => {
                // Declare ~4 GiB. The typed refusal must come back
                // without the server ever allocating the buffer.
                let mut s = TcpStream::connect(&addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s.write_all(&u32::MAX.to_be_bytes()).unwrap();
                match raw_response(&mut s) {
                    Response::Error(ServeError::BadRequest(detail)) => {
                        assert!(detail.contains("exceeds cap"), "{detail}")
                    }
                    other => panic!("oversized frame got {other:?}"),
                }
                // Past a bad length the stream is unrecoverable: the
                // server must hang up after the refusal.
                let mut rest = Vec::new();
                s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                assert_eq!(s.read_to_end(&mut rest).unwrap_or(0), 0);
            }
            FaultKind::SlowLoris => {
                // Trickle a valid frame slower than the frame
                // deadline: the server must cut us off, not camp a
                // worker forever.
                let mut s = TcpStream::connect(&addr).unwrap();
                let wire = {
                    let mut w = Vec::new();
                    write_frame(&mut w, br#"{"op": "status"}"#).unwrap();
                    w
                };
                let t0 = Instant::now();
                let mut cut = false;
                for b in wire {
                    if s.write_all(&[b]).is_err() {
                        cut = true;
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(150));
                }
                if !cut {
                    // Writes can succeed into the OS buffer after the
                    // server closed; the read makes the cut visible.
                    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                    let mut buf = [0u8; 16];
                    cut = matches!(s.read(&mut buf), Ok(0) | Err(_));
                }
                assert!(cut, "slow-loris writer was never cut off");
                assert!(
                    t0.elapsed() < Duration::from_secs(10),
                    "slow-loris defense took implausibly long"
                );
            }
            FaultKind::ConnectionKill => {
                // A full, valid, pin-taking request — and the client
                // vanishes before the response. The server must finish
                // or abort it internally and release the pin either way.
                let mut s = TcpStream::connect(&addr).unwrap();
                write_frame(
                    &mut s,
                    Request::LoadMatching { pred: None }
                        .to_json()
                        .to_string_compact()
                        .as_bytes(),
                )
                .unwrap();
                drop(s);
            }
            // Needs a real process to SIGKILL; exercised in
            // kill_nine_daemon_recovers below.
            FaultKind::DaemonKill => {}
            other => panic!("unexpected fault in WIRE: {other:?}"),
        }
        covered += 1;
        assert_still_serving(&addr, fault);
        await_zero_pins(&dir, &format!("{fault:?}"));
    }
    assert_eq!(covered, FaultKind::WIRE.len(), "schedule missed a wire fault");

    server.shutdown();
    assert_eq!(pin_count(&dir), 0);
    let fsck = Store::fsck(&dir).unwrap();
    assert!(fsck.is_clean(), "{fsck}");
    std::fs::remove_dir_all(dir).ok();
}

/// Subprocess body for [`kill_nine_daemon_recovers`]: a real `thicketd`
/// server process the parent SIGKILLs mid-request. Run only when
/// `THICKETD_CHILD_STORE` is set.
#[test]
fn child_server_loop() {
    let Ok(store) = std::env::var("THICKETD_CHILD_STORE") else {
        return; // Normal test runs: nothing to do.
    };
    let portfile = std::env::var("THICKETD_CHILD_PORTFILE").expect("portfile env");
    let opts = ServeOptions { enable_debug_ops: true, ..ServeOptions::default() };
    let server = Server::bind(&store, "127.0.0.1:0", opts).expect("child bind");
    // Write-then-rename so the parent never reads a half-written port.
    let tmp_path = format!("{portfile}.tmp");
    std::fs::write(&tmp_path, server.addr().to_string()).unwrap();
    std::fs::rename(&tmp_path, &portfile).unwrap();
    loop {
        // The parent SIGKILLs this process; no graceful path runs.
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// `FaultKind::DaemonKill`: SIGKILL the daemon while a request holds a
/// pinned snapshot. The lease file survives its owner; fsck must type
/// it `StaleLease` (and find nothing worse), a restarted daemon must
/// serve, and the next commit's GC must reap the lease — zero leaked
/// pins, one complete newest generation, zero records lost.
#[test]
fn kill_nine_daemon_recovers() {
    let dir = tmp("kill9");
    Store::save(&dir, &(0..4).map(run).collect::<Vec<_>>()).unwrap();
    let portfile = std::env::temp_dir().join("thicket-chaos-kill9.port");
    let _ = std::fs::remove_file(&portfile);

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["child_server_loop", "--exact", "--nocapture"])
        .env("THICKETD_CHILD_STORE", &dir)
        .env("THICKETD_CHILD_PORTFILE", &portfile)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child server");

    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&portfile) {
            break addr;
        }
        assert!(Instant::now() < deadline, "child server never published a port");
        std::thread::sleep(Duration::from_millis(10));
    };

    // Put a pin-holding request in flight (never read the response),
    // wait for the lease to exist, then kill the daemon cold.
    let mut inflight = TcpStream::connect(addr.trim()).unwrap();
    write_frame(
        &mut inflight,
        Request::DebugSleep { ms: 30_000 }
            .to_json()
            .to_string_compact()
            .as_bytes(),
    )
    .unwrap();
    while pin_count(&dir) == 0 {
        assert!(Instant::now() < deadline, "in-flight request never pinned");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL daemon");
    child.wait().expect("reap daemon");
    drop(inflight);

    // The dead daemon's lease survives it; fsck types it StaleLease
    // and finds nothing worse (DaemonKill maps to exactly this
    // diagnostic in the fault taxonomy).
    assert_eq!(pin_count(&dir), 1, "SIGKILL should strand the lease file");
    let fsck = Store::fsck(&dir).unwrap();
    assert!(!fsck.is_clean(), "stranded lease went unreported: {fsck}");
    assert!(!fsck.coordination.is_empty());
    for diag in &fsck.coordination {
        assert!(
            FaultKind::DaemonKill.matches(&diag.kind),
            "finding {diag} is not a DaemonKill signature"
        );
        assert!(matches!(diag.kind, DiagKind::StaleLease { .. }), "{diag}");
    }
    assert_eq!(fsck.newest_intact, Some(1), "data generation must survive the kill");

    // A restarted daemon serves immediately — the stale lease blocks
    // nothing but GC of its generation.
    let server = Server::bind(&dir, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let client = ThicketClient::new(server.addr().to_string());
    let (generation, profiles) = client.load_matching(Some("seed >= 2")).unwrap();
    assert_eq!(generation, 1);
    assert_eq!(profiles.len(), 2);
    let (nodes, _) = client.query_nodes(r#"("*", name contains "Stream")"#, None).unwrap();
    assert!(!nodes.is_empty());
    server.shutdown();

    // GC rides on commits: the next append reaps the dead daemon's
    // lease. Zero leaked pins, one complete newest generation, all
    // five records present.
    Store::append(&dir, &[run(4)]).unwrap();
    assert_eq!(pin_count(&dir), 0, "stale lease survived the commit GC");
    let fsck = Store::fsck(&dir).unwrap();
    assert!(fsck.is_clean(), "{fsck}");
    let reader = Store::open(&dir).unwrap();
    let (all, rep) = reader.load_all().unwrap();
    assert!(rep.is_clean(), "{rep}");
    let mut seeds: Vec<i64> = all
        .iter()
        .map(|p| p.metadata("seed").unwrap().as_i64().unwrap())
        .collect();
    seeds.sort_unstable();
    assert_eq!(seeds, vec![0, 1, 2, 3, 4], "records lost across the kill");
    std::fs::remove_dir_all(dir).ok();
    std::fs::remove_file(portfile).ok();
}
