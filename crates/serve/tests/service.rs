//! End-to-end service suite: a live `thicketd` [`Server`] on an
//! ephemeral port, driven through [`ThicketClient`] and through raw
//! frames where the test needs to violate the client's manners.
//!
//! Robustness invariants under test, one per test:
//! correct filtered/query/stats results off a pinned snapshot; typed
//! `Overloaded` shedding under a full queue (and client recovery via
//! budgeted backoff); typed `DeadlineExceeded` on a blown per-request
//! deadline; worker panic isolation; graceful drain of in-flight work;
//! typed `BadRequest` for malformed frames on a connection that stays
//! usable. Every test ends asserting the store carries **zero pin
//! lease files** — the per-request pin lifecycle is the headline.

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use thicket_perfsim::{simulate_cpu_run, CpuRunConfig, Json, Profile, Store};
use thicket_serve::{
    read_frame, write_frame, ClientOptions, Request, Response, ServeError, ServeOptions, Server,
    ThicketClient,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-serve-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(seed: u64) -> Profile {
    let mut cfg = CpuRunConfig::quartz_default();
    cfg.seed = seed;
    simulate_cpu_run(&cfg)
}

fn seed_store(dir: &Path, n: u64) -> Vec<Profile> {
    let profiles: Vec<Profile> = (0..n).map(run).collect();
    Store::save(dir, &profiles).unwrap();
    profiles
}

fn pin_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("pin-"))
        .count()
}

fn debug_opts() -> ServeOptions {
    ServeOptions { enable_debug_ops: true, ..ServeOptions::default() }
}

/// One raw round trip on a fresh connection, no retries, no manners.
fn raw_request(addr: &str, request: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(&mut stream, request.to_json().to_string_compact().as_bytes()).unwrap();
    let frame = read_frame(&mut stream, 8 << 20, Duration::from_secs(10))
        .unwrap()
        .expect("server closed before responding");
    Response::from_json(&Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()).unwrap()
}

#[test]
fn filtered_load_query_stats_status_round_trip() {
    let dir = tmp("roundtrip");
    let profiles = seed_store(&dir, 6);
    let server = Server::bind(&dir, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let client = ThicketClient::new(server.addr().to_string());

    // Filtered load returns exactly the predicate's subset, decoded
    // back into real profiles (hashes match the originals).
    let (generation, loaded) = client.load_matching(Some("seed >= 3")).unwrap();
    assert_eq!(generation, 1);
    assert_eq!(loaded.len(), 3);
    let want: std::collections::BTreeSet<i64> = profiles
        .iter()
        .filter(|p| p.metadata("seed").and_then(|v| v.as_i64()).unwrap() >= 3)
        .map(Profile::profile_hash)
        .collect();
    let got: std::collections::BTreeSet<i64> =
        loaded.iter().map(Profile::profile_hash).collect();
    assert_eq!(got, want, "wire round trip changed profile content");

    // Unfiltered load: everything.
    let (_, all) = client.load_matching(None).unwrap();
    assert_eq!(all.len(), 6);

    // Call-path query runs server-side over the composed thicket.
    let (nodes, rows) = client
        .query_nodes(r#"("*", name contains "Stream")"#, Some("seed >= 3"))
        .unwrap();
    assert!(nodes.iter().any(|n| n == "Stream_MUL"), "nodes: {nodes:?}");
    assert!(rows > 0);

    // Per-node stats aggregate across the matching profiles.
    let stats = client.node_stats("time (exc)", None).unwrap();
    let mul = stats.iter().find(|r| r.node == "Stream_MUL").expect("Stream_MUL row");
    assert_eq!(mul.count, 6, "one observation per profile");
    assert!(mul.min <= mul.mean && mul.mean <= mul.max);

    // Status reflects the pinned generation and the served counter.
    let status = client.status().unwrap();
    assert_eq!(status.generation, 1);
    assert_eq!(status.profiles, 6);
    assert!(status.served >= 4);

    server.shutdown();
    assert_eq!(pin_count(&dir), 0, "a request leaked its pin lease");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn full_queue_sheds_typed_overloaded_and_client_backs_off_into_success() {
    let dir = tmp("overload");
    seed_store(&dir, 2);
    let opts = ServeOptions {
        workers: 1,
        queue_depth: 1,
        ..debug_opts()
    };
    let server = Server::bind(&dir, "127.0.0.1:0", opts).unwrap();
    let addr = server.addr().to_string();

    // Occupy the single worker for a while.
    let blocker = {
        let addr = addr.clone();
        std::thread::spawn(move || raw_request(&addr, &Request::DebugSleep { ms: 800 }))
    };
    std::thread::sleep(Duration::from_millis(150)); // worker now busy

    // Concurrent flood: with one worker busy and a depth-1 queue, at
    // most one of these can queue — the rest must be shed with a typed
    // Overloaded carrying a retry hint.
    let flood: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || raw_request(&addr, &Request::Status))
        })
        .collect();
    let mut overloaded = 0;
    for h in flood {
        if let Response::Error(ServeError::Overloaded { retry_after_ms }) = h.join().unwrap() {
            assert!(retry_after_ms > 0);
            overloaded += 1;
        }
    }
    assert!(overloaded >= 1, "full queue never shed");

    // A polite client retries under its budgeted backoff and lands
    // once the blocker finishes.
    let client = ThicketClient::with_options(
        &addr,
        ClientOptions {
            deadline: Duration::from_secs(10),
            backoff_seed: 7,
            ..ClientOptions::default()
        },
    );
    let status = client.status().unwrap();
    assert_eq!(status.profiles, 2);

    assert!(matches!(blocker.join().unwrap(), Response::Done));
    assert!(server.shed() >= 1);
    server.shutdown();
    assert_eq!(pin_count(&dir), 0);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn blown_deadline_is_a_typed_response_and_releases_the_pin() {
    let dir = tmp("deadline");
    seed_store(&dir, 2);
    let opts = ServeOptions {
        request_deadline: Duration::from_millis(100),
        ..debug_opts()
    };
    let server = Server::bind(&dir, "127.0.0.1:0", opts).unwrap();
    let addr = server.addr().to_string();

    let resp = raw_request(&addr, &Request::DebugSleep { ms: 5_000 });
    assert!(
        matches!(resp, Response::Error(ServeError::DeadlineExceeded)),
        "expected DeadlineExceeded, got {resp:?}"
    );
    // The server survives and the blown request dropped its pin.
    assert!(matches!(raw_request(&addr, &Request::Status), Response::Status(_)));
    server.shutdown();
    assert_eq!(pin_count(&dir), 0);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn worker_panic_is_isolated_typed_and_leaks_nothing() {
    let dir = tmp("panic");
    seed_store(&dir, 2);
    let server = Server::bind(&dir, "127.0.0.1:0", debug_opts()).unwrap();
    let addr = server.addr().to_string();

    match raw_request(&addr, &Request::DebugPanic) {
        Response::Error(ServeError::Internal(detail)) => {
            assert!(detail.contains("panicked"), "{detail}")
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    // The worker pool survives: real work still completes.
    let (_, loaded) = ThicketClient::new(&addr).load_matching(None).unwrap();
    assert_eq!(loaded.len(), 2);
    server.shutdown();
    assert_eq!(pin_count(&dir), 0, "panicked request leaked its pin");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let dir = tmp("drain");
    seed_store(&dir, 2);
    let server = Server::bind(&dir, "127.0.0.1:0", debug_opts()).unwrap();
    let addr = server.addr().to_string();

    // Put a pin-holding request in flight, then shut down underneath it.
    let inflight = {
        let addr = addr.clone();
        std::thread::spawn(move || raw_request(&addr, &Request::DebugSleep { ms: 600 }))
    };
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(pin_count(&dir), 1, "in-flight request should hold its pin");

    let t0 = Instant::now();
    server.shutdown();
    // Drain semantics: the in-flight request finished (Done, not an
    // error), shutdown waited for it, and its pin is gone.
    assert!(t0.elapsed() >= Duration::from_millis(200), "shutdown did not wait");
    assert!(matches!(inflight.join().unwrap(), Response::Done));
    assert_eq!(pin_count(&dir), 0, "drained request leaked its pin");
    // And the listener is really gone.
    assert!(TcpStream::connect(&addr).is_err(), "listener survived shutdown");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn malformed_frames_get_typed_bad_request_and_connection_survives() {
    let dir = tmp("badreq");
    seed_store(&dir, 2);
    let server = Server::bind(&dir, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.addr().to_string();

    // One persistent connection: garbage JSON, unknown op, disabled
    // debug op — each answered with a typed BadRequest — then a real
    // request still works on the same connection.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut ask = |payload: &[u8]| -> Response {
        write_frame(&mut stream, payload).unwrap();
        let frame = read_frame(&mut stream, 8 << 20, Duration::from_secs(5))
            .unwrap()
            .expect("server hung up");
        Response::from_json(&Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()).unwrap()
    };
    for bad in [
        b"this is not json".as_slice(),
        br#"{"op": "drop_tables"}"#,
        br#"{"op": "debug_panic"}"#,
        br#"{"op": "load_matching", "pred": "cluster =="}"#,
    ] {
        let resp = ask(bad);
        assert!(
            matches!(resp, Response::Error(ServeError::BadRequest(_))),
            "payload {:?} got {resp:?}",
            String::from_utf8_lossy(bad)
        );
    }
    assert!(matches!(ask(br#"{"op": "status"}"#), Response::Status(_)));
    drop(stream);

    server.shutdown();
    assert_eq!(pin_count(&dir), 0);
    std::fs::remove_dir_all(dir).ok();
}
