//! Streaming trace ingest tests: chunked aggregation must be
//! bit-identical to whole-trace aggregation for any chunk boundary and
//! thread count, windowed ingest must conserve time exactly, corrupted
//! event streams must produce typed diagnostics (never panics), and the
//! trace → store path must round-trip to the same thicket as a direct
//! trace load.

use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;
use thicket_core::{trace_to_store, LoadSource, OwnedSource, SliceSource, Thicket};
use thicket_perfsim::{
    emit_trace_to_path, inject, simulate_cpu_run, FaultKind, Strictness, TraceConfig,
    TraceReader,
};

/// Fresh per-test scratch directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-trace-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Emit `cfg` into `<temp>/<tag>/run.trace` and return the path.
fn emit_file(tag: &str, cfg: &TraceConfig) -> PathBuf {
    let path = temp_dir(tag).join("run.trace");
    emit_trace_to_path(cfg, &path).unwrap();
    path
}

/// Timestamp of the last event in the trace (for window sizing).
fn trace_span_ns(path: &PathBuf) -> u64 {
    let mut reader = TraceReader::open(path).unwrap();
    let mut last = 0;
    loop {
        let events = reader.next_events(1024).unwrap();
        if events.is_empty() {
            return last;
        }
        last = events.last().unwrap().time_ns;
    }
}

#[test]
fn whole_trace_yields_one_profile_per_rank() {
    let cfg = TraceConfig::quartz(3, 2, 7);
    let path = emit_file("whole", &cfg);
    let (tk, report) = Thicket::loader(LoadSource::trace(&path)).load().unwrap();
    assert_eq!(tk.metadata().len(), 3, "one profile per rank");
    assert!(report.is_clean());
    assert_eq!(report.attempted, 3);
    assert_eq!(report.loaded, 3);
    // The header metadata plus the per-rank stamps all made it through.
    for key in ["cluster", "rank", "seed"] {
        assert!(
            tk.metadata().column_named(key).is_ok(),
            "metadata is missing {key:?}"
        );
    }
}

#[test]
fn windowed_ingest_conserves_inclusive_time() {
    let cfg = TraceConfig::quartz(2, 3, 11);
    let path = emit_file("windows", &cfg);
    let span = trace_span_ns(&path);
    let window = Duration::from_nanos(span / 5);

    let (whole, _) = Thicket::loader(LoadSource::trace(&path)).load().unwrap();
    let (windowed, report) = Thicket::loader(LoadSource::trace(&path).windows(window))
        .load()
        .unwrap();
    assert!(report.is_clean());
    assert!(
        windowed.metadata().len() > whole.metadata().len(),
        "a window a fifth of the span must cut each rank into multiple profiles"
    );
    for key in ["window", "window start (ns)"] {
        assert!(
            windowed.metadata().column_named(key).is_ok(),
            "windowed metadata is missing {key:?}"
        );
    }
    // Exact conservation: every nanosecond of inclusive time lands in
    // exactly one window, so the summed metric matches the whole-trace
    // aggregate up to the one ns→s float conversion per emission.
    let sum_inc = |tk: &Thicket| -> f64 {
        tk.perf_data()
            .column_named("time (inc)")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_f64())
            .sum()
    };
    let whole_inc = sum_inc(&whole);
    let windowed_inc = sum_inc(&windowed);
    assert!(
        (whole_inc - windowed_inc).abs() < 1e-6,
        "inclusive time not conserved: whole {whole_inc} vs windowed {windowed_inc}"
    );
}

#[test]
fn trace_to_store_roundtrips_to_the_same_thicket() {
    let cfg = TraceConfig::quartz(2, 2, 23);
    let path = emit_file("tostore", &cfg);
    let span = trace_span_ns(&path);
    let window = Duration::from_nanos(span / 4);
    let store_dir = temp_dir("tostore-store");
    let _ = std::fs::remove_dir_all(&store_dir);

    let (report, written) =
        trace_to_store(&path, &store_dir, Some(window), Strictness::FailFast).unwrap();
    assert!(report.is_clean());
    assert!(written > 2, "windowing must produce several profiles");
    assert_eq!(report.loaded, written);

    let (direct, _) = Thicket::loader(LoadSource::trace(&path).windows(window))
        .load()
        .unwrap();
    let (via_store, _) = Thicket::loader(LoadSource::store(&store_dir)).load().unwrap();
    assert_eq!(direct.perf_data(), via_store.perf_data());
    assert_eq!(direct.metadata(), via_store.metadata());
}

#[test]
fn custom_source_adapters_match_the_fast_path() {
    let profiles: Vec<_> = (0..3u64)
        .map(|seed| {
            let mut cfg = thicket_perfsim::CpuRunConfig::quartz_default();
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect();
    let (fast, _) = Thicket::loader(&profiles).load().unwrap();

    let (via_slice, slice_report) =
        Thicket::loader(LoadSource::custom(SliceSource::new(&profiles)))
            .load()
            .unwrap();
    assert_eq!(fast.perf_data(), via_slice.perf_data());
    assert_eq!(fast.metadata(), via_slice.metadata());
    assert!(slice_report.is_clean());

    let (via_owned, _) =
        Thicket::loader(LoadSource::custom(OwnedSource::new(profiles.clone())))
            .load()
            .unwrap();
    assert_eq!(fast.perf_data(), via_owned.perf_data());
    assert_eq!(fast.metadata(), via_owned.metadata());
}

// ---------------------------------------------------------------------
// Fault family: every TRACE corruption yields a typed diagnostic under
// lenient strictness and a typed error under fail-fast — never a panic.
// ---------------------------------------------------------------------

const LENIENT: Strictness = Strictness::Lenient { max_errors: 16 };

#[test]
fn torn_trace_keeps_closed_windows_and_reports() {
    let cfg = TraceConfig::quartz(2, 3, 5);
    let path = emit_file("torn", &cfg);
    let span = trace_span_ns(&path);
    let dir = path.parent().unwrap().to_path_buf();
    // Tear near the end of the stream (the injector indexes its victim
    // line by `seed % events`), so earlier windows have already closed.
    inject(&dir, FaultKind::TornTrace, cfg.events_total() - 2).unwrap();

    // Fail-fast: a typed error naming the strictness, not a panic.
    let err = Thicket::loader(LoadSource::trace(&path))
        .strictness(Strictness::FailFast)
        .load()
        .unwrap_err();
    assert!(
        err.to_string().contains("fail-fast"),
        "unexpected fail-fast error: {err}"
    );

    // Lenient with windows: everything that closed before the tear
    // survives, and the tear itself is a typed torn-trace diagnostic.
    let (tk, report) = Thicket::loader(
        LoadSource::trace(&path).windows(Duration::from_nanos(span / 20)),
    )
    .strictness(LENIENT)
    .load()
    .unwrap();
    assert!(!tk.metadata().is_empty());
    assert!(!report.is_clean());
    assert!(
        report.diagnostics.iter().any(|d| FaultKind::TornTrace.matches(&d.kind)),
        "no torn-trace diagnostic in: {}",
        report.summary()
    );
}

#[test]
fn shuffled_events_poison_one_rank_and_report() {
    let cfg = TraceConfig::quartz(3, 2, 6);
    let path = emit_file("shuffled", &cfg);
    let dir = path.parent().unwrap().to_path_buf();
    inject(&dir, FaultKind::ShuffledEvents, 77).unwrap();

    let err = Thicket::loader(LoadSource::trace(&path))
        .strictness(Strictness::FailFast)
        .load()
        .unwrap_err();
    assert!(err.to_string().contains("fail-fast"));

    // Lenient: the regressed rank is dropped with a typed diagnostic;
    // the other ranks' profiles survive.
    let (tk, report) = Thicket::loader(LoadSource::trace(&path))
        .strictness(LENIENT)
        .load()
        .unwrap();
    assert!(tk.metadata().len() < 3, "the corrupted rank must be dropped");
    assert!(tk.metadata().len() >= 1, "healthy ranks must survive");
    assert!(
        report.diagnostics.iter().any(|d| FaultKind::ShuffledEvents.matches(&d.kind)),
        "no out-of-order diagnostic in: {}",
        report.summary()
    );
    assert_eq!(report.attempted - report.loaded, 1, "exactly one rank dropped");
}

#[test]
fn unbalanced_trace_drops_the_open_rank_and_reports() {
    let cfg = TraceConfig::quartz(3, 2, 8);
    let path = emit_file("unbalanced", &cfg);
    let dir = path.parent().unwrap().to_path_buf();
    inject(&dir, FaultKind::UnbalancedTrace, 13).unwrap();

    let err = Thicket::loader(LoadSource::trace(&path))
        .strictness(Strictness::FailFast)
        .load()
        .unwrap_err();
    assert!(err.to_string().contains("fail-fast"));

    let (tk, report) = Thicket::loader(LoadSource::trace(&path))
        .strictness(LENIENT)
        .load()
        .unwrap();
    assert!(tk.metadata().len() < 3, "the unbalanced rank must be dropped");
    assert!(
        report.diagnostics.iter().any(|d| FaultKind::UnbalancedTrace.matches(&d.kind)),
        "no unbalanced-stream diagnostic in: {}",
        report.summary()
    );
}

// ---------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chunk boundaries and thread counts are invisible: streaming a
    /// trace through any `chunk_events` at threads 1/2/8 yields a
    /// thicket bit-identical to the single-chunk whole-trace load.
    #[test]
    fn chunked_ingest_is_boundary_and_thread_invariant(
        seed in 0u64..1000,
        chunk in 1usize..96,
    ) {
        let cfg = TraceConfig::quartz(2, 1, seed);
        let path = emit_file(&format!("prop-{seed}-{chunk}"), &cfg);
        let (whole, whole_report) =
            Thicket::loader(LoadSource::trace(&path)).load().unwrap();
        for threads in [1usize, 2, 8] {
            let (chunked, report) = Thicket::loader(
                LoadSource::trace(&path).chunk_events(chunk),
            )
            .threads(threads)
            .load()
            .unwrap();
            prop_assert_eq!(
                whole.perf_data(), chunked.perf_data(),
                "perf mismatch at chunk {} threads {}", chunk, threads
            );
            prop_assert_eq!(
                whole.metadata(), chunked.metadata(),
                "metadata mismatch at chunk {} threads {}", chunk, threads
            );
            prop_assert_eq!(whole_report.loaded, report.loaded);
        }
    }

    /// Corrupted streams never panic: for every trace fault kind and
    /// any seed, a lenient load either produces a thicket whose report
    /// carries a diagnostic matching the injected fault, or a typed
    /// zero-profile error — and a fail-fast load errors cleanly.
    #[test]
    fn trace_faults_never_panic(
        seed in 0u64..1000,
        kind_idx in 0usize..3,
        chunk in 1usize..64,
    ) {
        let kind = FaultKind::TRACE[kind_idx];
        let cfg = TraceConfig::quartz(2, 1, seed);
        let path = emit_file(&format!("fault-{seed}-{kind_idx}-{chunk}"), &cfg);
        let dir = path.parent().unwrap().to_path_buf();
        inject(&dir, kind, seed).unwrap();

        prop_assert!(
            Thicket::loader(LoadSource::trace(&path).chunk_events(chunk))
                .strictness(Strictness::FailFast)
                .load()
                .is_err(),
            "fail-fast load of a corrupted trace must error"
        );

        match Thicket::loader(LoadSource::trace(&path).chunk_events(chunk))
            .strictness(LENIENT)
            .load()
        {
            Ok((_, report)) => prop_assert!(
                report.diagnostics.iter().any(|d| kind.matches(&d.kind)),
                "lenient load succeeded without a {:?} diagnostic: {}",
                kind, report.summary()
            ),
            // All profiles dropped (e.g. a tear before any window
            // closed): the typed zero-profile refusal, not a panic.
            Err(e) => prop_assert!(
                e.to_string().contains("zero profiles"),
                "unexpected lenient failure: {}", e
            ),
        }
    }
}
