//! Loader planner tests: a [`PredExpr`] filter splits into metadata
//! conjuncts pushed below the source read and perf-frame conjuncts
//! applied after composition with exists-row semantics, with the split
//! recorded in [`IngestReport::pushdown`].

use thicket_core::{LoadSource, PredExpr, Thicket};
use thicket_dataframe::ColKey;
use thicket_perfsim::{simulate_cpu_run, Compiler, CpuRunConfig, MetaPred, Profile, Store};

/// Six profiles: 2 compilers × 3 seeds, one problem size.
fn sample_profiles() -> Vec<Profile> {
    let mut profiles = Vec::new();
    for (ci, compiler) in [Compiler::clang9(), Compiler::xl16()].iter().enumerate() {
        for seed in 0..3u64 {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.compiler = compiler.clone();
            cfg.seed = ci as u64 * 3 + seed;
            profiles.push(simulate_cpu_run(&cfg));
        }
    }
    profiles
}

fn temp_store(tag: &str, profiles: &[Profile]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-planner-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    Store::save(&dir, profiles).unwrap();
    dir
}

#[test]
fn metadata_only_expr_fully_pushes_on_store() {
    let profiles = sample_profiles();
    let dir = temp_store("push", &profiles);

    let expr = PredExpr::eq("compiler", "clang-9.0.0");
    let (by_expr, report) = Thicket::loader(LoadSource::store(&dir))
        .filter(expr)
        .load()
        .unwrap();
    let (by_pred, _) = Thicket::loader(LoadSource::store(&dir))
        .filter(MetaPred::eq("compiler", "clang-9.0.0"))
        .load()
        .unwrap();

    assert_eq!(by_expr.metadata(), by_pred.metadata());
    assert_eq!(by_expr.perf_data(), by_pred.perf_data());
    assert_eq!(by_expr.profiles().len(), 3);

    let plan = report.pushdown.expect("expr loads record a plan");
    assert!(plan.fully_pushed(), "no residual expected: {plan}");
    assert_eq!(plan.pushed.len(), 1);
    assert!(plan.pushed[0].contains("compiler"));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn mixed_expr_splits_into_pushed_and_residual() {
    let profiles = sample_profiles();
    let dir = temp_store("mixed", &profiles);

    // "time (exc)" lives in the perf frame, not the store metadata:
    // the planner must keep it above the read. Every profile has some
    // positive exclusive time, so the residual keeps all survivors of
    // the pushed conjunct.
    let expr = PredExpr::and([
        PredExpr::eq("compiler", "clang-9.0.0"),
        PredExpr::gt("time (exc)", 0.0),
    ]);
    let (tk, report) = Thicket::loader(LoadSource::store(&dir))
        .filter(expr)
        .load()
        .unwrap();

    assert_eq!(tk.profiles().len(), 3);
    let plan = report.pushdown.expect("plan recorded");
    assert_eq!(plan.pushed.len(), 1, "{plan}");
    assert_eq!(plan.residual.len(), 1, "{plan}");
    assert!(plan.pushed[0].contains("compiler"));
    assert!(plan.residual[0].contains("time (exc)"));

    // An unsatisfiable frame conjunct empties the thicket through the
    // same plan shape.
    let none = Thicket::loader(LoadSource::store(&dir))
        .filter(PredExpr::and([
            PredExpr::eq("compiler", "clang-9.0.0"),
            PredExpr::gt("time (exc)", f64::MAX),
        ]))
        .load()
        .unwrap()
        .0;
    assert_eq!(none.profiles().len(), 0);
    assert_eq!(none.perf_data().len(), 0);

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn residual_uses_exists_row_semantics() {
    let profiles = sample_profiles();
    let (full, _) = Thicket::loader(&profiles).load().unwrap();

    // Pick a threshold between the per-profile maxima of a metric so
    // the filter is selective but not empty.
    let metric = ColKey::new("time (exc)");
    let mut maxima: Vec<f64> = full
        .profiles()
        .iter()
        .map(|p| {
            let sub = full.filter_profiles(std::slice::from_ref(p));
            sub.perf_data()
                .column(&metric)
                .unwrap()
                .numeric_values()
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    maxima.sort_by(f64::total_cmp);
    let threshold = maxima[maxima.len() / 2];
    let expect: usize = maxima.iter().filter(|m| **m > threshold).count();
    assert!(expect > 0 && expect < maxima.len());

    let (tk, report) = Thicket::loader(&profiles)
        .filter(PredExpr::gt("time (exc)", threshold))
        .load()
        .unwrap();
    assert_eq!(tk.profiles().len(), expect);
    let plan = report.pushdown.unwrap();
    assert!(plan.pushed.is_empty());
    assert_eq!(plan.residual.len(), 1);
}

#[test]
fn profile_source_expr_matches_metapred_filter() {
    let profiles = sample_profiles();
    let (by_expr, report) = Thicket::loader(&profiles)
        .filter(PredExpr::eq("compiler", "xlc-16.1.1.12"))
        .load()
        .unwrap();
    let (by_pred, _) = Thicket::loader(&profiles)
        .filter(MetaPred::eq("compiler", "xlc-16.1.1.12"))
        .load()
        .unwrap();
    assert_eq!(by_expr.metadata(), by_pred.metadata());
    assert_eq!(by_expr.perf_data(), by_pred.perf_data());
    assert!(report.pushdown.unwrap().fully_pushed());
}

#[test]
fn dialect_predicate_flows_to_the_loader() {
    let profiles = sample_profiles();
    let dir = temp_store("dialect", &profiles);

    let expr = thicket_query::parse_pred(r#"compiler startswith "clang""#).unwrap();
    let (tk, report) = Thicket::loader(LoadSource::store(&dir))
        .filter(expr)
        .load()
        .unwrap();
    assert_eq!(tk.profiles().len(), 3);
    assert!(report.pushdown.is_some());

    std::fs::remove_dir_all(dir).ok();
}

/// The owned-profiles source (the wire-client plumbing:
/// `Thicket::loader(client.load_matching(..))` with no binding to
/// borrow from) composes bit-identically to the borrowed source, with
/// the same planner split.
#[test]
fn owned_source_matches_borrowed_source() {
    let profiles = sample_profiles();
    let expr = PredExpr::eq("compiler", "clang-9.0.0");
    let (borrowed, rb) = Thicket::loader(&profiles)
        .filter(expr.clone())
        .load()
        .unwrap();
    let (owned, ro) = Thicket::loader(profiles.clone())
        .filter(expr)
        .load()
        .unwrap();
    assert_eq!(owned.perf_data().to_string(), borrowed.perf_data().to_string());
    assert_eq!(owned.metadata().to_string(), borrowed.metadata().to_string());
    assert_eq!(format!("{:?}", ro.pushdown), format!("{:?}", rb.pushdown));
    // LoadSource::Owned is also constructible via plain From.
    let via_from: LoadSource<'static> = profiles.into();
    let (tk, _) = Thicket::loader(via_from).load().unwrap();
    assert_eq!(tk.profiles().len(), 6);
}

/// The deprecated `filter_expr` spelling stays a thin alias of
/// `filter` for one release; both produce identical thickets and plans.
#[test]
#[allow(deprecated)]
fn deprecated_filter_expr_aliases_filter() {
    let profiles = sample_profiles();
    let expr = PredExpr::eq("compiler", "clang-9.0.0");
    let (via_alias, ra) = Thicket::loader(&profiles)
        .filter_expr(expr.clone())
        .load()
        .unwrap();
    let (via_filter, rf) = Thicket::loader(&profiles).filter(expr).load().unwrap();
    assert_eq!(via_alias.perf_data(), via_filter.perf_data());
    assert_eq!(via_alias.metadata(), via_filter.metadata());
    assert_eq!(format!("{:?}", ra.pushdown), format!("{:?}", rf.pushdown));
}
