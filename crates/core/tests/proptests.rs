//! Property-based tests for thicket ingest: the parallel assembly path
//! must be bit-identical to the serial one for any thread count, and
//! row-axis pooling must be order-deterministic too.

use proptest::prelude::*;
use thicket_core::{concat_thickets_rows_threads, Thicket};
use thicket_dataframe::Value;
use thicket_perfsim::{simulate_cpu_run, CpuRunConfig};

fn profiles_for(seeds: &[u64]) -> Vec<thicket_perfsim::Profile> {
    seeds
        .iter()
        .map(|s| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = *s;
            simulate_cpu_run(&cfg)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The threaded loader build produces the same thicket —
    /// every frame, every cell, same row order — for threads ∈ {1, 2, 8}
    /// over random ensembles.
    #[test]
    fn parallel_ingest_matches_serial(seeds in proptest::collection::hash_set(0u64..64, 1..6)) {
        let mut seeds: Vec<u64> = seeds.into_iter().collect();
        seeds.sort_unstable();
        let profiles = profiles_for(&seeds);
        let ids: Vec<Value> = (0..profiles.len() as i64).map(Value::Int).collect();
        let serial = Thicket::loader(&profiles).profile_ids(&ids).threads(1).load().unwrap().0;
        for threads in [2usize, 8] {
            let par = Thicket::loader(&profiles).profile_ids(&ids).threads(threads).load().unwrap().0;
            prop_assert_eq!(serial.perf_data(), par.perf_data(), "perf mismatch at {} threads", threads);
            prop_assert_eq!(serial.metadata(), par.metadata(), "metadata mismatch at {} threads", threads);
            prop_assert_eq!(serial.graph().len(), par.graph().len());
        }
    }

    /// Row-axis pooling of single-profile thickets is thread-count
    /// invariant as well.
    #[test]
    fn parallel_row_concat_matches_serial(seeds in proptest::collection::hash_set(0u64..64, 2..5)) {
        let mut seeds: Vec<u64> = seeds.into_iter().collect();
        seeds.sort_unstable();
        let thickets: Vec<Thicket> = profiles_for(&seeds)
            .iter()
            .map(|p| Thicket::loader(std::slice::from_ref(p)).load().unwrap().0)
            .collect();
        let refs: Vec<&Thicket> = thickets.iter().collect();
        let serial = concat_thickets_rows_threads(&refs, 1).unwrap();
        for threads in [2usize, 8] {
            let par = concat_thickets_rows_threads(&refs, threads).unwrap();
            prop_assert_eq!(serial.perf_data(), par.perf_data(), "perf mismatch at {} threads", threads);
            prop_assert_eq!(serial.metadata(), par.metadata(), "metadata mismatch at {} threads", threads);
        }
    }
}

use thicket_core::PredExpr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Planned `filter_expr` loads are thread-count invariant: the
    /// pushdown split, the vectorized selection, and the residual
    /// exists-row pass give bit-identical thickets and identical plans
    /// at threads 1, 2, and 8.
    #[test]
    fn filter_expr_thread_invariant(
        seeds in proptest::collection::hash_set(0u64..64, 2..6),
        threshold in 0.0f64..0.05,
    ) {
        let mut seeds: Vec<u64> = seeds.into_iter().collect();
        seeds.sort_unstable();
        let profiles = profiles_for(&seeds);
        let expr = PredExpr::and([
            PredExpr::eq("cluster", "quartz"),
            PredExpr::gt("time (exc)", threshold),
        ]);
        let (serial, serial_report) = Thicket::loader(&profiles)
            .threads(1)
            .filter(expr.clone())
            .load()
            .unwrap();
        for threads in [2usize, 8] {
            let (par, report) = Thicket::loader(&profiles)
                .threads(threads)
                .filter(expr.clone())
                .load()
                .unwrap();
            prop_assert_eq!(serial.perf_data(), par.perf_data(), "perf mismatch at {} threads", threads);
            prop_assert_eq!(serial.metadata(), par.metadata(), "metadata mismatch at {} threads", threads);
            prop_assert_eq!(&serial_report.pushdown, &report.pushdown);
        }
    }
}
