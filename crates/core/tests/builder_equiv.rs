//! Every deprecated ingest entry point is a thin wrapper over
//! `Thicket::loader`; this suite proves each one returns bit-identical
//! results to its builder spelling — same dataframes, same profile
//! indices, same ingest reports — so callers can migrate mechanically.

#![allow(deprecated)]

use thicket_core::{LoadSource, MetaPred, Strictness, Thicket};
use thicket_dataframe::Value;
use thicket_perfsim::{
    load_dir, load_ensemble, load_ensemble_lenient, load_ensemble_opts, load_ensemble_threads,
    save_ensemble, simulate_cpu_run, CpuRunConfig, IngestReport, Profile, Store, StoreOptions,
};

fn runs(seeds: std::ops::Range<u64>) -> Vec<Profile> {
    seeds
        .map(|seed| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-bldeq-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Thicket equality: `Graph` has no `PartialEq`, so compare every
/// table plus the profile index order (tables pin cell values, the
/// profile list pins composition order).
fn assert_same_thicket(a: &Thicket, b: &Thicket) {
    assert_eq!(a.profiles(), b.profiles());
    assert_eq!(a.perf_data(), b.perf_data());
    assert_eq!(a.metadata(), b.metadata());
    assert_eq!(a.statsframe(), b.statsframe());
}

fn assert_same_profiles(a: &[Profile], b: &[Profile]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_string_pretty(), y.to_string_pretty());
    }
}

fn assert_same_report(a: &IngestReport, b: &IngestReport) {
    assert_eq!(a, b);
}

#[test]
fn from_profiles_equals_builder() {
    let profiles = runs(0..4);
    let legacy = Thicket::from_profiles(&profiles).unwrap();
    let (built, report) = Thicket::loader(&profiles).load().unwrap();
    assert_same_thicket(&legacy, &built);
    assert!(report.is_clean());
}

#[test]
fn from_profiles_indexed_equals_builder() {
    let profiles = runs(0..4);
    let ids: Vec<Value> = (0..4).map(Value::Int).collect();
    let legacy = Thicket::from_profiles_indexed(&profiles, &ids).unwrap();
    let (built, _) = Thicket::loader(&profiles).profile_ids(&ids).load().unwrap();
    assert_same_thicket(&legacy, &built);
}

#[test]
fn from_profiles_indexed_threads_equals_builder() {
    let profiles = runs(0..4);
    let ids: Vec<Value> = (0..4).map(Value::Int).collect();
    for threads in [1, 3] {
        let legacy = Thicket::from_profiles_indexed_threads(&profiles, &ids, threads).unwrap();
        let (built, _) = Thicket::loader(&profiles)
            .profile_ids(&ids)
            .threads(threads)
            .load()
            .unwrap();
        assert_same_thicket(&legacy, &built);
    }
}

#[test]
fn from_profiles_lenient_equals_builder() {
    // A duplicated profile forces a diagnostic through the lenient path.
    let mut profiles = runs(0..3);
    profiles.push(profiles[0].clone());
    let (legacy, legacy_report) = Thicket::from_profiles_lenient(&profiles).unwrap();
    let (built, built_report) = Thicket::loader(&profiles)
        .strictness(Strictness::lenient())
        .load()
        .unwrap();
    assert_same_thicket(&legacy, &built);
    assert_same_report(&legacy_report, &built_report);
    assert_eq!(legacy_report.dropped(), 1);
}

#[test]
fn from_profiles_indexed_lenient_equals_builder() {
    let profiles = runs(0..4);
    let ids: Vec<Value> = (10..14).map(Value::Int).collect();
    let (legacy, legacy_report) = Thicket::from_profiles_indexed_lenient(&profiles, &ids).unwrap();
    let (built, built_report) = Thicket::loader(&profiles)
        .profile_ids(&ids)
        .strictness(Strictness::lenient())
        .load()
        .unwrap();
    assert_same_thicket(&legacy, &built);
    assert_same_report(&legacy_report, &built_report);
}

#[test]
fn from_profiles_indexed_lenient_threads_equals_builder() {
    let profiles = runs(0..4);
    let ids: Vec<Value> = (10..14).map(Value::Int).collect();
    for threads in [1, 4] {
        let (legacy, legacy_report) =
            Thicket::from_profiles_indexed_lenient_threads(&profiles, &ids, threads).unwrap();
        let (built, built_report) = Thicket::loader(&profiles)
            .profile_ids(&ids)
            .strictness(Strictness::lenient())
            .threads(threads)
            .load()
            .unwrap();
        assert_same_thicket(&legacy, &built);
        assert_same_report(&legacy_report, &built_report);
    }
}

#[test]
fn load_ensemble_family_equals_load_dir() {
    let dir = tmp("ensemble");
    let profiles = runs(0..4);
    save_ensemble(&dir, &profiles).unwrap();

    let legacy = load_ensemble(&dir).unwrap();
    let (unified, report) = load_dir(&dir, None, Strictness::FailFast).unwrap();
    assert_same_profiles(&legacy, &unified);
    assert!(report.is_clean());

    let legacy = load_ensemble_threads(&dir, 2).unwrap();
    let (unified, _) = load_dir(&dir, Some(2), Strictness::FailFast).unwrap();
    assert_same_profiles(&legacy, &unified);

    let (legacy, legacy_report) = load_ensemble_lenient(&dir).unwrap();
    let (unified, report) = load_dir(&dir, None, Strictness::lenient()).unwrap();
    assert_same_profiles(&legacy, &unified);
    assert_same_report(&legacy_report, &report);

    let strictness = Strictness::Lenient { max_errors: 2 };
    let (legacy, legacy_report) = load_ensemble_opts(&dir, 3, strictness).unwrap();
    let (unified, report) = load_dir(&dir, Some(3), strictness).unwrap();
    assert_same_profiles(&legacy, &unified);
    assert_same_report(&legacy_report, &report);

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn from_store_equals_builder() {
    let dir = tmp("store");
    Store::save_opts(&dir, &runs(0..5), &StoreOptions::default()).unwrap();
    let (legacy, legacy_report) = Thicket::from_store(&dir).unwrap();
    let (built, built_report) = Thicket::loader(LoadSource::store(&dir))
        .strictness(Strictness::lenient())
        .load()
        .unwrap();
    assert_same_thicket(&legacy, &built);
    assert_same_report(&legacy_report, &built_report);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn from_store_filtered_equals_builder_closure_and_metapred() {
    let dir = tmp("store-filtered");
    Store::save_opts(&dir, &runs(0..6), &StoreOptions::default()).unwrap();

    // Closure spelling (the deprecated wrapper's exact shape) …
    let (legacy, legacy_report) = Thicket::from_store_filtered(&dir, |e| {
        matches!(e.meta("seed"), Some(Value::Int(s)) if *s < 3)
    })
    .unwrap();
    let (built_closure, closure_report) = Thicket::loader(LoadSource::store(&dir))
        .strictness(Strictness::lenient())
        .filter_entries(|e| matches!(e.meta("seed"), Some(Value::Int(s)) if *s < 3))
        .load()
        .unwrap();
    assert_same_thicket(&legacy, &built_closure);
    assert_same_report(&legacy_report, &closure_report);

    // … and the typed pushdown spelling select the same thicket.
    let (built_pred, pred_report) = Thicket::loader(LoadSource::store(&dir))
        .strictness(Strictness::lenient())
        .filter(MetaPred::lt("seed", 3i64))
        .load()
        .unwrap();
    assert_same_thicket(&legacy, &built_pred);
    assert_same_report(&legacy_report, &pred_report);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn from_store_filtered_threads_equals_builder() {
    let dir = tmp("store-threads");
    Store::save_opts(&dir, &runs(0..6), &StoreOptions::default()).unwrap();
    for threads in [1, 4] {
        let (legacy, legacy_report) = Thicket::from_store_filtered_threads(
            &dir,
            |e| matches!(e.meta("seed"), Some(Value::Int(s)) if *s >= 2),
            threads,
        )
        .unwrap();
        let (built, built_report) = Thicket::loader(LoadSource::store(&dir))
            .strictness(Strictness::lenient())
            .filter(MetaPred::ge("seed", 2i64))
            .threads(threads)
            .load()
            .unwrap();
        assert_same_thicket(&legacy, &built);
        assert_same_report(&legacy_report, &built_report);
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn load_where_equals_load_matching() {
    let dir = tmp("load-where");
    Store::save_opts(&dir, &runs(0..6), &StoreOptions::default()).unwrap();

    let reader = Store::open(&dir).unwrap();
    let (legacy, legacy_report) = reader
        .load_where(|e| matches!(e.meta("seed"), Some(Value::Int(s)) if *s < 4))
        .unwrap();
    let reader = Store::open(&dir).unwrap();
    let (unified, report) = reader.load_matching(&MetaPred::lt("seed", 4i64)).unwrap();
    assert_same_profiles(&legacy, &unified);
    assert_same_report(&legacy_report, &report);

    for threads in [1, 3] {
        let reader = Store::open(&dir).unwrap();
        let (legacy, legacy_report) = reader
            .load_where_threads(|e| matches!(e.meta("seed"), Some(Value::Int(s)) if *s < 4), threads)
            .unwrap();
        let reader = Store::open(&dir).unwrap();
        let (unified, report) = reader
            .load_matching_threads(&MetaPred::lt("seed", 4i64), threads)
            .unwrap();
        assert_same_profiles(&legacy, &unified);
        assert_same_report(&legacy_report, &report);
    }
    std::fs::remove_dir_all(dir).ok();
}
