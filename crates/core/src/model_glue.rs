//! Extra-P modeling glue (paper §4.2.3): fit scaling models for every
//! call-tree node straight out of a thicket, using a metadata column as
//! the model parameter (e.g. `mpi.world.size`).

use crate::thicket::{Thicket, ThicketError};
use thicket_dataframe::ColKey;
use thicket_graph::NodeId;
use thicket_model::{fit_model, Model, ModelError};

/// A fitted scaling model for one call-tree node.
#[derive(Debug, Clone)]
pub struct NodeModel {
    /// The node.
    pub node: NodeId,
    /// Node name (for reporting).
    pub name: String,
    /// The fitted model.
    pub model: Model,
    /// The `(parameter, measurement)` training points.
    pub points: Vec<(f64, f64)>,
}

/// Fit a model of `metric` as a function of the metadata column
/// `parameter` for every node that has enough data (≥ 3 distinct
/// parameter values). Nodes whose fits fail are skipped.
///
/// This is the bulk-modeling workflow the paper describes: "by
/// generating such performance models in bulk for an entire set of code
/// regions, developers can easily identify regions which might become
/// scalability bottlenecks."
pub fn model_metric(
    thicket: &Thicket,
    metric: &ColKey,
    parameter: &ColKey,
) -> Result<Vec<NodeModel>, ThicketError> {
    let param_by_profile = thicket.metadata_column(parameter)?;
    // Ensure the metric exists up front for a clear error.
    thicket.perf_data().column(metric)?;

    let mut out = Vec::new();
    for node in thicket.graph().ids() {
        let series = thicket.metric_series(node, metric);
        if series.is_empty() {
            continue;
        }
        let mut xs = Vec::with_capacity(series.len());
        let mut ys = Vec::with_capacity(series.len());
        for (profile, y) in series {
            let Some(x) = param_by_profile.get(&profile).and_then(|v| v.as_f64()) else {
                continue;
            };
            xs.push(x);
            ys.push(y);
        }
        match fit_model(&xs, &ys) {
            Ok(model) => out.push(NodeModel {
                node,
                name: thicket.graph().node(node).name().to_string(),
                model,
                points: xs.into_iter().zip(ys).collect(),
            }),
            Err(ModelError::TooFewPoints) => continue,
            Err(ModelError::NoFit) => continue,
            Err(e) => {
                return Err(ThicketError::Invalid(format!(
                    "modeling {} at node {}: {e}",
                    metric,
                    thicket.graph().node(node).name()
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_model::Fraction;
    use thicket_perfsim::{marbl_ensemble, MarblCluster};

    fn marbl_thicket(cluster: MarblCluster) -> Thicket {
        let profiles = marbl_ensemble(&[1, 2, 4, 8, 16, 32], 5);
        let tk = Thicket::loader(&profiles).load().unwrap().0;
        tk.filter_metadata(|r| r.str("arch").as_deref() == Some(cluster.arch()))
    }

    #[test]
    fn figure11_solver_model_recovered() {
        for (cluster, c0_expect) in [
            (MarblCluster::RzTopaz, 200.0),
            (MarblCluster::AwsParallelCluster, 155.0),
        ] {
            let tk = marbl_thicket(cluster);
            let models = model_metric(
                &tk,
                &ColKey::new("avg#inclusive#sum#time.duration"),
                &ColKey::new("mpi.world.size"),
            )
            .unwrap();
            let solver = models
                .iter()
                .find(|m| m.name == "M_solver->Mult")
                .expect("solver model");
            // The fitted family is c0 + c1 * p^(1/3) with c1 < 0.
            assert_eq!(solver.model.term.exponent, Fraction::new(1, 3));
            assert_eq!(solver.model.term.log_power, 0);
            assert!(solver.model.c1 < 0.0);
            assert!(
                (solver.model.c0 - c0_expect).abs() / c0_expect < 0.1,
                "{cluster:?}: c0 = {}",
                solver.model.c0
            );
            assert_eq!(solver.points.len(), 30);
        }
    }

    #[test]
    fn aws_solver_below_cts() {
        let cts = marbl_thicket(MarblCluster::RzTopaz);
        let aws = marbl_thicket(MarblCluster::AwsParallelCluster);
        let metric = ColKey::new("avg#inclusive#sum#time.duration");
        let param = ColKey::new("mpi.world.size");
        let mc = model_metric(&cts, &metric, &param).unwrap();
        let ma = model_metric(&aws, &metric, &param).unwrap();
        let solver_c = mc.iter().find(|m| m.name == "M_solver->Mult").unwrap();
        let solver_a = ma.iter().find(|m| m.name == "M_solver->Mult").unwrap();
        // Within the measured range only: the c0 + c1·p^(1/3) family
        // (the paper's own fits) crosses once extrapolated far out.
        for ranks in [36.0, 144.0, 576.0] {
            assert!(
                solver_a.model.eval(ranks) < solver_c.model.eval(ranks),
                "AWS should be below CTS at {ranks} ranks"
            );
        }
    }

    #[test]
    fn models_produced_for_all_annotated_nodes() {
        let tk = marbl_thicket(MarblCluster::RzTopaz);
        let models = model_metric(
            &tk,
            &ColKey::new("avg#inclusive#sum#time.duration"),
            &ColKey::new("mpi.world.size"),
        )
        .unwrap();
        // All seven tree nodes carry the metric.
        assert_eq!(models.len(), 7);
    }

    #[test]
    fn missing_columns_error() {
        let tk = marbl_thicket(MarblCluster::RzTopaz);
        assert!(model_metric(&tk, &ColKey::new("nope"), &ColKey::new("mpi.world.size")).is_err());
        assert!(model_metric(
            &tk,
            &ColKey::new("avg#inclusive#sum#time.duration"),
            &ColKey::new("nope")
        )
        .is_err());
    }

    #[test]
    fn too_few_scales_yields_no_models() {
        let profiles = marbl_ensemble(&[4], 5); // one rank count only
        let tk = Thicket::loader(&profiles).load().unwrap().0;
        let models = model_metric(
            &tk,
            &ColKey::new("avg#inclusive#sum#time.duration"),
            &ColKey::new("mpi.world.size"),
        )
        .unwrap();
        assert!(models.is_empty());
    }
}
