//! Additional thicket operations beyond the paper's §4 core set:
//! graph squashing (Hatchet's `squash`), node intersection across
//! profiles, string-dialect querying, and CSV export.

use crate::thicket::{Thicket, ThicketError, NODE_LEVEL, PROFILE_LEVEL};
use std::collections::{HashMap, HashSet};
use thicket_dataframe::{to_csv, ColKey, DataFrame, Index, Value};
use thicket_query::Query;

impl Thicket {
    /// Remove call-graph nodes that carry no performance data (e.g.
    /// structural interior nodes another profile contributed), rebuilding
    /// ancestry through nearest kept ancestors — Hatchet's `squash`.
    pub fn squash(&self) -> Thicket {
        let measured: HashSet<_> = self
            .perf_data
            .index()
            .keys()
            .iter()
            .filter_map(|k| self.node_of_value(&k[0]))
            .collect();
        let (subgraph, mapping) = self.graph.induced_subgraph(&measured);

        let keys: Vec<Vec<Value>> = self
            .perf_data
            .index()
            .keys()
            .iter()
            .map(|k| {
                let old = self.node_of_value(&k[0]).expect("measured node");
                let new = mapping[&old];
                vec![Value::Int(new.index() as i64), k[1].clone()]
            })
            .collect();
        let index = Index::new([NODE_LEVEL, PROFILE_LEVEL], keys).expect("same arity");
        let mut perf_data = DataFrame::new(index);
        for (k, c) in self.perf_data.columns() {
            perf_data.insert(k.clone(), c.clone()).expect("unique keys");
        }
        Thicket::from_components(
            subgraph,
            perf_data.sort_by_index(),
            self.metadata.clone(),
            DataFrame::new(Index::empty([NODE_LEVEL])),
        )
        .expect("valid components")
    }

    /// Keep only call-tree nodes measured in **every** profile — the
    /// strict intersection semantics of the paper's hierarchical
    /// composition, applied within a single thicket.
    pub fn intersect_nodes(&self) -> Thicket {
        let nprofiles = self.metadata.len();
        let mut counts: HashMap<Value, HashSet<Value>> = HashMap::new();
        for key in self.perf_data.index().keys() {
            counts
                .entry(key[0].clone())
                .or_default()
                .insert(key[1].clone());
        }
        let keep: HashSet<Value> = counts
            .into_iter()
            .filter(|(_, profiles)| profiles.len() == nprofiles)
            .map(|(node, _)| node)
            .collect();
        let perf_data = self
            .perf_data
            .filter(|r| keep.contains(&r.level(NODE_LEVEL)));
        let mut out = self.clone();
        out.perf_data = perf_data;
        out.statsframe = DataFrame::new(Index::empty([NODE_LEVEL]));
        out.squash()
    }

    /// Apply a query written in the string dialect (see
    /// [`thicket_query::Query::parse`]), e.g.
    /// `(".", name == "Base_CUDA") -> ("*") -> (".", name endswith "block_128")`.
    pub fn query_str(&self, query: &str) -> Result<Thicket, ThicketError> {
        let q = Query::parse(query)
            .map_err(|e| ThicketError::Invalid(format!("query dialect: {e}")))?;
        self.query(&q)
    }

    /// Performance data as CSV, with the node level rendered as names.
    pub fn perf_csv(&self) -> String {
        to_csv(&self.perf_data_named())
    }

    /// Metadata table as CSV.
    pub fn metadata_csv(&self) -> String {
        to_csv(&self.metadata)
    }

    /// Aggregated statistics as CSV, node level rendered as names.
    pub fn stats_csv(&self) -> String {
        to_csv(&self.statsframe_named())
    }

    /// Structural diff of this thicket's call graph against another's
    /// (which call paths appeared/disappeared between two ensembles).
    pub fn graph_diff(&self, other: &Thicket) -> thicket_graph::GraphDiff {
        thicket_graph::GraphDiff::compute(self.graph(), other.graph())
    }

    /// Per-profile totals of one metric (summed over nodes) — a quick
    /// whole-run figure of merit.
    pub fn profile_totals(&self, metric: &ColKey) -> Result<Vec<(Value, f64)>, ThicketError> {
        let col = self.perf_data.column(metric)?;
        let mut acc: HashMap<Value, f64> = HashMap::new();
        for (row, key) in self.perf_data.index().keys().iter().enumerate() {
            if let Some(v) = col.get_f64(row) {
                *acc.entry(key[1].clone()).or_insert(0.0) += v;
            }
        }
        // Report in metadata (profile) order.
        Ok(self
            .profiles()
            .into_iter()
            .filter_map(|p| acc.get(&p).map(|v| (p.clone(), *v)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_graph::{Frame, Graph};
    use thicket_perfsim::Profile;

    /// Profile with interior nodes that carry no metrics.
    fn profile_with_structure(run: i64, with_extra: bool) -> Profile {
        let mut g = Graph::new();
        let main = g.add_root(Frame::named("main"));
        let wrapper = g.add_child(main, Frame::named("wrapper"));
        let kernel = g.add_child(wrapper, Frame::named("kernel"));
        let mut p = Profile::new(g);
        p.set_metadata("run", run);
        p.set_metric(kernel, "time", run as f64);
        if with_extra {
            let extra = p.graph().find_by_name("wrapper").unwrap();
            p.set_metric(extra, "time", run as f64 * 0.1);
        }
        p
    }

    #[test]
    fn squash_drops_unmeasured_nodes() {
        let tk = Thicket::from_profiles(&[
            profile_with_structure(1, false),
            profile_with_structure(2, false),
        ])
        .unwrap();
        assert_eq!(tk.graph().len(), 3);
        let squashed = tk.squash();
        // Only `kernel` carries metrics.
        assert_eq!(squashed.graph().len(), 1);
        assert_eq!(squashed.perf_data().len(), 2);
        let kernel = squashed.find_node("kernel").unwrap();
        assert_eq!(
            squashed.metric_at(kernel, &tk.profiles()[0], &ColKey::new("time")),
            Some(1.0)
        );
    }

    #[test]
    fn squash_preserves_measured_ancestry() {
        let tk = Thicket::from_profiles(&[profile_with_structure(1, true)]).unwrap();
        let squashed = tk.squash();
        assert_eq!(squashed.graph().len(), 2);
        let kernel = squashed.find_node("kernel").unwrap();
        // kernel's parent is now the measured wrapper.
        assert_eq!(
            squashed.graph().node(squashed.graph().node(kernel).parents()[0]).name(),
            "wrapper"
        );
    }

    #[test]
    fn intersect_nodes_keeps_common_only() {
        // Profile 2 has an extra measured node (wrapper).
        let tk = Thicket::from_profiles(&[
            profile_with_structure(1, false),
            profile_with_structure(2, true),
        ])
        .unwrap();
        let common = tk.intersect_nodes();
        // Only `kernel` is measured in both profiles.
        assert_eq!(common.graph().len(), 1);
        assert_eq!(common.perf_data().len(), 2);
    }

    #[test]
    fn query_str_end_to_end() {
        let tk = Thicket::from_profiles(&[profile_with_structure(1, true)]).unwrap();
        let hit = tk.query_str(r#"("*") -> (".", name == "kernel")"#).unwrap();
        assert!(hit.find_node("kernel").is_some());
        assert!(tk.query_str("((((").is_err());
    }

    #[test]
    fn csv_exports() {
        let mut tk = Thicket::from_profiles(&[
            profile_with_structure(1, false),
            profile_with_structure(2, false),
        ])
        .unwrap();
        tk.compute_stats_all(thicket_dataframe::AggFn::Mean).unwrap();
        let perf = tk.perf_csv();
        assert!(perf.lines().next().unwrap().starts_with("node,profile"));
        assert!(perf.contains("kernel"));
        let meta = tk.metadata_csv();
        assert_eq!(meta.lines().count(), 3);
        let stats = tk.stats_csv();
        assert!(stats.contains("time_mean"));
    }

    #[test]
    fn graph_diff_between_thickets() {
        let a = Thicket::from_profiles(&[profile_with_structure(1, false)]).unwrap();
        let b = Thicket::from_profiles(&[profile_with_structure(2, false)]).unwrap();
        let d = a.graph_diff(&b);
        assert!(d.is_identical());
        assert_eq!(d.similarity(), 1.0);
    }

    #[test]
    fn profile_totals_sum_metrics() {
        let tk = Thicket::from_profiles_indexed(
            &[profile_with_structure(1, true), profile_with_structure(2, true)],
            &[Value::Int(1), Value::Int(2)],
        )
        .unwrap();
        let totals = tk.profile_totals(&ColKey::new("time")).unwrap();
        assert_eq!(totals.len(), 2);
        assert!((totals[0].1 - 1.1).abs() < 1e-12);
        assert!((totals[1].1 - 2.2).abs() < 1e-12);
        assert!(tk.profile_totals(&ColKey::new("nope")).is_err());
    }
}
