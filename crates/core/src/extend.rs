//! Additional thicket operations beyond the paper's §4 core set:
//! incremental ensemble growth ([`Thicket::extend`]), graph squashing
//! (Hatchet's `squash`), node intersection across profiles,
//! string-dialect querying, and CSV export.

use crate::thicket::{profile_fragments, Thicket, ThicketError, NODE_LEVEL, PROFILE_LEVEL};
use std::collections::{HashMap, HashSet};
use thicket_dataframe::{
    merge_fragments, to_csv, ColKey, ColumnFragments, DataFrame, FrameBuilder, Index, Key, Value,
};
use thicket_perfsim::Profile;
use thicket_query::Query;

impl Thicket {
    /// Ingest additional profiles into this thicket in place — the
    /// incremental counterpart of a full [`crate::Loader`] build.
    ///
    /// The existing performance data is *not* rebuilt from its source
    /// profiles: it rides into the merge as one pre-typed column batch,
    /// re-keyed through the graph union, alongside one freshly
    /// assembled batch per new profile. The result equals rebuilding
    /// from the full profile set whenever the existing thicket was
    /// itself built by [`crate::Loader`].
    ///
    /// Aggregated statistics are cleared: they described the old
    /// ensemble.
    pub fn extend(
        &mut self,
        profiles: &[Profile],
        profile_ids: &[Value],
    ) -> Result<(), ThicketError> {
        self.extend_threads(
            profiles,
            profile_ids,
            thicket_perfsim::default_threads(profiles.len()),
        )
    }

    /// [`Thicket::extend`] with an explicit worker count; bit-identical
    /// for any `threads ≥ 1`.
    pub fn extend_threads(
        &mut self,
        profiles: &[Profile],
        profile_ids: &[Value],
        threads: usize,
    ) -> Result<(), ThicketError> {
        if profiles.len() != profile_ids.len() {
            return Err(ThicketError::Invalid(format!(
                "{} profiles but {} profile ids",
                profiles.len(),
                profile_ids.len()
            )));
        }
        if profiles.is_empty() {
            return Ok(());
        }
        {
            let existing: HashSet<Value> = self.profiles().into_iter().collect();
            let mut seen = HashSet::new();
            for id in profile_ids {
                if existing.contains(id) || !seen.insert(id) {
                    return Err(ThicketError::Invalid(format!("duplicate profile id {id}")));
                }
            }
        }

        // Union the existing unified graph with the new call trees. The
        // existing graph goes first, so `mappings[0]` re-keys the rows
        // already in the thicket.
        let mut graphs: Vec<&thicket_graph::Graph> = Vec::with_capacity(profiles.len() + 1);
        graphs.push(&self.graph);
        graphs.extend(profiles.iter().map(|p| p.graph()));
        let union = thicket_graph::GraphUnion::build(&graphs);

        // Existing perf rows as one pre-typed fragment batch.
        let self_mapping = &union.mappings[0];
        let keys: Vec<Key> = self
            .perf_data
            .index()
            .keys()
            .iter()
            .map(|key| {
                let old = self.node_of_value(&key[0]).ok_or_else(|| {
                    ThicketError::Invalid("perf row references unknown node".into())
                })?;
                Ok(vec![
                    Value::Int(self_mapping[&old].index() as i64),
                    key[1].clone(),
                ])
            })
            .collect::<Result<_, ThicketError>>()?;
        // One typed batch per new profile, assembled on the workers,
        // and the new metadata rows — everything fallible that doesn't
        // need to consume the existing frames happens first, so an
        // error here leaves the thicket untouched.
        let new_frags = profile_fragments(profiles, &union.mappings[1..], profile_ids, threads)?;
        let mut mb = FrameBuilder::new([PROFILE_LEVEL]);
        for (profile, pid) in profiles.iter().zip(profile_ids.iter()) {
            mb.push_row(
                vec![pid.clone()],
                profile
                    .metadata_iter()
                    .map(|(k, v)| (ColKey::new(k), v.clone())),
            )?;
        }
        let meta_keys: Vec<Key> = self
            .metadata
            .index()
            .keys()
            .iter()
            .map(|key| vec![key[0].clone()])
            .collect();

        // Existing perf rows as one pre-typed fragment batch. The
        // columns are *moved* in ([`ColumnFragments::absorb`]), not
        // cloned: a streaming load extends once per chunk, and cloning
        // the whole accumulated table each time would turn a linear
        // ingest quadratic.
        let mut frags = Vec::with_capacity(profiles.len() + 1);
        let mut base = ColumnFragments::with_keys([NODE_LEVEL, PROFILE_LEVEL], keys)?;
        let old_perf = std::mem::replace(
            &mut self.perf_data,
            DataFrame::new(Index::empty([NODE_LEVEL, PROFILE_LEVEL])),
        );
        base.absorb(old_perf)?;
        frags.push(base);
        frags.extend(new_frags);
        let perf_data =
            crate::order::sort_frame_by_index_threads(&merge_fragments(&frags)?, threads);

        // Metadata: existing rows as a fragment (moved the same way),
        // new rows per profile.
        let mut meta_base = ColumnFragments::with_keys([PROFILE_LEVEL], meta_keys)?;
        let old_meta = std::mem::replace(
            &mut self.metadata,
            DataFrame::new(Index::empty([PROFILE_LEVEL])),
        );
        meta_base.absorb(old_meta)?;
        let metadata = merge_fragments(&[meta_base, mb.finish_fragments()])?;

        self.graph = union.graph;
        self.perf_data = perf_data;
        self.metadata = metadata;
        self.statsframe = DataFrame::new(Index::empty([NODE_LEVEL]));
        Ok(())
    }
    /// Remove call-graph nodes that carry no performance data (e.g.
    /// structural interior nodes another profile contributed), rebuilding
    /// ancestry through nearest kept ancestors — Hatchet's `squash`.
    pub fn squash(&self) -> Thicket {
        let measured: HashSet<_> = self
            .perf_data
            .index()
            .keys()
            .iter()
            .filter_map(|k| self.node_of_value(&k[0]))
            .collect();
        let (subgraph, mapping) = self.graph.induced_subgraph(&measured);

        let keys: Vec<Vec<Value>> = self
            .perf_data
            .index()
            .keys()
            .iter()
            .map(|k| {
                let old = self.node_of_value(&k[0]).expect("measured node");
                let new = mapping[&old];
                vec![Value::Int(new.index() as i64), k[1].clone()]
            })
            .collect();
        let index = Index::new([NODE_LEVEL, PROFILE_LEVEL], keys).expect("same arity");
        let mut perf_data = DataFrame::new(index);
        for (k, c) in self.perf_data.columns() {
            perf_data.insert(k.clone(), c.clone()).expect("unique keys");
        }
        Thicket::from_components(
            subgraph,
            perf_data.sort_by_index(),
            self.metadata.clone(),
            DataFrame::new(Index::empty([NODE_LEVEL])),
        )
        .expect("valid components")
    }

    /// Keep only call-tree nodes measured in **every** profile — the
    /// strict intersection semantics of the paper's hierarchical
    /// composition, applied within a single thicket.
    pub fn intersect_nodes(&self) -> Thicket {
        let nprofiles = self.metadata.len();
        let mut counts: HashMap<Value, HashSet<Value>> = HashMap::new();
        for key in self.perf_data.index().keys() {
            counts
                .entry(key[0].clone())
                .or_default()
                .insert(key[1].clone());
        }
        let keep: HashSet<Value> = counts
            .into_iter()
            .filter(|(_, profiles)| profiles.len() == nprofiles)
            .map(|(node, _)| node)
            .collect();
        let perf_data = self
            .perf_data
            .filter(|r| keep.contains(&r.level(NODE_LEVEL)));
        let mut out = self.clone();
        out.perf_data = perf_data;
        out.statsframe = DataFrame::new(Index::empty([NODE_LEVEL]));
        out.squash()
    }

    /// Apply a query written in the string dialect (see
    /// [`thicket_query::Query::parse`]), e.g.
    /// `(".", name == "Base_CUDA") -> ("*") -> (".", name endswith "block_128")`.
    pub fn query_str(&self, query: &str) -> Result<Thicket, ThicketError> {
        let q = Query::parse(query)
            .map_err(|e| ThicketError::Invalid(format!("query dialect: {e}")))?;
        self.query(&q)
    }

    /// Performance data as CSV, with the node level rendered as names.
    pub fn perf_csv(&self) -> String {
        to_csv(&self.perf_data_named())
    }

    /// Metadata table as CSV.
    pub fn metadata_csv(&self) -> String {
        to_csv(&self.metadata)
    }

    /// Aggregated statistics as CSV, node level rendered as names.
    pub fn stats_csv(&self) -> String {
        to_csv(&self.statsframe_named())
    }

    /// Structural diff of this thicket's call graph against another's
    /// (which call paths appeared/disappeared between two ensembles).
    pub fn graph_diff(&self, other: &Thicket) -> thicket_graph::GraphDiff {
        thicket_graph::GraphDiff::compute(self.graph(), other.graph())
    }

    /// Per-profile totals of one metric (summed over nodes) — a quick
    /// whole-run figure of merit.
    pub fn profile_totals(&self, metric: &ColKey) -> Result<Vec<(Value, f64)>, ThicketError> {
        let col = self.perf_data.column(metric)?;
        let mut acc: HashMap<Value, f64> = HashMap::new();
        for (row, key) in self.perf_data.index().keys().iter().enumerate() {
            if let Some(v) = col.get_f64(row) {
                *acc.entry(key[1].clone()).or_insert(0.0) += v;
            }
        }
        // Report in metadata (profile) order.
        Ok(self
            .profiles()
            .into_iter()
            .filter_map(|p| acc.get(&p).map(|v| (p.clone(), *v)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_graph::{Frame, Graph};
    use thicket_perfsim::Profile;

    /// Profile with interior nodes that carry no metrics.
    fn profile_with_structure(run: i64, with_extra: bool) -> Profile {
        let mut g = Graph::new();
        let main = g.add_root(Frame::named("main"));
        let wrapper = g.add_child(main, Frame::named("wrapper"));
        let kernel = g.add_child(wrapper, Frame::named("kernel"));
        let mut p = Profile::new(g);
        p.set_metadata("run", run);
        p.set_metric(kernel, "time", run as f64);
        if with_extra {
            let extra = p.graph().find_by_name("wrapper").unwrap();
            p.set_metric(extra, "time", run as f64 * 0.1);
        }
        p
    }

    fn build(profiles: &[Profile]) -> Thicket {
        Thicket::loader(profiles).load().map(|(tk, _)| tk).unwrap()
    }

    fn build_indexed(profiles: &[Profile], ids: &[Value]) -> Thicket {
        Thicket::loader(profiles)
            .profile_ids(ids)
            .load()
            .map(|(tk, _)| tk)
            .unwrap()
    }

    #[test]
    fn squash_drops_unmeasured_nodes() {
        let tk = build(&[
            profile_with_structure(1, false),
            profile_with_structure(2, false),
        ]);
        assert_eq!(tk.graph().len(), 3);
        let squashed = tk.squash();
        // Only `kernel` carries metrics.
        assert_eq!(squashed.graph().len(), 1);
        assert_eq!(squashed.perf_data().len(), 2);
        let kernel = squashed.find_node("kernel").unwrap();
        assert_eq!(
            squashed.metric_at(kernel, &tk.profiles()[0], &ColKey::new("time")),
            Some(1.0)
        );
    }

    #[test]
    fn squash_preserves_measured_ancestry() {
        let tk = build(&[profile_with_structure(1, true)]);
        let squashed = tk.squash();
        assert_eq!(squashed.graph().len(), 2);
        let kernel = squashed.find_node("kernel").unwrap();
        // kernel's parent is now the measured wrapper.
        assert_eq!(
            squashed.graph().node(squashed.graph().node(kernel).parents()[0]).name(),
            "wrapper"
        );
    }

    #[test]
    fn intersect_nodes_keeps_common_only() {
        // Profile 2 has an extra measured node (wrapper).
        let tk = build(&[
            profile_with_structure(1, false),
            profile_with_structure(2, true),
        ]);
        let common = tk.intersect_nodes();
        // Only `kernel` is measured in both profiles.
        assert_eq!(common.graph().len(), 1);
        assert_eq!(common.perf_data().len(), 2);
    }

    #[test]
    fn query_str_end_to_end() {
        let tk = build(&[profile_with_structure(1, true)]);
        let hit = tk.query_str(r#"("*") -> (".", name == "kernel")"#).unwrap();
        assert!(hit.find_node("kernel").is_some());
        assert!(tk.query_str("((((").is_err());
    }

    #[test]
    fn csv_exports() {
        let mut tk = build(&[
            profile_with_structure(1, false),
            profile_with_structure(2, false),
        ]);
        tk.compute_stats_all(thicket_dataframe::AggFn::Mean).unwrap();
        let perf = tk.perf_csv();
        assert!(perf.lines().next().unwrap().starts_with("node,profile"));
        assert!(perf.contains("kernel"));
        let meta = tk.metadata_csv();
        assert_eq!(meta.lines().count(), 3);
        let stats = tk.stats_csv();
        assert!(stats.contains("time_mean"));
    }

    #[test]
    fn graph_diff_between_thickets() {
        let a = build(&[profile_with_structure(1, false)]);
        let b = build(&[profile_with_structure(2, false)]);
        let d = a.graph_diff(&b);
        assert!(d.is_identical());
        assert_eq!(d.similarity(), 1.0);
    }

    #[test]
    fn extend_matches_full_rebuild() {
        let profiles: Vec<Profile> = (1..=4)
            .map(|run| profile_with_structure(run, run % 2 == 0))
            .collect();
        let ids: Vec<Value> = (0..4i64).map(Value::Int).collect();
        let full = Thicket::loader(&profiles).profile_ids(&ids).load().unwrap().0;

        let mut grown = Thicket::loader(&profiles[..2]).profile_ids(&ids[..2]).load().unwrap().0;
        grown.extend(&profiles[2..], &ids[2..]).unwrap();
        assert_eq!(grown.perf_data(), full.perf_data());
        assert_eq!(grown.metadata(), full.metadata());
        assert_eq!(grown.graph().len(), full.graph().len());
        assert!(grown.statsframe().is_empty());

        // Thread count does not change the result.
        let mut one = Thicket::loader(&profiles[..2]).profile_ids(&ids[..2]).load().unwrap().0;
        one.extend_threads(&profiles[2..], &ids[2..], 1).unwrap();
        let mut eight = Thicket::loader(&profiles[..2]).profile_ids(&ids[..2]).load().unwrap().0;
        eight.extend_threads(&profiles[2..], &ids[2..], 8).unwrap();
        assert_eq!(one.perf_data(), eight.perf_data());
        assert_eq!(one.metadata(), eight.metadata());
    }

    #[test]
    fn extend_unions_divergent_trees() {
        let base = profile_with_structure(1, false);
        let mut g = Graph::new();
        let main = g.add_root(Frame::named("main"));
        let wrapper = g.add_child(main, Frame::named("wrapper"));
        let kernel = g.add_child(wrapper, Frame::named("kernel"));
        let extra = g.add_child(wrapper, Frame::named("leaf2"));
        let mut divergent = Profile::new(g);
        divergent.set_metadata("run", 2i64);
        divergent.set_metric(kernel, "time", 2.0);
        divergent.set_metric(extra, "time", 7.0);

        let mut tk = build_indexed(&[base], &[Value::Int(0)]);
        assert_eq!(tk.graph().len(), 3);
        tk.extend(&[divergent], &[Value::Int(1)]).unwrap();
        assert_eq!(tk.graph().len(), 4);
        assert_eq!(tk.profiles().len(), 2);
        let leaf2 = tk.find_node("leaf2").unwrap();
        assert_eq!(
            tk.metric_at(leaf2, &Value::Int(1), &ColKey::new("time")),
            Some(7.0)
        );
        // The old profile never measured the new node.
        assert_eq!(tk.metric_at(leaf2, &Value::Int(0), &ColKey::new("time")), None);
    }

    #[test]
    fn extend_validates_ids_and_handles_empty() {
        let mut tk = build_indexed(&[profile_with_structure(1, false)], &[Value::Int(0)]);
        // Colliding with an existing profile id.
        assert!(tk
            .extend(&[profile_with_structure(2, false)], &[Value::Int(0)])
            .is_err());
        // Duplicated within the new batch.
        assert!(tk
            .extend(
                &[profile_with_structure(2, false), profile_with_structure(3, false)],
                &[Value::Int(1), Value::Int(1)]
            )
            .is_err());
        // Arity mismatch.
        assert!(tk
            .extend(&[profile_with_structure(2, false)], &[])
            .is_err());
        // Empty extension is a no-op.
        let before = tk.perf_data().clone();
        tk.extend(&[], &[]).unwrap();
        assert_eq!(tk.perf_data(), &before);
        assert_eq!(tk.profiles().len(), 1);
    }

    #[test]
    fn profile_totals_sum_metrics() {
        let tk = build_indexed(
            &[profile_with_structure(1, true), profile_with_structure(2, true)],
            &[Value::Int(1), Value::Int(2)],
        );
        let totals = tk.profile_totals(&ColKey::new("time")).unwrap();
        assert_eq!(totals.len(), 2);
        assert!((totals[0].1 - 1.1).abs() < 1e-12);
        assert!((totals[1].1 - 2.2).abs() < 1e-12);
        assert!(tk.profile_totals(&ColKey::new("nope")).is_err());
    }
}
