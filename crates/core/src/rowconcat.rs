//! Row-axis (index) concatenation of thickets: pooling several ensembles
//! into one larger ensemble — the counterpart of the column-axis
//! composition in [`crate::concat_thickets`]. Thicket's Python API calls
//! this `concat_thickets(axis="index")`.

use crate::thicket::{input_failure, Thicket, ThicketError, NODE_LEVEL, PROFILE_LEVEL};
use std::collections::HashSet;
use thicket_dataframe::{merge_fragments, ColumnFragments, DataFrame, Index, Key, Value};
use thicket_graph::GraphUnion;

/// Pool the profiles of several thickets into one thicket: call graphs
/// are structurally unified, performance rows re-keyed onto the unified
/// node ids, and metadata rows concatenated (missing columns null-fill).
/// Profile ids must be globally unique across inputs.
///
/// Per-input row batches are extracted on worker threads; see
/// [`concat_thickets_rows_threads`] for an explicit count.
pub fn concat_thickets_rows(inputs: &[&Thicket]) -> Result<Thicket, ThicketError> {
    concat_thickets_rows_threads(inputs, thicket_perfsim::default_threads(inputs.len()))
}

/// [`concat_thickets_rows`] with an explicit worker count. Each input's
/// re-keyed row batch is built on its own worker; batches merge into the
/// frame serially in input order, so the result is identical for any
/// `threads ≥ 1`.
pub fn concat_thickets_rows_threads(
    inputs: &[&Thicket],
    threads: usize,
) -> Result<Thicket, ThicketError> {
    if inputs.is_empty() {
        return Err(ThicketError::Invalid("concat_thickets_rows of nothing".into()));
    }
    {
        let mut seen: HashSet<Value> = HashSet::new();
        for tk in inputs {
            for p in tk.profiles() {
                if !seen.insert(p.clone()) {
                    return Err(ThicketError::Invalid(format!(
                        "profile id {p} appears in more than one input"
                    )));
                }
            }
        }
    }

    let graphs: Vec<&thicket_graph::Graph> = inputs.iter().map(|t| t.graph()).collect();
    let union = GraphUnion::build(&graphs);

    // Perf rows: each worker re-keys its input's node level through the
    // graph mapping and emits a typed column batch — the index fragment
    // plus the input's columns, cloned whole (inputs are already
    // columnar, so no per-cell boxing). `merge_fragments` then
    // null-fills metric columns an input lacks in one schema-union
    // pass, keeping row order independent of the thread count.
    let items: Vec<_> = inputs.iter().zip(union.mappings.iter()).collect();
    let frags: Vec<ColumnFragments> =
        thicket_perfsim::try_parallel_map(&items, threads, |(tk, mapping)| {
            let keys: Vec<Key> = tk
                .perf_data()
                .index()
                .keys()
                .iter()
                .map(|key| {
                    let old = tk.node_of_value(&key[0]).ok_or_else(|| {
                        ThicketError::Invalid("perf row references unknown node".into())
                    })?;
                    Ok(vec![
                        Value::Int(mapping[&old].index() as i64),
                        key[1].clone(),
                    ])
                })
                .collect::<Result<_, ThicketError>>()?;
            let mut frag = ColumnFragments::with_keys([NODE_LEVEL, PROFILE_LEVEL], keys)?;
            for (k, c) in tk.perf_data().columns() {
                frag.push_column(k.clone(), c.clone())?;
            }
            Ok(frag)
        })
        .map_err(|e| input_failure(e, "input thicket"))?;
    let perf_data =
        crate::order::sort_frame_by_index_threads(&merge_fragments(&frags)?, threads);

    // Metadata rows concatenate the same way; columns union, null fill.
    let mut meta_frags: Vec<ColumnFragments> = Vec::with_capacity(inputs.len());
    for tk in inputs {
        let keys: Vec<Key> = tk
            .metadata()
            .index()
            .keys()
            .iter()
            .map(|key| vec![key[0].clone()])
            .collect();
        let mut frag = ColumnFragments::with_keys([PROFILE_LEVEL], keys)?;
        for (k, c) in tk.metadata().columns() {
            frag.push_column(k.clone(), c.clone())?;
        }
        meta_frags.push(frag);
    }
    let metadata = merge_fragments(&meta_frags)?;

    Thicket::from_components(
        union.graph,
        perf_data,
        metadata,
        DataFrame::new(Index::empty([NODE_LEVEL])),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_dataframe::ColKey;
    use thicket_perfsim::{simulate_cpu_run, simulate_gpu_run, CpuRunConfig, GpuRunConfig};

    fn cpu(seed: u64) -> Thicket {
        let mut cfg = CpuRunConfig::quartz_default();
        cfg.seed = seed;
        Thicket::loader(&[simulate_cpu_run(&cfg)][..])
            .load()
            .map(|(tk, _)| tk)
            .unwrap()
    }

    #[test]
    fn pools_profiles_and_unifies_graphs() {
        let a = cpu(1);
        let b = cpu(2);
        let pooled = concat_thickets_rows(&[&a, &b]).unwrap();
        assert_eq!(pooled.profiles().len(), 2);
        // Same tree shape → same unified size.
        assert_eq!(pooled.graph().len(), a.graph().len());
        assert_eq!(
            pooled.perf_data().len(),
            a.perf_data().len() + b.perf_data().len()
        );
        // Metric values preserved under re-keying.
        let dot_a = a.find_node("Stream_DOT").unwrap();
        let dot_p = pooled.find_node("Stream_DOT").unwrap();
        let profile = a.profiles()[0].clone();
        assert_eq!(
            a.metric_at(dot_a, &profile, &ColKey::new("time (exc)")),
            pooled.metric_at(dot_p, &profile, &ColKey::new("time (exc)"))
        );
    }

    #[test]
    fn mixed_tools_null_fill() {
        let cpu_tk = cpu(1);
        let gpu_tk =
            Thicket::loader(&[simulate_gpu_run(&GpuRunConfig::lassen_default())][..])
            .load()
            .map(|(tk, _)| tk)
            .unwrap();
        let pooled = concat_thickets_rows(&[&cpu_tk, &gpu_tk]).unwrap();
        assert_eq!(pooled.profiles().len(), 2);
        // Graph is the union of the two shapes.
        assert!(pooled.graph().len() > cpu_tk.graph().len());
        // CPU metric exists but is null on GPU rows and vice versa.
        let cpu_col = pooled.perf_data().column(&ColKey::new("time (exc)")).unwrap();
        let gpu_col = pooled.perf_data().column(&ColKey::new("time (gpu)")).unwrap();
        assert!(cpu_col.count_valid() > 0);
        assert!(gpu_col.count_valid() > 0);
        // No row carries both: the two tools measured disjoint trees.
        for row in 0..pooled.perf_data().len() {
            assert!(cpu_col.is_null_at(row) || gpu_col.is_null_at(row));
        }
        // Metadata columns from both sides.
        assert!(pooled.metadata().has_column(&ColKey::new("compiler")));
        assert!(pooled.metadata().has_column(&ColKey::new("cuda compiler")));
    }

    #[test]
    fn duplicate_profile_ids_rejected() {
        let a = cpu(1);
        assert!(concat_thickets_rows(&[&a, &a]).is_err());
        assert!(concat_thickets_rows(&[]).is_err());
    }

    #[test]
    fn stats_work_after_pooling() {
        let a = cpu(1);
        let b = cpu(2);
        let mut pooled = concat_thickets_rows(&[&a, &b]).unwrap();
        pooled
            .compute_stats(&[(ColKey::new("time (exc)"), vec![thicket_dataframe::AggFn::Std])])
            .unwrap();
        // Two runs → std defined on every kernel node.
        let col = pooled
            .statsframe()
            .column(&ColKey::new("time (exc)_std"))
            .unwrap();
        assert!(col.count_valid() > 0);
    }
}
