//! Built-in visualization methods (paper §4.3.1): `display_heatmap` and
//! `display_histogram`, mirroring Thicket's Python API where these are
//! methods on the thicket object. Each returns both a terminal (text)
//! rendering and an SVG document.

use crate::thicket::{Thicket, ThicketError};
use thicket_dataframe::ColKey;
use thicket_graph::NodeId;
use thicket_stats::histogram;

impl Thicket {
    /// Heatmap of aggregated-statistics columns (rows = call-tree nodes,
    /// per-column normalization, Figure 12). Requires
    /// [`Thicket::compute_stats`] to have run; `columns` must exist in
    /// the statsframe. Returns `(text, svg)`.
    pub fn display_heatmap(&self, columns: &[ColKey]) -> Result<(String, String), ThicketError> {
        if self.statsframe().is_empty() {
            return Err(ThicketError::Invalid(
                "no aggregated statistics; call compute_stats first".into(),
            ));
        }
        let cols: Vec<_> = columns
            .iter()
            .map(|k| self.statsframe().column(k))
            .collect::<Result<_, _>>()?;
        let row_labels: Vec<String> = self
            .statsframe()
            .index()
            .keys()
            .iter()
            .map(|k| self.node_name(&k[0]))
            .collect();
        let col_labels: Vec<String> = columns.iter().map(|k| k.name.to_string()).collect();
        let values: Vec<Vec<f64>> = (0..self.statsframe().len())
            .map(|r| cols.iter().map(|c| c.get_f64(r).unwrap_or(f64::NAN)).collect())
            .collect();
        let text = thicket_viz::text_heatmap(&row_labels, &col_labels, &values);
        let svg = thicket_viz::heatmap_chart(
            &row_labels,
            &col_labels,
            &values,
            "aggregated statistics heatmap",
        );
        Ok((text, svg))
    }

    /// Histogram of one metric's distribution across profiles at one
    /// node (Figure 12's insets). Returns `(text, svg)`.
    pub fn display_histogram(
        &self,
        node: NodeId,
        metric: &ColKey,
        bins: usize,
    ) -> Result<(String, String), ThicketError> {
        let values: Vec<f64> = self
            .metric_series(node, metric)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let hist = histogram(&values, bins).ok_or_else(|| {
            ThicketError::Invalid(format!(
                "no data to bin for {metric} at {}",
                self.graph().node(node).name()
            ))
        })?;
        let name = self.graph().node(node).name();
        let text = format!(
            "histogram of {metric} at {name} ({} samples):\n{}",
            values.len(),
            thicket_viz::text_histogram(&hist, 30)
        );
        let svg = thicket_viz::histogram_chart(&hist, name, &metric.name);
        Ok((text, svg))
    }

    /// Flame graph of one profile's call tree, widths proportional to an
    /// inclusive metric (`time (inc)` typically). Returns the SVG.
    pub fn display_flame_graph(
        &self,
        profile: &thicket_dataframe::Value,
        metric: &ColKey,
    ) -> Result<String, ThicketError> {
        self.perf_data().column(metric)?;
        Ok(thicket_viz::flame_graph(
            self.graph(),
            |id| self.metric_at(id, profile, metric),
            &format!("{metric} — profile {profile}"),
        ))
    }

    /// Box plots of one metric across profiles for a set of nodes
    /// (an ensemble-variation overview). Returns the SVG.
    pub fn display_boxplot(
        &self,
        nodes: &[NodeId],
        metric: &ColKey,
    ) -> Result<String, ThicketError> {
        self.perf_data().column(metric)?;
        let groups: Vec<(String, Vec<f64>)> = nodes
            .iter()
            .map(|&n| {
                (
                    self.graph().node(n).name().to_string(),
                    self.metric_series(n, metric)
                        .into_iter()
                        .map(|(_, v)| v)
                        .collect(),
                )
            })
            .collect();
        Ok(thicket_viz::box_plot(
            &groups,
            &format!("{metric} across {} profiles", self.profiles().len()),
            &metric.name,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_dataframe::AggFn;
    use thicket_perfsim::{simulate_cpu_run, CpuRunConfig};

    fn ensemble() -> Thicket {
        let profiles: Vec<_> = (0..8)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        Thicket::loader(&profiles).load().unwrap().0
    }

    #[test]
    fn heatmap_requires_stats() {
        let tk = ensemble();
        assert!(tk.display_heatmap(&[ColKey::new("x")]).is_err());
        let mut tk = tk;
        tk.compute_stats(&[(ColKey::new("time (exc)"), vec![AggFn::Std])])
            .unwrap();
        let (text, svg) = tk.display_heatmap(&[ColKey::new("time (exc)_std")]).unwrap();
        assert!(text.contains("time (exc)_std"));
        assert!(text.contains("Apps_VOL3D"));
        assert!(svg.starts_with("<svg"));
        // Unknown column still errors.
        assert!(tk.display_heatmap(&[ColKey::new("zzz")]).is_err());
    }

    #[test]
    fn histogram_bins_all_profiles() {
        let tk = ensemble();
        let node = tk.find_node("Stream_DOT").unwrap();
        let (text, svg) = tk
            .display_histogram(node, &ColKey::new("time (exc)"), 4)
            .unwrap();
        assert!(text.contains("8 samples"));
        assert!(svg.contains("<rect"));
        // A metric the node does not carry fails.
        assert!(tk
            .display_histogram(node, &ColKey::new("nope"), 4)
            .is_err());
    }

    #[test]
    fn flame_graph_from_profile() {
        let tk = ensemble();
        let profile = tk.profiles()[0].clone();
        let svg = tk
            .display_flame_graph(&profile, &ColKey::new("time (inc)"))
            .unwrap();
        assert!(svg.contains(">Base_Seq</text>"));
        assert!(svg.contains("<rect"));
        assert!(tk
            .display_flame_graph(&profile, &ColKey::new("nope"))
            .is_err());
    }

    #[test]
    fn boxplot_covers_nodes() {
        let tk = ensemble();
        let nodes = [
            tk.find_node("Apps_VOL3D").unwrap(),
            tk.find_node("Lcals_HYDRO_1D").unwrap(),
        ];
        let svg = tk.display_boxplot(&nodes, &ColKey::new("time (exc)")).unwrap();
        assert!(svg.contains(">Apps_VOL3D</text>"));
        assert!(svg.contains(">Lcals_HYDRO_1D</text>"));
        assert!(tk.display_boxplot(&nodes, &ColKey::new("nope")).is_err());
    }
}
