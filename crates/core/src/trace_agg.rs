//! Streaming trace → profile aggregation.
//!
//! [`TraceAggregator`] folds chunks of [`TraceEvent`]s into per-rank
//! call-tree profiles without ever materializing the full trace. Memory
//! is bounded by O(tree depth × open windows) per rank: the only state
//! kept between chunks is each rank's deduplicated call graph, its stack
//! of open frames, and one accumulator row per graph node. Event vectors
//! are borrowed, folded, and dropped — a trace 1000× larger than RAM
//! streams through at constant resident size.
//!
//! Timestamps accumulate as exact `u64` nanoseconds, so the result is
//! bit-identical regardless of where chunk boundaries fall (no float
//! reassociation); the conversion to seconds happens once, at profile
//! emission.
//!
//! With a window length set, the event time axis is cut into absolute
//! windows `[k·w, (k+1)·w)` and each rank emits one profile per window
//! that saw activity. Frames open at a boundary are split: time up to the
//! boundary is attributed to the closing window, and the frame reopens in
//! the next window without a new visit count.

use std::collections::BTreeMap;
use std::time::Duration;

use thicket_dataframe::Value;
use thicket_graph::{Frame, Graph, NodeId};
use thicket_perfsim::{
    DiagKind, Diagnostic, IngestReport, Profile, Strictness, TraceEvent, TraceEventKind,
};

use crate::thicket::ThicketError;

/// A frame currently open on one rank's region stack.
struct OpenFrame {
    node: NodeId,
    /// Start of the current accumulation segment (reset at window roll).
    seg_start_ns: u64,
}

/// Per-rank streaming state: the growing call graph, the open-region
/// stack, and one `(inclusive ns, visits)` accumulator per node.
struct RankState {
    graph: Graph,
    stack: Vec<OpenFrame>,
    inc_ns: Vec<u64>,
    visits: Vec<u64>,
    window: u64,
    window_start_ns: u64,
    last_time_ns: u64,
    /// Anything recorded since the last emit? (Gates empty-window skips.)
    dirty: bool,
    /// A lenient-mode anomaly drops the rank's current window and
    /// swallows the rest of its stream; prior emitted windows survive.
    poisoned: bool,
}

impl RankState {
    fn new(first_time_ns: u64, window_ns: Option<u64>) -> Self {
        let (window, window_start_ns) = match window_ns {
            Some(w) => (first_time_ns / w, (first_time_ns / w) * w),
            None => (0, 0),
        };
        RankState {
            graph: Graph::new(),
            stack: Vec::new(),
            inc_ns: Vec::new(),
            visits: Vec::new(),
            window,
            window_start_ns,
            last_time_ns: first_time_ns,
            dirty: false,
            poisoned: false,
        }
    }

    fn grow_to_graph(&mut self) {
        let n = self.graph.len();
        if self.inc_ns.len() < n {
            self.inc_ns.resize(n, 0);
            self.visits.resize(n, 0);
        }
    }
}

/// Streaming aggregator: push event chunks, pull finished profiles.
///
/// ```
/// use std::io::Cursor;
/// use thicket_core::TraceAggregator;
/// use thicket_perfsim::{Strictness, TraceConfig, TraceReader};
///
/// let cfg = TraceConfig::quartz(2, 1, 42);
/// let mut bytes = Vec::new();
/// thicket_perfsim::emit_trace(&cfg, &mut bytes).unwrap();
///
/// let mut reader = TraceReader::new(Cursor::new(bytes)).unwrap();
/// let meta = reader.metadata().to_vec();
/// let mut agg = TraceAggregator::new(meta, None, Strictness::FailFast);
/// loop {
///     let events = reader.next_events(512).unwrap();
///     if events.is_empty() {
///         break;
///     }
///     agg.push_events(&events).unwrap();
/// }
/// let (profiles, report) = agg.finish().unwrap();
/// assert_eq!(profiles.len(), 2); // one per rank
/// assert!(report.is_clean());
/// ```
pub struct TraceAggregator {
    window_ns: Option<u64>,
    strictness: Strictness,
    base_meta: Vec<(String, Value)>,
    source_label: String,
    ranks: BTreeMap<u32, RankState>,
    ready: Vec<Profile>,
    diagnostics: Vec<Diagnostic>,
    emitted: usize,
    dropped: usize,
}

impl TraceAggregator {
    /// Create an aggregator. `metadata` is stamped onto every emitted
    /// profile (the trace header's M-block, typically); `window` of
    /// `None` means one profile per rank for the whole trace.
    pub fn new(
        metadata: Vec<(String, Value)>,
        window: Option<Duration>,
        strictness: Strictness,
    ) -> Self {
        TraceAggregator {
            window_ns: window.map(|w| (w.as_nanos() as u64).max(1)),
            strictness,
            base_meta: metadata,
            source_label: "trace".to_string(),
            ranks: BTreeMap::new(),
            ready: Vec::new(),
            diagnostics: Vec::new(),
            emitted: 0,
            dropped: 0,
        }
    }

    /// Label used as the `source` of emitted diagnostics (usually the
    /// trace file path).
    pub fn with_source_label(mut self, label: impl Into<String>) -> Self {
        self.source_label = label.into();
        self
    }

    /// Record an externally detected problem (e.g. a torn read from the
    /// underlying [`thicket_perfsim::TraceReader`]). Under fail-fast
    /// strictness this aborts the ingest; under lenient strictness the
    /// diagnostic is kept and every rank's *current* window is dropped
    /// (prior emitted windows survive).
    pub fn record_failure(&mut self, kind: DiagKind) -> Result<(), ThicketError> {
        match self.strictness {
            Strictness::FailFast => Err(ThicketError::Invalid(format!(
                "trace ingest failed under fail-fast strictness ({kind} in {})",
                self.source_label
            ))),
            Strictness::Lenient { .. } => {
                self.diagnostics.push(Diagnostic {
                    source: self.source_label.clone(),
                    kind,
                });
                self.poison_all();
                Ok(())
            }
        }
    }

    /// Drop the current (incomplete) window of every rank and ignore any
    /// further events. Used after a stream-level failure.
    pub fn poison_all(&mut self) {
        for state in self.ranks.values_mut() {
            if !state.poisoned {
                if state.dirty {
                    self.dropped += 1;
                }
                state.poisoned = true;
            }
        }
    }

    /// Fold one chunk of events into the per-rank state. Events must be
    /// non-decreasing in time *per rank* (the global interleaving is
    /// irrelevant). Malformed streams produce typed diagnostics under
    /// lenient strictness and an error under fail-fast — never a panic.
    pub fn push_events(&mut self, events: &[TraceEvent]) -> Result<(), ThicketError> {
        for ev in events {
            self.push_event(ev)?;
        }
        Ok(())
    }

    fn push_event(&mut self, ev: &TraceEvent) -> Result<(), ThicketError> {
        let window_ns = self.window_ns;
        let state = self
            .ranks
            .entry(ev.rank)
            .or_insert_with(|| RankState::new(ev.time_ns, window_ns));
        if state.poisoned {
            return Ok(());
        }
        if ev.time_ns < state.last_time_ns {
            return self.anomaly(
                ev.rank,
                DiagKind::OutOfOrderEvent {
                    rank: ev.rank,
                    time_ns: ev.time_ns,
                },
            );
        }

        // Roll window boundaries the event has crossed, emitting each
        // closed window that saw activity.
        if let Some(w) = window_ns {
            while ev.time_ns >= state.window_start_ns + w {
                let boundary = state.window_start_ns + w;
                for frame in &mut state.stack {
                    state.inc_ns[frame.node.index()] += boundary - frame.seg_start_ns;
                    frame.seg_start_ns = boundary;
                    state.dirty = true;
                }
                if state.dirty {
                    let profile = emit_window(state, ev.rank, &self.base_meta);
                    self.ready.push(profile);
                    self.emitted += 1;
                } else if state.stack.is_empty() {
                    // Idle gap: jump straight to the event's window
                    // instead of rolling one empty window at a time.
                    state.window = ev.time_ns / w;
                    state.window_start_ns = state.window * w;
                    break;
                }
                state.window += 1;
                state.window_start_ns = boundary;
            }
        }

        match &ev.kind {
            TraceEventKind::Enter(name) => {
                let frame = Frame::with_type(name.clone(), "region");
                let node = match state.stack.last() {
                    Some(top) => {
                        let parent = top.node;
                        state
                            .graph
                            .child_with_frame(parent, &frame)
                            .unwrap_or_else(|| state.graph.add_child(parent, frame))
                    }
                    None => state
                        .graph
                        .root_with_frame(&frame)
                        .unwrap_or_else(|| state.graph.add_root(frame)),
                };
                state.grow_to_graph();
                state.visits[node.index()] += 1;
                state.dirty = true;
                state.stack.push(OpenFrame {
                    node,
                    seg_start_ns: ev.time_ns,
                });
                state.last_time_ns = ev.time_ns;
            }
            TraceEventKind::Leave => match state.stack.pop() {
                Some(frame) => {
                    state.inc_ns[frame.node.index()] += ev.time_ns - frame.seg_start_ns;
                    state.dirty = true;
                    state.last_time_ns = ev.time_ns;
                }
                None => {
                    return self.anomaly(
                        ev.rank,
                        DiagKind::UnbalancedStream {
                            rank: ev.rank,
                            detail: "leave event with no open region".to_string(),
                        },
                    );
                }
            },
        }
        Ok(())
    }

    fn anomaly(&mut self, rank: u32, kind: DiagKind) -> Result<(), ThicketError> {
        match self.strictness {
            Strictness::FailFast => Err(ThicketError::Invalid(format!(
                "trace ingest failed under fail-fast strictness ({kind} in {})",
                self.source_label
            ))),
            Strictness::Lenient { .. } => {
                self.diagnostics.push(Diagnostic {
                    source: format!("{} (rank {rank})", self.source_label),
                    kind,
                });
                if let Some(state) = self.ranks.get_mut(&rank) {
                    if state.dirty {
                        self.dropped += 1;
                    }
                    state.poisoned = true;
                }
                Ok(())
            }
        }
    }

    /// Profiles completed so far (closed windows). Draining between
    /// chunks is what keeps windowed ingest memory-bounded.
    pub fn drain_ready(&mut self) -> Vec<Profile> {
        std::mem::take(&mut self.ready)
    }

    /// True if no completed profile is waiting in the ready queue.
    pub fn ready_is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// Diagnostics recorded so far (lenient mode).
    pub fn diagnostics_len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Close every rank's final window and return any undrained profiles
    /// plus the ingest report. Ranks with regions still open at end of
    /// trace are unbalanced: fail-fast errors, lenient drops that rank's
    /// final window with a typed diagnostic.
    pub fn finish(mut self) -> Result<(Vec<Profile>, IngestReport), ThicketError> {
        let mut ranks = std::mem::take(&mut self.ranks);
        for (rank, state) in ranks.iter_mut() {
            if state.poisoned {
                continue;
            }
            if !state.stack.is_empty() {
                let detail = format!("{} region(s) still open at end of trace", state.stack.len());
                self.anomaly(*rank, DiagKind::UnbalancedStream {
                    rank: *rank,
                    detail,
                })?;
                // Lenient: the anomaly path couldn't see this state (we
                // took the map), so drop the window here.
                if state.dirty {
                    self.dropped += 1;
                }
                state.poisoned = true;
                continue;
            }
            if state.dirty {
                let profile = emit_window(state, *rank, &self.base_meta);
                self.ready.push(profile);
                self.emitted += 1;
            }
        }
        let report = IngestReport {
            attempted: self.emitted + self.dropped,
            loaded: self.emitted,
            diagnostics: std::mem::take(&mut self.diagnostics),
            pushdown: None,
        };
        Ok((std::mem::take(&mut self.ready), report))
    }
}

/// Emit one rank-window profile from the accumulated state and reset the
/// accumulators for the next window. Exclusive time is derived as
/// inclusive minus the sum of the children's inclusive (exact in u64
/// before the single conversion to seconds).
fn emit_window(state: &mut RankState, rank: u32, base_meta: &[(String, Value)]) -> Profile {
    state.grow_to_graph();
    let mut profile = Profile::new(state.graph.clone());
    for (i, id) in state.graph.ids().enumerate() {
        let inc = state.inc_ns[i];
        let visits = state.visits[i];
        if inc == 0 && visits == 0 {
            continue;
        }
        let child_inc: u64 = state
            .graph
            .node(id)
            .children()
            .iter()
            .map(|c| state.inc_ns[c.index()])
            .sum();
        let exc = inc.saturating_sub(child_inc);
        profile.set_metric(id, "time (inc)", inc as f64 / 1e9);
        profile.set_metric(id, "time (exc)", exc as f64 / 1e9);
        profile.set_metric(id, "visits", visits as f64);
    }
    for (k, v) in base_meta {
        profile.set_metadata(k.clone(), v.clone());
    }
    profile.set_metadata("rank", Value::Int(rank as i64));
    profile.set_metadata("window", Value::Int(state.window as i64));
    profile.set_metadata(
        "window start (ns)",
        Value::Int(state.window_start_ns as i64),
    );
    state.inc_ns.iter_mut().for_each(|v| *v = 0);
    state.visits.iter_mut().for_each(|v| *v = 0);
    state.dirty = false;
    profile
}
