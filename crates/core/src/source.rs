//! The pull-based ingest abstraction behind [`Loader`](crate::Loader).
//!
//! [`ProfileSource`] is the one interface the loader consumes: a batched
//! pull model (`next_chunk`) that a source fills from wherever its
//! profiles live — an in-memory slice, a loose-JSON ensemble directory,
//! a sharded store, or a raw event trace that never fits in memory. The
//! legacy `LoadSource` variants are thin adapters over this trait
//! ([`SliceSource`], [`OwnedSource`], [`EnsembleSource`],
//! [`StoreSource`]); [`TraceSource`] is the streaming newcomer that
//! motivated the redesign.
//!
//! The chunk protocol is what makes bounded-memory ingest possible: the
//! loader composes the first chunk into a thicket and folds every later
//! chunk in via [`Thicket::extend_threads`](crate::Thicket), so at no
//! point do source-side profiles and a fully-materialized input list
//! coexist. Sources that are cheap to materialize simply yield one
//! chunk — the trait costs them nothing.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::time::Duration;

use thicket_dataframe::PredExpr;
use thicket_perfsim::{
    default_threads, load_dir, DiagKind, IngestReport, Profile, Snapshot, Store, StoreEntry,
    StoreReader, Strictness, TraceError, TraceReader,
};

use crate::thicket::ThicketError;
use crate::trace_agg::TraceAggregator;

/// A pull-based, chunked supplier of profiles — the one interface
/// [`Loader`](crate::Loader) consumes for every source kind.
///
/// The loader drives a source like this:
///
/// 1. If a filter is set, it asks [`meta_keys`](ProfileSource::meta_keys)
///    which fields the source can answer, splits the predicate there
///    (planner pushdown), and offers the pushable part via
///    [`push_filter`](ProfileSource::push_filter). A source that returns
///    `false` gets the filter applied by the loader on each chunk
///    instead.
/// 2. It pulls [`next_chunk`](ProfileSource::next_chunk) until `None`,
///    composing the first chunk and extending with the rest.
/// 3. It collects [`take_report`](ProfileSource::take_report) and merges
///    it with the composition accounting.
///
/// Implement this to feed a thicket from a custom producer (a socket, a
/// generator, a foreign format) via
/// [`LoadSource::custom`](crate::LoadSource::custom).
pub trait ProfileSource {
    /// Pull the next batch of profiles. `Ok(None)` means the source is
    /// exhausted; an empty `Vec` is never returned in place of `None`.
    fn next_chunk(&mut self) -> Result<Option<Vec<Profile>>, ThicketError>;

    /// The metadata fields this source can answer predicates about,
    /// for planner pushdown. `None` means unknown — the loader then
    /// buffers every chunk and plans against the materialized profiles.
    fn meta_keys(&mut self) -> Option<BTreeSet<String>> {
        None
    }

    /// Offer the pushable predicate part to the source. Return `true`
    /// to claim it (subsequent chunks must already satisfy it); return
    /// `false` (the default) and the loader evaluates it per chunk.
    fn push_filter(&mut self, _expr: &PredExpr) -> bool {
        false
    }

    /// Read-phase accounting: sources attempted/loaded and any
    /// diagnostics, gathered across all chunks. Called once, after the
    /// final chunk. The default (an empty report) tells the loader the
    /// source has no read phase of its own — composition accounting
    /// stands alone, as it always has for in-memory loads.
    fn take_report(&mut self) -> IngestReport {
        IngestReport::default()
    }
}

/// Adapter: borrowed in-memory profiles as a one-chunk source.
///
/// Yields a clone of the slice. The loader's in-memory fast path avoids
/// this adapter (and the clone) entirely; it exists so borrowed slices
/// can participate in generic [`ProfileSource`] plumbing and tests.
pub struct SliceSource<'a> {
    profiles: &'a [Profile],
    done: bool,
}

impl<'a> SliceSource<'a> {
    /// Wrap a borrowed slice.
    pub fn new(profiles: &'a [Profile]) -> Self {
        SliceSource {
            profiles,
            done: false,
        }
    }
}

impl ProfileSource for SliceSource<'_> {
    fn next_chunk(&mut self) -> Result<Option<Vec<Profile>>, ThicketError> {
        if self.done || self.profiles.is_empty() {
            return Ok(None);
        }
        self.done = true;
        Ok(Some(self.profiles.to_vec()))
    }

    fn meta_keys(&mut self) -> Option<BTreeSet<String>> {
        Some(profile_meta_keys(self.profiles.iter()))
    }
}

/// Adapter: owned in-memory profiles as a one-chunk source (no copy —
/// the vector moves out on the first [`ProfileSource::next_chunk`]).
pub struct OwnedSource {
    profiles: Vec<Profile>,
    done: bool,
}

impl OwnedSource {
    /// Wrap an owned vector.
    pub fn new(profiles: Vec<Profile>) -> Self {
        OwnedSource {
            profiles,
            done: false,
        }
    }
}

impl ProfileSource for OwnedSource {
    fn next_chunk(&mut self) -> Result<Option<Vec<Profile>>, ThicketError> {
        if self.done || self.profiles.is_empty() {
            return Ok(None);
        }
        self.done = true;
        Ok(Some(std::mem::take(&mut self.profiles)))
    }

    fn meta_keys(&mut self) -> Option<BTreeSet<String>> {
        Some(profile_meta_keys(self.profiles.iter()))
    }
}

/// Adapter: a loose-JSON ensemble directory
/// ([`thicket_perfsim::ensemble`]) as a one-chunk source.
pub struct EnsembleSource {
    dir: PathBuf,
    threads: Option<usize>,
    strictness: Strictness,
    loaded: Option<(Vec<Profile>, IngestReport)>,
    done: bool,
}

impl EnsembleSource {
    /// Read the directory under the given worker count and strictness.
    pub fn new(dir: impl AsRef<Path>, threads: Option<usize>, strictness: Strictness) -> Self {
        EnsembleSource {
            dir: dir.as_ref().to_path_buf(),
            threads,
            strictness,
            loaded: None,
            done: false,
        }
    }

    fn ensure_loaded(&mut self) -> Result<(), ThicketError> {
        if self.loaded.is_none() {
            let (profiles, report) = load_dir(&self.dir, self.threads, self.strictness)?;
            self.loaded = Some((profiles, report));
        }
        Ok(())
    }
}

impl ProfileSource for EnsembleSource {
    fn next_chunk(&mut self) -> Result<Option<Vec<Profile>>, ThicketError> {
        if self.done {
            return Ok(None);
        }
        self.ensure_loaded()?;
        self.done = true;
        let profiles = std::mem::take(&mut self.loaded.as_mut().expect("just loaded").0);
        if profiles.is_empty() {
            return Ok(None);
        }
        Ok(Some(profiles))
    }

    fn meta_keys(&mut self) -> Option<BTreeSet<String>> {
        self.ensure_loaded().ok()?;
        Some(profile_meta_keys(
            self.loaded.as_ref().expect("just loaded").0.iter(),
        ))
    }

    fn take_report(&mut self) -> IngestReport {
        self.loaded
            .take()
            .map(|(_, report)| report)
            .unwrap_or_default()
    }
}

/// How a [`StoreSource`] holds its reader: generation-pinned (lease +
/// open shard handles) or a plain unpinned open.
enum ReaderHold {
    Pinned(Snapshot),
    Open(StoreReader),
}

impl ReaderHold {
    fn reader(&self) -> &StoreReader {
        match self {
            ReaderHold::Pinned(snap) => snap,
            ReaderHold::Open(reader) => reader,
        }
    }
}

/// Boxed manifest-entry predicate (the `filter_entries` escape hatch).
type EntryFilter<'a> = Box<dyn FnMut(&StoreEntry) -> bool + 'a>;

/// Adapter: a sharded store directory as a chunked source.
///
/// Selection (columnar manifest predicate evaluation) happens up front
/// and without shard I/O; shard reads then proceed in index chunks. The
/// default is a **single** chunk — identical I/O and threading to the
/// pre-streaming loader — because a store load is already one
/// memory-mapped pass; [`StoreSource::chunk_size`] opts into smaller
/// batches. Strictness is enforced per chunk with the same messages and
/// budgets as the classic store load path.
pub struct StoreSource<'a> {
    hold: ReaderHold,
    threads: Option<usize>,
    strictness: Strictness,
    chunk_size: Option<usize>,
    entries: Option<EntryFilter<'a>>,
    expr: Option<PredExpr>,
    selected: Option<Vec<usize>>,
    pos: usize,
    report: IngestReport,
}

impl<'a> StoreSource<'a> {
    /// Open a store directory. `pinned` opens a generation-pinned
    /// snapshot (lease registered, shard handles held) so concurrent
    /// appends, compaction, or GC can never tear the read.
    pub fn open(
        dir: impl AsRef<Path>,
        pinned: bool,
        threads: Option<usize>,
        strictness: Strictness,
    ) -> Result<Self, ThicketError> {
        let hold = if pinned {
            ReaderHold::Pinned(Store::open_pinned(dir)?)
        } else {
            ReaderHold::Open(Store::open(dir)?)
        };
        Ok(StoreSource {
            hold,
            threads,
            strictness,
            chunk_size: None,
            entries: None,
            expr: None,
            selected: None,
            pos: 0,
            report: IngestReport::default(),
        })
    }

    /// Wrap an already-pinned snapshot — e.g. a server's per-request
    /// pin — so the read goes through the same selection, chunking, and
    /// strictness machinery as every other store load.
    pub fn from_snapshot(
        snap: Snapshot,
        threads: Option<usize>,
        strictness: Strictness,
    ) -> StoreSource<'static> {
        StoreSource {
            hold: ReaderHold::Pinned(snap),
            threads,
            strictness,
            chunk_size: None,
            entries: None,
            expr: None,
            selected: None,
            pos: 0,
            report: IngestReport::default(),
        }
    }

    /// Read the selected indices in batches of `n` instead of one pass.
    pub fn chunk_size(mut self, n: usize) -> Self {
        self.chunk_size = Some(n.max(1));
        self
    }

    /// Select entries with a closure over the materialized manifest
    /// index (the legacy `filter_entries` escape hatch).
    pub fn entry_filter(mut self, pred: impl FnMut(&StoreEntry) -> bool + 'a) -> Self {
        self.entries = Some(Box::new(pred));
        self
    }

    fn ensure_selected(&mut self) -> Result<(), ThicketError> {
        if self.selected.is_some() {
            return Ok(());
        }
        let reader = self.hold.reader();
        let selected = if let Some(pred) = self.entries.as_mut() {
            reader
                .entries()
                .iter()
                .enumerate()
                .filter(|(_, e)| pred(e))
                .map(|(i, _)| i)
                .collect()
        } else if let Some(expr) = &self.expr {
            self.hold.reader().select_expr(expr)?
        } else {
            (0..self.hold.reader().manifest().profiles.len()).collect()
        };
        self.selected = Some(selected);
        Ok(())
    }
}

impl ProfileSource for StoreSource<'_> {
    fn next_chunk(&mut self) -> Result<Option<Vec<Profile>>, ThicketError> {
        self.ensure_selected()?;
        let selected = self.selected.as_ref().expect("just selected");
        if self.pos >= selected.len() {
            return Ok(None);
        }
        let end = match self.chunk_size {
            Some(n) => (self.pos + n).min(selected.len()),
            None => selected.len(),
        };
        let batch = &selected[self.pos..end];
        let threads = self
            .threads
            .unwrap_or_else(|| default_threads(self.hold.reader().manifest().profiles.len()));
        let (profiles, read) = self.hold.reader().load_indices(batch, threads)?;
        self.pos = end;
        if matches!(self.strictness, Strictness::FailFast) && !read.is_clean() {
            return Err(ThicketError::Invalid(format!(
                "store load failed under fail-fast strictness ({})",
                read.summary()
            )));
        }
        self.report.attempted += read.attempted;
        self.report.loaded += read.loaded;
        self.report.diagnostics.extend(read.diagnostics);
        if let Strictness::Lenient { max_errors } = self.strictness {
            if self.report.diagnostics.len() > max_errors {
                return Err(ThicketError::Invalid(format!(
                    "store load exceeded the lenient error budget of {max_errors} ({})",
                    self.report.summary()
                )));
            }
        }
        if profiles.is_empty() {
            // Every profile in this batch was dropped leniently; recurse
            // into the next batch rather than returning an empty chunk.
            return self.next_chunk();
        }
        Ok(Some(profiles))
    }

    fn meta_keys(&mut self) -> Option<BTreeSet<String>> {
        Some(self.hold.reader().meta_keys())
    }

    fn push_filter(&mut self, expr: &PredExpr) -> bool {
        if self.entries.is_some() {
            return false;
        }
        self.expr = Some(expr.clone());
        self.selected = None;
        true
    }

    fn take_report(&mut self) -> IngestReport {
        std::mem::take(&mut self.report)
    }
}

/// Streaming source: a raw event trace folded into per-rank (and, with
/// a window length, per-window) call-tree profiles in bounded memory.
///
/// Each [`ProfileSource::next_chunk`] reads at most
/// [`chunk_events`](TraceSource::chunk_events) events, pushes them into
/// a [`TraceAggregator`], and returns any windows that closed. The full
/// trace is never materialized: resident state is the per-rank graphs,
/// open-frame stacks, and accumulator rows — O(tree depth × ranks), not
/// O(events).
pub struct TraceSource<R: BufRead> {
    reader: Option<TraceReader<R>>,
    agg: Option<TraceAggregator>,
    chunk_events: usize,
    meta_keys: BTreeSet<String>,
    report: Option<IngestReport>,
}

impl TraceSource<BufReader<File>> {
    /// Open a trace file. Window `None` aggregates the whole trace into
    /// one profile per rank.
    pub fn open(
        path: impl AsRef<Path>,
        window: Option<Duration>,
        strictness: Strictness,
    ) -> Result<Self, ThicketError> {
        let path = path.as_ref();
        let reader = TraceReader::open(path)
            .map_err(|e| ThicketError::Invalid(format!("trace {}: {e}", path.display())))?;
        Ok(TraceSource::from_reader_labeled(
            reader,
            window,
            strictness,
            path.display().to_string(),
        ))
    }
}

impl<R: BufRead> TraceSource<R> {
    /// Wrap an already-open [`TraceReader`] (any `BufRead`, e.g. an
    /// in-memory cursor in tests).
    pub fn from_reader(
        reader: TraceReader<R>,
        window: Option<Duration>,
        strictness: Strictness,
    ) -> Self {
        TraceSource::from_reader_labeled(reader, window, strictness, "trace".to_string())
    }

    fn from_reader_labeled(
        reader: TraceReader<R>,
        window: Option<Duration>,
        strictness: Strictness,
        label: String,
    ) -> Self {
        let metadata = reader.metadata().to_vec();
        let mut meta_keys: BTreeSet<String> =
            metadata.iter().map(|(k, _)| k.clone()).collect();
        // The aggregator stamps these onto every emitted profile.
        meta_keys.insert("rank".to_string());
        meta_keys.insert("window".to_string());
        meta_keys.insert("window start (ns)".to_string());
        let agg = TraceAggregator::new(metadata, window, strictness).with_source_label(label);
        TraceSource {
            reader: Some(reader),
            agg: Some(agg),
            chunk_events: 4096,
            meta_keys,
            report: None,
        }
    }

    /// Events read per [`ProfileSource::next_chunk`] call (default
    /// 4096). Smaller chunks lower peak memory; larger amortize parse
    /// overhead.
    pub fn chunk_events(mut self, n: usize) -> Self {
        self.chunk_events = n.max(1);
        self
    }

    /// Stop reading and close out the aggregator, stashing the final
    /// profiles (returned) and the ingest report.
    fn finish(&mut self) -> Result<Option<Vec<Profile>>, ThicketError> {
        self.reader = None;
        let agg = self.agg.take().expect("aggregator finished twice");
        let (profiles, report) = agg.finish()?;
        self.report = Some(report);
        if profiles.is_empty() {
            Ok(None)
        } else {
            Ok(Some(profiles))
        }
    }
}

impl<R: BufRead> ProfileSource for TraceSource<R> {
    fn next_chunk(&mut self) -> Result<Option<Vec<Profile>>, ThicketError> {
        loop {
            if self.reader.is_none() {
                return Ok(None);
            }
            let events = match self
                .reader
                .as_mut()
                .expect("checked above")
                .next_events(self.chunk_events)
            {
                Ok(events) => events,
                Err(TraceError::Io(e)) => {
                    return Err(ThicketError::Invalid(format!("trace read failed: {e}")));
                }
                Err(TraceError::Torn { line, message }) => {
                    // Fail-fast: record_failure errors. Lenient: the
                    // diagnostic is kept, every rank's current window is
                    // dropped, and whatever closed before the tear
                    // survives.
                    self.agg
                        .as_mut()
                        .expect("aggregator alive while reader is")
                        .record_failure(DiagKind::TornTrace { line, message })?;
                    return self.finish();
                }
            };
            let agg = self.agg.as_mut().expect("aggregator alive while reader is");
            if events.is_empty() {
                return self.finish();
            }
            agg.push_events(&events)?;
            if !agg.ready_is_empty() {
                return Ok(Some(agg.drain_ready()));
            }
        }
    }

    fn meta_keys(&mut self) -> Option<BTreeSet<String>> {
        Some(self.meta_keys.clone())
    }

    fn take_report(&mut self) -> IngestReport {
        self.report.take().unwrap_or_default()
    }
}

/// Stream a trace file straight into a sharded store, one window batch
/// at a time, with **no intermediate thicket**: each chunk of closed
/// windows is committed via [`Store::append`] (first batch
/// [`Store::save`] if the directory is not yet a store) and dropped.
/// Peak memory is the aggregator state plus one batch of profiles.
///
/// Returns the trace's ingest report plus the number of profiles
/// written.
pub fn trace_to_store(
    trace: impl AsRef<Path>,
    store_dir: impl AsRef<Path>,
    window: Option<Duration>,
    strictness: Strictness,
) -> Result<(IngestReport, usize), ThicketError> {
    let store_dir = store_dir.as_ref();
    let mut src = TraceSource::open(trace, window, strictness)?;
    let mut have_store = Store::open(store_dir).is_ok();
    let mut written = 0usize;
    while let Some(profiles) = src.next_chunk()? {
        if have_store {
            Store::append(store_dir, &profiles)?;
        } else {
            Store::save(store_dir, &profiles)?;
            have_store = true;
        }
        written += profiles.len();
    }
    Ok((src.take_report(), written))
}

/// Union of metadata keys across profiles: what an in-memory or
/// ensemble source can answer before composition.
pub(crate) fn profile_meta_keys<'p>(
    profiles: impl Iterator<Item = &'p Profile>,
) -> BTreeSet<String> {
    profiles
        .flat_map(|p| p.metadata_iter().map(|(k, _)| k.to_string()))
        .collect()
}
