//! Parallel index ordering: the last serial stage of ingest.
//!
//! After the columnar merge, every construction path ends with "sort the
//! perf-data rows by `(node, profile)` key". For 560-profile ensembles
//! that stable sort was the remaining serial tail, so it fans out here:
//! workers stable-sort disjoint contiguous chunks via
//! [`Index::argsort_range`], and one serial k-way merge
//! ([`Index::merge_argsort_runs`]) stitches the runs, resolving ties to
//! the earliest chunk. The result is bit-identical to
//! [`Index::argsort`] for any thread count.

use thicket_dataframe::{DataFrame, Index};

/// Chunked parallel stable argsort of `index`, identical to
/// `index.argsort()` for every `threads ≥ 1`.
pub(crate) fn parallel_argsort(index: &Index, threads: usize) -> Vec<usize> {
    let n = index.len();
    if threads <= 1 || n < 2 {
        return index.argsort();
    }
    let chunks = threads.min(n);
    let step = n.div_ceil(chunks);
    let ranges: Vec<(usize, usize)> = (0..n).step_by(step).map(|lo| (lo, lo + step)).collect();
    let runs = thicket_perfsim::parallel_map(&ranges, threads, |&(lo, hi)| {
        index.argsort_range(lo, hi)
    });
    index.merge_argsort_runs(&runs)
}

/// `df.sort_by_index()` with the argsort fanned out over `threads`
/// workers; bit-identical to the serial sort.
pub(crate) fn sort_frame_by_index_threads(df: &DataFrame, threads: usize) -> DataFrame {
    df.take(&parallel_argsort(df.index(), threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_dataframe::Value;

    #[test]
    fn parallel_argsort_matches_serial() {
        // Many duplicate keys to stress merge stability.
        let vals: Vec<i64> = (0..257).map(|i| (i * 31 + 7) % 13).collect();
        let index = Index::single("k", vals);
        let serial = index.argsort();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_argsort(&index, threads), serial, "threads={threads}");
        }
        // Tiny inputs fall back to the serial path.
        let one = Index::single("k", vec![5i64]);
        assert_eq!(parallel_argsort(&one, 8), vec![0]);
        let empty = Index::new(["k"], Vec::new()).unwrap();
        assert!(parallel_argsort(&empty, 8).is_empty());
    }

    #[test]
    fn sort_frame_matches_serial() {
        let index = Index::pairs(
            ("node", "profile"),
            (0..100i64).map(|i| (i % 7, 99 - i)).collect::<Vec<_>>(),
        );
        let mut df = DataFrame::new(index);
        df.insert(
            "x",
            thicket_dataframe::Column::from_f64((0..100).map(|i| i as f64).collect()),
        )
        .unwrap();
        let serial = df.sort_by_index();
        for threads in [1, 2, 8] {
            assert_eq!(sort_frame_by_index_threads(&df, threads), serial);
        }
        // Keys actually ordered.
        assert_eq!(serial.index().key(0), &vec![Value::Int(0), Value::Int(1)]);
    }
}
