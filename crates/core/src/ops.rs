//! The thicket manipulation operations (paper §4.1): metadata filtering,
//! grouping, and call-path querying. Each operation returns *new*
//! thickets, never mutating the original (the paper's explicit design
//! point to avoid unintended modification).

use crate::thicket::{Thicket, ThicketError, NODE_LEVEL, PROFILE_LEVEL};
use std::collections::HashSet;
use thicket_dataframe::{ColKey, DataFrame, GroupBy, Index, PredExpr, RowRef, Value};
use thicket_query::Query;

impl Thicket {
    /// Keep only the profiles whose *metadata row* satisfies `pred`
    /// (paper §4.1.1, Figure 6). Both the metadata and the performance
    /// data shrink to the selected profiles.
    pub fn filter_metadata<F>(&self, pred: F) -> Thicket
    where
        F: FnMut(RowRef<'_>) -> bool,
    {
        let metadata = self.metadata.filter(pred);
        let keep: HashSet<Value> = metadata
            .index()
            .keys()
            .iter()
            .map(|k| k[0].clone())
            .collect();
        self.with_profiles(&keep, metadata)
    }

    /// [`Thicket::filter_metadata`] with a typed [`PredExpr`]: the same
    /// expression AST the store pushdown and the query dialect compile
    /// into, evaluated by the vectorized engine directly over the
    /// metadata frame's columnar storage. Fields resolve to metadata
    /// columns first, then index levels; a field the frame doesn't
    /// have matches no rows.
    pub fn filter_metadata_where(&self, expr: &PredExpr) -> Thicket {
        let metadata = self.metadata.filter_expr(expr);
        let keep: HashSet<Value> = metadata
            .index()
            .keys()
            .iter()
            .map(|k| k[0].clone())
            .collect();
        self.with_profiles(&keep, metadata)
    }

    /// Keep an explicit set of profile index values.
    pub fn filter_profiles(&self, profiles: &[Value]) -> Thicket {
        let keep: HashSet<Value> = profiles.iter().cloned().collect();
        let metadata = self.metadata.filter(|r| keep.contains(&r.level(PROFILE_LEVEL)));
        self.with_profiles(&keep, metadata)
    }

    fn with_profiles(&self, keep: &HashSet<Value>, metadata: DataFrame) -> Thicket {
        // One `In` over the profile index level, evaluated by the
        // vectorized engine — the same path metadata filters and store
        // pushdown use.
        let keep_expr = PredExpr::is_in(PROFILE_LEVEL, keep.iter().cloned());
        let perf_data = self.perf_data.filter_expr(&keep_expr);
        Thicket {
            graph: self.graph.clone(),
            perf_data,
            metadata,
            // Statistics describe the previous profile set; reset them.
            statsframe: DataFrame::new(Index::empty([NODE_LEVEL])),
        }
    }

    /// Split into one thicket per distinct combination of metadata
    /// `columns` (paper §4.1.2, Figure 7). Returns `(key, thicket)`
    /// pairs in first-seen order.
    pub fn groupby(
        &self,
        columns: &[ColKey],
    ) -> Result<Vec<(Vec<Value>, Thicket)>, ThicketError> {
        let groups = GroupBy::by_columns(&self.metadata, columns)?;
        let mut out = Vec::with_capacity(groups.len());
        for (key, meta_subset) in groups.iter() {
            let keep: HashSet<Value> = meta_subset
                .index()
                .keys()
                .iter()
                .map(|k| k[0].clone())
                .collect();
            out.push((key.clone(), self.with_profiles(&keep, meta_subset)));
        }
        Ok(out)
    }

    /// Apply a call-path query (paper §4.1.3, Figure 8): the result keeps
    /// only matched nodes, with the call tree re-rooted through nearest
    /// kept ancestors, and the performance data filtered and re-keyed
    /// accordingly.
    pub fn query(&self, query: &Query) -> Result<Thicket, ThicketError> {
        let matched = query.apply(&self.graph);
        let (subgraph, mapping) = self.graph.induced_subgraph(&matched);

        // Re-key perf rows from old node ids to new ones.
        let mut keys = Vec::new();
        let mut rows = Vec::new();
        for (row, key) in self.perf_data.index().keys().iter().enumerate() {
            let Some(old) = self.node_of_value(&key[0]) else {
                continue;
            };
            if let Some(&new) = mapping.get(&old) {
                keys.push(vec![Value::Int(new.index() as i64), key[1].clone()]);
                rows.push(row);
            }
        }
        let taken = self.perf_data.take(&rows);
        let index = Index::new([NODE_LEVEL, PROFILE_LEVEL], keys)?;
        let mut perf_data = DataFrame::new(index);
        for (k, c) in taken.columns() {
            perf_data.insert(k.clone(), c.clone())?;
        }
        Ok(Thicket {
            graph: subgraph,
            perf_data: perf_data.sort_by_index(),
            metadata: self.metadata.clone(),
            statsframe: DataFrame::new(Index::empty([NODE_LEVEL])),
        })
    }

    /// Keep only the statsframe rows (call-tree nodes) satisfying `pred`
    /// over the *named* statsframe (paper §4.2.1, Figure 9 bottom).
    /// Requires [`crate::Thicket::compute_stats`] to have run.
    pub fn filter_stats<F>(&self, mut pred: F) -> Thicket
    where
        F: FnMut(RowRef<'_>) -> bool,
    {
        let kept_rows: Vec<usize> = (0..self.statsframe.len())
            .filter(|&i| pred(self.statsframe.row(i)))
            .collect();
        let statsframe = self.statsframe.take(&kept_rows);
        let keep: HashSet<Value> = statsframe
            .index()
            .keys()
            .iter()
            .map(|k| k[0].clone())
            .collect();
        let perf_data = self
            .perf_data
            .filter(|r| keep.contains(&r.level(NODE_LEVEL)));
        Thicket {
            graph: self.graph.clone(),
            perf_data,
            metadata: self.metadata.clone(),
            statsframe,
        }
    }

    /// [`Thicket::filter_stats`] with a typed [`PredExpr`], evaluated
    /// against the *named* statsframe ([`Thicket::statsframe_named`]) so
    /// predicates can compare the `node` level against call-site names.
    /// Requires [`crate::Thicket::compute_stats`] to have run.
    pub fn filter_stats_where(&self, expr: &PredExpr) -> Thicket {
        let named = self.statsframe_named();
        let kept_rows = named.select_rows(expr).positions();
        let statsframe = self.statsframe.take(&kept_rows);
        let keep: Vec<Value> = statsframe
            .index()
            .keys()
            .iter()
            .map(|k| k[0].clone())
            .collect();
        let keep_expr = PredExpr::is_in(NODE_LEVEL, keep);
        let perf_data = self.perf_data.filter_expr(&keep_expr);
        Thicket {
            graph: self.graph.clone(),
            perf_data,
            metadata: self.metadata.clone(),
            statsframe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_dataframe::AggFn;
    use thicket_perfsim::{simulate_cpu_run, Compiler, CpuRunConfig};
    use thicket_query::pred;

    /// Four profiles: 2 compilers × 2 problem sizes (the Figure 5 shape).
    fn sample() -> Thicket {
        let mut profiles = Vec::new();
        for (ci, compiler) in [Compiler::clang9(), Compiler::xl16()].iter().enumerate() {
            for (si, size) in [1_048_576u64, 4_194_304].iter().enumerate() {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.compiler = compiler.clone();
                cfg.problem_size = *size;
                cfg.seed = (ci * 2 + si) as u64;
                profiles.push(simulate_cpu_run(&cfg));
            }
        }
        Thicket::loader(&profiles).load().unwrap().0
    }

    #[test]
    fn filter_metadata_selects_compiler() {
        let tk = sample();
        let clang = tk.filter_metadata(|r| {
            r.str("compiler").as_deref() == Some("clang-9.0.0")
        });
        assert_eq!(clang.metadata().len(), 2);
        assert_eq!(clang.profiles().len(), 2);
        // Perf data shrank proportionally.
        assert_eq!(clang.perf_data().len(), tk.perf_data().len() / 2);
        // Original untouched.
        assert_eq!(tk.metadata().len(), 4);
    }

    #[test]
    fn filter_metadata_empty_result() {
        let tk = sample();
        let none = tk.filter_metadata(|_| false);
        assert_eq!(none.metadata().len(), 0);
        assert_eq!(none.perf_data().len(), 0);
    }

    #[test]
    fn filter_metadata_where_agrees_with_closure() {
        let tk = sample();
        let by_expr = tk.filter_metadata_where(&PredExpr::eq("compiler", "clang-9.0.0"));
        let by_closure = tk.filter_metadata(|r| {
            r.str("compiler").as_deref() == Some("clang-9.0.0")
        });
        assert_eq!(by_expr.profiles(), by_closure.profiles());
        assert_eq!(by_expr.metadata().len(), 2);
        assert_eq!(by_expr.perf_data().len(), by_closure.perf_data().len());
    }

    #[test]
    fn filter_metadata_where_compound() {
        let tk = sample();
        let expr = PredExpr::and([
            PredExpr::eq("compiler", "clang-9.0.0"),
            PredExpr::gt("problem size", 2_000_000i64),
        ]);
        let one = tk.filter_metadata_where(&expr);
        assert_eq!(one.metadata().len(), 1);
        assert_eq!(one.profiles().len(), 1);
        // A field no frame has matches nothing.
        let none = tk.filter_metadata_where(&PredExpr::eq("nope", 1i64));
        assert_eq!(none.metadata().len(), 0);
        assert_eq!(none.perf_data().len(), 0);
    }

    #[test]
    fn filter_stats_where_matches_closure_filter() {
        let mut tk = sample();
        tk.compute_stats(&[(ColKey::new("time (exc)"), vec![AggFn::Std])])
            .unwrap();
        let expr = PredExpr::is_in(
            NODE_LEVEL,
            ["Apps_VOL3D", "Apps_NODAL_ACCUMULATION_3D"],
        );
        let filtered = tk.filter_stats_where(&expr);
        assert_eq!(filtered.statsframe().len(), 2);
        assert_eq!(filtered.perf_data().len(), 8);
        let closure = tk.filter_stats(|r| {
            let name = tk.node_name(&r.level(NODE_LEVEL));
            name == "Apps_VOL3D" || name == "Apps_NODAL_ACCUMULATION_3D"
        });
        assert_eq!(
            filtered.statsframe().index().keys(),
            closure.statsframe().index().keys()
        );
        // Predicates over stats columns agree with the closure
        // spelling (null std cells are absent ⇒ false on both paths).
        let by_expr = tk.filter_stats_where(&PredExpr::ge("time (exc)_std", 0.0));
        let by_closure =
            tk.filter_stats(|r| r.f64("time (exc)_std").is_some_and(|v| v >= 0.0));
        assert_eq!(by_expr.statsframe().len(), by_closure.statsframe().len());
    }

    #[test]
    fn groupby_compiler_and_size_gives_four() {
        let tk = sample();
        let groups = tk
            .groupby(&[ColKey::new("compiler"), ColKey::new("problem size")])
            .unwrap();
        assert_eq!(groups.len(), 4);
        for (key, sub) in &groups {
            assert_eq!(key.len(), 2);
            assert_eq!(sub.metadata().len(), 1);
            assert_eq!(sub.profiles().len(), 1);
        }
        // Keys cover both compilers.
        let compilers: HashSet<String> = groups
            .iter()
            .map(|(k, _)| k[0].as_str().unwrap().to_string())
            .collect();
        assert_eq!(compilers.len(), 2);
    }

    #[test]
    fn groupby_missing_column_errors() {
        let tk = sample();
        assert!(tk.groupby(&[ColKey::new("nope")]).is_err());
    }

    #[test]
    fn query_restricts_nodes() {
        let tk = sample();
        let q = Query::builder()
            .any("*")
            .node(".", pred::name_starts_with("Stream_"))
            .build();
        let streams = tk.query(&q).unwrap();
        // Result contains Stream kernels plus their ancestors.
        assert!(streams.find_node("Stream_DOT").is_some());
        assert!(streams.find_node("Apps_VOL3D").is_none());
        assert!(streams.graph().len() < tk.graph().len());
        // Perf data only covers kept nodes.
        for key in streams.perf_data().index().keys() {
            let name = streams.node_name(&key[0]);
            assert!(
                name.starts_with("Stream")
                    || name == "Base_Seq"
                    || name == "Stream",
                "unexpected node {name}"
            );
        }
        // All four profiles retained.
        assert_eq!(streams.metadata().len(), 4);
    }

    #[test]
    fn query_no_match_empties_thicket() {
        let tk = sample();
        let q = Query::builder().node(".", pred::name_eq("nope")).build();
        let none = tk.query(&q).unwrap();
        assert_eq!(none.graph().len(), 0);
        assert_eq!(none.perf_data().len(), 0);
    }

    #[test]
    fn filter_stats_narrows_nodes() {
        let mut tk = sample();
        tk.compute_stats(&[(ColKey::new("time (exc)"), vec![AggFn::Std])])
            .unwrap();
        let nodes_before = tk.statsframe().len();
        assert!(nodes_before > 0);
        let filtered = tk.filter_stats(|r| {
            let name = tk.node_name(&r.level(NODE_LEVEL));
            name == "Apps_VOL3D" || name == "Apps_NODAL_ACCUMULATION_3D"
        });
        assert_eq!(filtered.statsframe().len(), 2);
        // Perf data narrowed to the two nodes × 4 profiles.
        assert_eq!(filtered.perf_data().len(), 8);
    }
}
