//! The [`Thicket`] struct: construction from profile ensembles and
//! component access.

use std::collections::HashMap;
use std::fmt;
use thicket_dataframe::{
    merge_fragments, ColKey, Column, ColumnFragments, DataFrame, DfError, FrameBuilder, Index,
    Value,
};
use thicket_graph::{Graph, GraphUnion, NodeId};
use thicket_perfsim::{IngestReport, Profile};

/// Name of the call-tree-node index level.
pub(crate) const NODE_LEVEL: &str = "node";
/// Name of the profile index level.
pub(crate) const PROFILE_LEVEL: &str = "profile";

/// Errors raised by thicket operations.
#[derive(Debug)]
pub enum ThicketError {
    /// Underlying dataframe failure.
    Df(DfError),
    /// Invalid construction input.
    Invalid(String),
    /// A worker thread panicked while processing one source; the panic
    /// was captured and isolated (it never crosses the API boundary as
    /// an unwind).
    Worker {
        /// The source the worker was processing (a profile id).
        source: String,
        /// The captured panic message.
        message: String,
    },
    /// The sharded on-disk store could not be opened or read.
    Store(thicket_perfsim::StoreError),
    /// An ensemble directory could not be read under fail-fast
    /// strictness (the first bad profile aborts the load).
    Profile(Box<thicket_perfsim::ProfileError>),
}

impl fmt::Display for ThicketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThicketError::Df(e) => write!(f, "dataframe: {e}"),
            ThicketError::Invalid(m) => f.write_str(m),
            ThicketError::Worker { source, message } => {
                write!(f, "worker panicked on {source}: {message}")
            }
            ThicketError::Store(e) => write!(f, "store: {e}"),
            ThicketError::Profile(e) => write!(f, "profile: {e}"),
        }
    }
}

impl std::error::Error for ThicketError {}

impl From<DfError> for ThicketError {
    fn from(e: DfError) -> Self {
        ThicketError::Df(e)
    }
}

impl From<thicket_perfsim::StoreError> for ThicketError {
    fn from(e: thicket_perfsim::StoreError) -> Self {
        ThicketError::Store(e)
    }
}

impl From<thicket_perfsim::ProfileError> for ThicketError {
    fn from(e: thicket_perfsim::ProfileError) -> Self {
        ThicketError::Profile(Box::new(e))
    }
}

/// A unified, multi-run performance dataset (paper Figure 3).
#[derive(Debug, Clone)]
pub struct Thicket {
    /// The unified call graph of the ensemble.
    pub(crate) graph: Graph,
    /// `(node, profile)`-indexed metric table.
    pub(crate) perf_data: DataFrame,
    /// `profile`-indexed metadata table.
    pub(crate) metadata: DataFrame,
    /// `node`-indexed aggregated statistics (empty until computed).
    pub(crate) statsframe: DataFrame,
}

impl Thicket {
    /// Strict build engine behind [`crate::Loader`]: compose `profiles`
    /// under caller-chosen index values on `threads` workers, failing
    /// on the first unhealthy input. Bit-identical for any
    /// `threads ≥ 1`.
    pub(crate) fn build_indexed_threads(
        profiles: &[Profile],
        profile_ids: &[Value],
        threads: usize,
    ) -> Result<Thicket, ThicketError> {
        if profiles.is_empty() {
            return Err(ThicketError::Invalid(
                "cannot build a thicket from zero profiles".into(),
            ));
        }
        if profiles.len() != profile_ids.len() {
            return Err(ThicketError::Invalid(format!(
                "{} profiles but {} profile ids",
                profiles.len(),
                profile_ids.len()
            )));
        }
        {
            let mut seen = std::collections::HashSet::new();
            for id in profile_ids {
                if !seen.insert(id) {
                    return Err(ThicketError::Invalid(format!(
                        "duplicate profile id {id}"
                    )));
                }
            }
        }

        // Unify the call trees (the paper's call-tree matching).
        let graphs: Vec<&Graph> = profiles.iter().map(|p| p.graph()).collect();
        let union = GraphUnion::build(&graphs);

        // Performance data: one row per (unified node, profile) that the
        // profile actually measured. Distinct source nodes can merge into
        // one unified node (duplicate sibling frames, as a call-tree
        // profiler would have merged); their metrics are summed.
        //
        // Each worker assembles a typed per-profile column batch
        // ([`ColumnFragments`]): index keys plus one `f64` fragment per
        // metric it saw. The serial tail is then a single schema-union
        // pass and per-column `Vec` concatenation (`merge_fragments`)
        // instead of re-hashing every cell through a row builder — and
        // stays bit-identical to the serial build for any `threads ≥ 1`.
        let frags = profile_fragments(profiles, &union.mappings, profile_ids, threads)?;
        let perf_data =
            crate::order::sort_frame_by_index_threads(&merge_fragments(&frags)?, threads);

        // Metadata: one row per profile.
        let mut mb = FrameBuilder::new([PROFILE_LEVEL]);
        for (profile, pid) in profiles.iter().zip(profile_ids.iter()) {
            mb.push_row(
                vec![pid.clone()],
                profile
                    .metadata_iter()
                    .map(|(k, v)| (ColKey::new(k), v.clone())),
            )?;
        }
        let metadata = mb.finish()?;

        Ok(Thicket {
            graph: union.graph,
            perf_data,
            metadata,
            statsframe: DataFrame::new(Index::empty([NODE_LEVEL])),
        })
    }

    /// Lenient build engine behind [`crate::Loader`]: unhealthy
    /// profiles (duplicate ids, non-finite metrics, panicking assembly
    /// workers) are dropped with typed diagnostics instead of failing
    /// the build; errs only when no profile survives.
    ///
    /// Pre-validation runs serially in input order; row assembly fans
    /// out with per-profile panic capture. A panicking profile is
    /// dropped with a [`thicket_perfsim::DiagKind::WorkerPanic`]
    /// diagnostic and the build retries on the surviving subset, so a
    /// deterministic panic converges and the report is identical for
    /// any `threads ≥ 1`.
    pub(crate) fn build_indexed_lenient_threads(
        profiles: &[Profile],
        profile_ids: &[Value],
        threads: usize,
    ) -> Result<(Thicket, IngestReport), ThicketError> {
        use thicket_perfsim::{DiagKind, Diagnostic, JobFailure};

        if profiles.is_empty() {
            return Err(ThicketError::Invalid(
                "cannot build a thicket from zero profiles".into(),
            ));
        }
        if profiles.len() != profile_ids.len() {
            return Err(ThicketError::Invalid(format!(
                "{} profiles but {} profile ids",
                profiles.len(),
                profile_ids.len()
            )));
        }

        // Serial pre-validation, in input order.
        let mut diagnostics: Vec<(usize, Diagnostic)> = Vec::new();
        let mut healthy: Vec<usize> = Vec::new();
        let mut seen: HashMap<&Value, usize> = HashMap::new();
        for (i, id) in profile_ids.iter().enumerate() {
            if let Some(&first) = seen.get(id) {
                diagnostics.push((
                    i,
                    Diagnostic {
                        source: format!("profile {id}"),
                        kind: DiagKind::DuplicateProfile {
                            first: format!("profile {}", profile_ids[first]),
                        },
                    },
                ));
                continue;
            }
            if let Some((node, metric)) = first_non_finite(&profiles[i]) {
                diagnostics.push((
                    i,
                    Diagnostic {
                        source: format!("profile {id}"),
                        kind: DiagKind::NonFiniteMetric { node, metric },
                    },
                ));
                continue;
            }
            seen.insert(id, i);
            healthy.push(i);
        }

        // Panic-isolated assembly. Any failure drops that profile and
        // retries on the survivors (the graph union must be rebuilt
        // without the dropped profile's call tree).
        loop {
            if healthy.is_empty() {
                let report: Vec<String> = diagnostics
                    .iter()
                    .map(|(_, d)| d.to_string())
                    .collect();
                return Err(ThicketError::Invalid(format!(
                    "every profile was dropped: {}",
                    report.join("; ")
                )));
            }
            let graphs: Vec<&Graph> = healthy.iter().map(|&i| profiles[i].graph()).collect();
            let union = GraphUnion::build(&graphs);
            let items: Vec<(usize, &HashMap<NodeId, NodeId>)> = healthy
                .iter()
                .copied()
                .zip(union.mappings.iter())
                .collect();
            let results = thicket_perfsim::parallel_map_catch(&items, threads, |(i, mapping)| {
                assemble_fragment(&profiles[*i], mapping, &profile_ids[*i])
            });

            let mut frags: Vec<ColumnFragments> = Vec::with_capacity(items.len());
            let mut kept: Vec<usize> = Vec::with_capacity(items.len());
            for ((i, _), r) in items.iter().zip(results) {
                let kind = match r {
                    Ok(frag) => {
                        frags.push(frag);
                        kept.push(*i);
                        continue;
                    }
                    Err(JobFailure::Error(df)) => {
                        DiagKind::Schema(format!("row assembly failed: {df}"))
                    }
                    Err(JobFailure::Panic(m)) => DiagKind::WorkerPanic(m),
                };
                diagnostics.push((
                    *i,
                    Diagnostic {
                        source: format!("profile {}", profile_ids[*i]),
                        kind,
                    },
                ));
            }
            if kept.len() < healthy.len() {
                healthy = kept;
                continue;
            }

            let perf_data =
                crate::order::sort_frame_by_index_threads(&merge_fragments(&frags)?, threads);
            let mut mb = FrameBuilder::new([PROFILE_LEVEL]);
            for &i in &healthy {
                mb.push_row(
                    vec![profile_ids[i].clone()],
                    profiles[i]
                        .metadata_iter()
                        .map(|(k, v)| (ColKey::new(k), v.clone())),
                )?;
            }
            let metadata = mb.finish()?;

            diagnostics.sort_by_key(|(i, _)| *i);
            let report = IngestReport {
                attempted: profiles.len(),
                loaded: healthy.len(),
                diagnostics: diagnostics.into_iter().map(|(_, d)| d).collect(),
                pushdown: None,
            };
            return Ok((
                Thicket {
                    graph: union.graph,
                    perf_data,
                    metadata,
                    statsframe: DataFrame::new(Index::empty([NODE_LEVEL])),
                },
                report,
            ));
        }
    }

    /// Assemble a thicket from raw components (used by composition and
    /// the EDA operations; validates index level names).
    pub fn from_components(
        graph: Graph,
        perf_data: DataFrame,
        metadata: DataFrame,
        statsframe: DataFrame,
    ) -> Result<Thicket, ThicketError> {
        if perf_data.index().names() != [NODE_LEVEL, PROFILE_LEVEL] {
            return Err(ThicketError::Invalid(format!(
                "perf_data index must be (node, profile), got {:?}",
                perf_data.index().names()
            )));
        }
        if metadata.index().names() != [PROFILE_LEVEL] {
            return Err(ThicketError::Invalid(
                "metadata index must be (profile)".into(),
            ));
        }
        if statsframe.index().names() != [NODE_LEVEL] {
            return Err(ThicketError::Invalid(
                "statsframe index must be (node)".into(),
            ));
        }
        Ok(Thicket {
            graph,
            perf_data,
            metadata,
            statsframe,
        })
    }

    /// The unified call graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The `(node, profile)`-indexed performance-data table.
    pub fn perf_data(&self) -> &DataFrame {
        &self.perf_data
    }

    /// The profile-indexed metadata table.
    pub fn metadata(&self) -> &DataFrame {
        &self.metadata
    }

    /// The node-indexed aggregated-statistics table (empty until
    /// [`crate::Thicket::compute_stats`] runs).
    pub fn statsframe(&self) -> &DataFrame {
        &self.statsframe
    }

    /// Profile index values, in metadata order.
    pub fn profiles(&self) -> Vec<Value> {
        self.metadata
            .index()
            .keys()
            .iter()
            .map(|k| k[0].clone())
            .collect()
    }

    /// The `NodeId` a perf-data node index value refers to.
    pub fn node_of_value(&self, v: &Value) -> Option<NodeId> {
        let idx = v.as_i64()?;
        self.graph
            .ids()
            .find(|id| id.index() as i64 == idx)
    }

    /// The node index value for a `NodeId`.
    pub fn value_of_node(&self, id: NodeId) -> Value {
        Value::Int(id.index() as i64)
    }

    /// Node name for a node index value (for display).
    pub fn node_name(&self, v: &Value) -> String {
        match self.node_of_value(v) {
            Some(id) => self.graph.node(id).name().to_string(),
            None => v.display_cell().into_owned(),
        }
    }

    /// First node id whose name matches (pre-order).
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.graph.find_by_name(name)
    }

    /// One metric value for `(node, profile)`, if measured. O(1)
    /// amortized: the lookup goes through the index's cached
    /// key → position map instead of scanning every row.
    pub fn metric_at(&self, node: NodeId, profile: &Value, metric: &ColKey) -> Option<f64> {
        let col = self.perf_data.column(metric).ok()?;
        let key = vec![self.value_of_node(node), profile.clone()];
        let row = self.perf_data.index().position_of(&key)?;
        col.get_f64(row)
    }

    /// All `(profile, value)` pairs of one metric at one node, in
    /// perf-data order.
    pub fn metric_series(&self, node: NodeId, metric: &ColKey) -> Vec<(Value, f64)> {
        let node_v = self.value_of_node(node);
        let Ok(col) = self.perf_data.column(metric) else {
            return Vec::new();
        };
        self.perf_data
            .index()
            .keys()
            .iter()
            .enumerate()
            .filter(|(_, k)| k[0] == node_v)
            .filter_map(|(row, k)| col.get_f64(row).map(|v| (k[1].clone(), v)))
            .collect()
    }

    /// A metadata attribute per profile, as a map.
    pub fn metadata_column(&self, key: &ColKey) -> Result<HashMap<Value, Value>, ThicketError> {
        let col = self.metadata.column(key)?;
        Ok(self
            .metadata
            .index()
            .keys()
            .iter()
            .enumerate()
            .map(|(row, k)| (k[0].clone(), col.get(row)))
            .collect())
    }

    /// Copy of the perf-data table with the node level rendered as node
    /// *names* — the human-readable form the paper's tables print.
    pub fn perf_data_named(&self) -> DataFrame {
        let keys: Vec<Vec<Value>> = self
            .perf_data
            .index()
            .keys()
            .iter()
            .map(|k| {
                let mut nk = k.clone();
                nk[0] = Value::from(self.node_name(&k[0]).as_str());
                nk
            })
            .collect();
        let index = Index::new(
            self.perf_data.index().names().to_vec(),
            keys,
        )
        .expect("same arity");
        let mut df = DataFrame::new(index);
        for (k, c) in self.perf_data.columns() {
            df.insert(k.clone(), c.clone()).expect("unique keys");
        }
        df
    }

    /// Copy of the statsframe with node names (Figure 9 display form).
    pub fn statsframe_named(&self) -> DataFrame {
        let keys: Vec<Vec<Value>> = self
            .statsframe
            .index()
            .keys()
            .iter()
            .map(|k| vec![Value::from(self.node_name(&k[0]).as_str())])
            .collect();
        let index = Index::new(vec![NODE_LEVEL.to_string()], keys).expect("same arity");
        let mut df = DataFrame::new(index);
        for (k, c) in self.statsframe.columns() {
            df.insert(k.clone(), c.clone()).expect("unique keys");
        }
        df
    }

    /// Render the call tree annotated with one metric from one profile
    /// (Figure 8's display).
    pub fn tree(&self, metric: &ColKey, profile: &Value) -> String {
        thicket_viz::render_tree(&self.graph, |id| self.metric_at(id, profile, metric))
    }

    /// Extract a row-major sample matrix from perf-data columns for
    /// data-science routines (k-means, PCA). Rows with any null are
    /// dropped; returns the kept `(node, profile)` keys alongside.
    #[allow(clippy::type_complexity)]
    pub fn to_samples(
        &self,
        columns: &[ColKey],
    ) -> Result<(Vec<Vec<f64>>, Vec<Vec<Value>>), ThicketError> {
        let cols: Vec<_> = columns
            .iter()
            .map(|k| self.perf_data.column(k))
            .collect::<Result<_, _>>()?;
        let mut samples = Vec::new();
        let mut keys = Vec::new();
        for row in 0..self.perf_data.len() {
            let vals: Option<Vec<f64>> = cols.iter().map(|c| c.get_f64(row)).collect();
            if let Some(v) = vals {
                samples.push(v);
                keys.push(self.perf_data.index().key(row).clone());
            }
        }
        Ok((samples, keys))
    }

    /// Add a derived perf-data column computed from each row (the paper's
    /// Figure 15 `speedup` column under the `Derived` header).
    pub fn add_derived_column<F>(
        &mut self,
        key: impl Into<ColKey>,
        f: F,
    ) -> Result<(), ThicketError>
    where
        F: Fn(thicket_dataframe::RowRef<'_>) -> Value,
    {
        let values: Vec<Value> = (0..self.perf_data.len())
            .map(|row| f(self.perf_data.row(row)))
            .collect();
        self.perf_data.insert_values(key, values)?;
        Ok(())
    }
}

/// Collapse a worker failure from a concat/compose fan-out into a
/// [`ThicketError`]: plain errors pass through, captured panics become
/// [`ThicketError::Worker`] naming the input by position.
pub(crate) fn input_failure(
    e: thicket_perfsim::JobError<ThicketError>,
    what: &str,
) -> ThicketError {
    match e.failure {
        thicket_perfsim::JobFailure::Error(inner) => inner,
        thicket_perfsim::JobFailure::Panic(message) => ThicketError::Worker {
            source: format!("{what} {}", e.index),
            message,
        },
    }
}

/// First NaN/infinite metric value in `p`, as `(node index, metric
/// name)` — pre-order node scan, alphabetical within a node.
fn first_non_finite(p: &Profile) -> Option<(usize, String)> {
    p.graph().ids().find_map(|id| {
        p.node_metrics(id)
            .iter()
            .find(|(_, v)| !v.is_finite())
            .map(|(k, _)| (id.index(), k.to_string()))
    })
}

/// Assemble one profile's typed [`ColumnFragments`] batch: index keys
/// `(unified node, profile id)` in node order, plus one `f64` column
/// fragment per metric the profile measured (duplicate source nodes
/// merging into one unified node have their metrics summed).
fn assemble_fragment(
    profile: &Profile,
    mapping: &HashMap<NodeId, NodeId>,
    pid: &Value,
) -> Result<ColumnFragments, DfError> {
    // One row's merged metric view. The overwhelmingly common case — a
    // source node that maps alone onto its unified node — borrows the
    // profile's own metric map; only genuinely merged duplicates pay for
    // an owned sum map.
    enum Metrics<'a> {
        Borrowed(&'a std::collections::BTreeMap<std::sync::Arc<str>, f64>),
        Owned(std::collections::BTreeMap<std::sync::Arc<str>, f64>),
    }
    impl Metrics<'_> {
        fn map(&self) -> &std::collections::BTreeMap<std::sync::Arc<str>, f64> {
            match self {
                Metrics::Borrowed(m) => m,
                Metrics::Owned(m) => m,
            }
        }
    }

    // Measured source nodes keyed by their unified node id, in
    // unified-node order (stable sort keeps duplicate groups in
    // source order, so their sums are deterministic).
    let mut pairs: Vec<(i64, NodeId)> = profile
        .graph()
        .ids()
        .filter(|id| !profile.node_metrics(*id).is_empty())
        .map(|old| (mapping[&old].index() as i64, old))
        .collect();
    pairs.sort_by_key(|&(new, _)| new);

    let mut rows: Vec<(i64, Metrics<'_>)> = Vec::with_capacity(pairs.len());
    let mut i = 0;
    while i < pairs.len() {
        let (node, first) = pairs[i];
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == node {
            j += 1;
        }
        if j == i + 1 {
            rows.push((node, Metrics::Borrowed(profile.node_metrics(first))));
        } else {
            let mut sum = profile.node_metrics(first).clone();
            for &(_, old) in &pairs[i + 1..j] {
                for (k, v) in profile.node_metrics(old) {
                    *sum.entry(k.clone()).or_insert(0.0) += v;
                }
            }
            rows.push((node, Metrics::Owned(sum)));
        }
        i = j;
    }

    let mut frag = ColumnFragments::new([NODE_LEVEL, PROFILE_LEVEL]);
    let mut names: Vec<&str> = Vec::new();
    let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for (node, metrics) in &rows {
        frag.push_key(vec![Value::Int(*node), pid.clone()])?;
        for k in metrics.map().keys() {
            if seen.insert(k.as_ref()) {
                names.push(k.as_ref());
            }
        }
    }
    for name in names {
        let vals: Vec<Option<f64>> = rows
            .iter()
            .map(|(_, m)| m.map().get(name).copied())
            .collect();
        frag.push_column(ColKey::new(name), Column::from_opt_f64(&vals))?;
    }
    Ok(frag)
}

/// Assemble one [`ColumnFragments`] batch per profile on `threads`
/// workers, failing fast: the first failing profile (lowest input index,
/// deterministic for any thread count) aborts the build with an error
/// naming its profile id, and a panicking worker is captured as
/// [`ThicketError::Worker`] instead of unwinding through the API. Batch
/// order follows `profiles`, so downstream merges are deterministic.
pub(crate) fn profile_fragments(
    profiles: &[Profile],
    mappings: &[HashMap<NodeId, NodeId>],
    profile_ids: &[Value],
    threads: usize,
) -> Result<Vec<ColumnFragments>, ThicketError> {
    let items: Vec<(&Profile, &HashMap<NodeId, NodeId>, &Value)> = profiles
        .iter()
        .zip(mappings.iter())
        .zip(profile_ids.iter())
        .map(|((p, m), id)| (p, m, id))
        .collect();
    thicket_perfsim::try_parallel_map(&items, threads, |(profile, mapping, pid)| {
        assemble_fragment(profile, mapping, pid)
    })
    .map_err(|e| match e.failure {
        thicket_perfsim::JobFailure::Error(df) => ThicketError::Df(df),
        thicket_perfsim::JobFailure::Panic(message) => ThicketError::Worker {
            source: format!("profile {}", profile_ids[e.index]),
            message,
        },
    })
}

impl fmt::Display for Thicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Thicket: {} nodes, {} profiles, {} perf rows, {} metrics",
            self.graph.len(),
            self.metadata.len(),
            self.perf_data.len(),
            self.perf_data.ncols(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_graph::Frame;
    use thicket_perfsim::Strictness;

    /// Loader-builder spellings of the historical constructors, so the
    /// tests read as tersely as the old API.
    fn build(profiles: &[Profile]) -> Result<Thicket, ThicketError> {
        Thicket::loader(profiles).load().map(|(tk, _)| tk)
    }

    fn build_indexed(profiles: &[Profile], ids: &[Value]) -> Result<Thicket, ThicketError> {
        Thicket::loader(profiles)
            .profile_ids(ids)
            .load()
            .map(|(tk, _)| tk)
    }

    fn build_lenient(profiles: &[Profile]) -> Result<(Thicket, IngestReport), ThicketError> {
        Thicket::loader(profiles)
            .strictness(Strictness::lenient())
            .load()
    }

    fn build_indexed_lenient(
        profiles: &[Profile],
        ids: &[Value],
        threads: Option<usize>,
    ) -> Result<(Thicket, IngestReport), ThicketError> {
        let mut loader = Thicket::loader(profiles)
            .profile_ids(ids)
            .strictness(Strictness::lenient());
        if let Some(t) = threads {
            loader = loader.threads(t);
        }
        loader.load()
    }

    fn profile(run: i64, extra_node: bool) -> Profile {
        let mut g = Graph::new();
        let main = g.add_root(Frame::named("MAIN"));
        let foo = g.add_child(main, Frame::named("FOO"));
        let bar = g.add_child(main, Frame::named("BAR"));
        let mut nodes = vec![main, foo, bar];
        if extra_node {
            nodes.push(g.add_child(foo, Frame::named("BAZ")));
        }
        let mut p = Profile::new(g);
        p.set_metadata("cluster", "quartz");
        p.set_metadata("run", run);
        for (i, id) in nodes.into_iter().enumerate() {
            p.set_metric(id, "time", (i as f64 + 1.0) * run as f64);
        }
        p
    }

    #[test]
    fn construction_shapes() {
        let tk = build(&[profile(1, false), profile(2, false)]).unwrap();
        assert_eq!(tk.graph().len(), 3);
        assert_eq!(tk.metadata().len(), 2);
        assert_eq!(tk.perf_data().len(), 6);
        assert_eq!(tk.profiles().len(), 2);
        assert!(tk.perf_data().has_column(&ColKey::new("time")));
    }

    #[test]
    fn divergent_trees_union_with_nulls() {
        let tk = build(&[profile(1, false), profile(2, true)]).unwrap();
        assert_eq!(tk.graph().len(), 4); // MAIN FOO BAR BAZ
        // BAZ has a row only for profile 2: 3 + 4 = 7 rows.
        assert_eq!(tk.perf_data().len(), 7);
    }

    #[test]
    fn custom_profile_index() {
        let tk = build_indexed(
            &[profile(1, false), profile(2, false)],
            &[Value::Int(1048576), Value::Int(4194304)],
        )
        .unwrap();
        assert_eq!(tk.profiles(), vec![Value::Int(1048576), Value::Int(4194304)]);
    }

    #[test]
    fn invalid_inputs() {
        assert!(build(&[]).is_err());
        assert!(build_indexed(
            &[profile(1, false)],
            &[Value::Int(1), Value::Int(2)]
        )
        .is_err());
        // Duplicate ids rejected.
        assert!(build_indexed(
            &[profile(1, false), profile(2, false)],
            &[Value::Int(5), Value::Int(5)]
        )
        .is_err());
    }

    #[test]
    fn metric_lookup() {
        let tk = build_indexed(
            &[profile(1, false), profile(3, false)],
            &[Value::Int(10), Value::Int(30)],
        )
        .unwrap();
        let foo = tk.find_node("FOO").unwrap();
        assert_eq!(tk.metric_at(foo, &Value::Int(10), &ColKey::new("time")), Some(2.0));
        assert_eq!(tk.metric_at(foo, &Value::Int(30), &ColKey::new("time")), Some(6.0));
        assert_eq!(tk.metric_at(foo, &Value::Int(99), &ColKey::new("time")), None);
        let series = tk.metric_series(foo, &ColKey::new("time"));
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn named_tables_show_node_names() {
        let tk = build(&[profile(1, false)]).unwrap();
        let named = tk.perf_data_named();
        let first = named.index().key(0);
        assert_eq!(first[0], Value::from("MAIN"));
    }

    #[test]
    fn tree_rendering() {
        let tk = build_indexed(&[profile(1, false)], &[Value::Int(7)]).unwrap();
        let s = tk.tree(&ColKey::new("time"), &Value::Int(7));
        assert!(s.contains("MAIN"));
        assert!(s.contains("├─") || s.contains("└─"));
        assert!(s.contains("1.000"));
    }

    #[test]
    fn to_samples_drops_nulls() {
        let tk = build(&[profile(1, false), profile(2, true)]).unwrap();
        let (samples, keys) = tk.to_samples(&[ColKey::new("time")]).unwrap();
        assert_eq!(samples.len(), 7);
        assert_eq!(keys.len(), 7);
        assert!(tk.to_samples(&[ColKey::new("nope")]).is_err());
    }

    #[test]
    fn derived_column() {
        let mut tk = build(&[profile(2, false)]).unwrap();
        tk.add_derived_column("time2x", |r| {
            Value::Float(r.f64("time").unwrap_or(f64::NAN) * 2.0)
        })
        .unwrap();
        let col = tk.perf_data().column(&ColKey::new("time2x")).unwrap();
        assert_eq!(col.get_f64(0), Some(tk.perf_data().column(&ColKey::new("time")).unwrap().get_f64(0).unwrap() * 2.0));
    }

    #[test]
    fn lenient_matches_strict_on_healthy_input() {
        let profiles = [profile(1, false), profile(2, true)];
        let strict = build(&profiles).unwrap();
        let (lenient, report) = build_lenient(&profiles).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.attempted, 2);
        assert_eq!(report.loaded, 2);
        assert_eq!(strict.perf_data().len(), lenient.perf_data().len());
        assert_eq!(strict.profiles(), lenient.profiles());
    }

    #[test]
    fn lenient_drops_duplicates_and_non_finite() {
        let mut poisoned = profile(3, false);
        let foo = poisoned.graph().find_by_name("FOO").unwrap();
        poisoned.set_metric(foo, "time", f64::NAN);
        let profiles = [profile(1, false), profile(2, false), poisoned];
        let ids = [Value::Int(10), Value::Int(10), Value::Int(30)];
        let mut reports = Vec::new();
        for threads in [1, 2, 8] {
            let (tk, report) =
                build_indexed_lenient(&profiles, &ids, Some(threads)).unwrap();
            assert_eq!(tk.profiles(), vec![Value::Int(10)], "threads={threads}");
            assert_eq!(report.loaded, 1);
            assert_eq!(report.dropped(), 2);
            assert!(matches!(
                report.diagnostics[0].kind,
                thicket_perfsim::DiagKind::DuplicateProfile { .. }
            ));
            assert!(matches!(
                report.diagnostics[1].kind,
                thicket_perfsim::DiagKind::NonFiniteMetric { .. }
            ));
            reports.push(report);
        }
        // Byte-identical diagnostics regardless of worker count.
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
    }

    #[test]
    fn lenient_errs_when_nothing_survives() {
        let mut bad = profile(3, false);
        let main = bad.graph().find_by_name("MAIN").unwrap();
        bad.set_metric(main, "time", f64::NAN);
        let r = build_indexed_lenient(&[bad], &[Value::Int(9)], None);
        assert!(r.is_err(), "sole poisoned profile must hard-error");
        assert!(build_lenient(&[]).is_err());
    }

    #[test]
    fn metadata_column_map() {
        let tk = build_indexed(
            &[profile(1, false), profile(2, false)],
            &[Value::Int(1), Value::Int(2)],
        )
        .unwrap();
        let m = tk.metadata_column(&ColKey::new("run")).unwrap();
        assert_eq!(m[&Value::Int(1)], Value::Int(1));
        assert_eq!(m[&Value::Int(2)], Value::Int(2));
    }
}
