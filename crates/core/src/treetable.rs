//! The tree + table paradigm (paper §4.3.2 / Figure 14): the call tree
//! rendered alongside per-profile metric columns, so ensemble-wide trends
//! line up with the node they belong to. Plus the classic flat hot-spot
//! profile.

use crate::thicket::{Thicket, ThicketError};
use thicket_dataframe::{ColKey, ColumnBuilder, DataFrame, Index, Value};

impl Thicket {
    /// Render the call tree with one aligned column of `metric` per
    /// profile — a text rendition of the paper's tree+table views.
    /// Missing cells print blank.
    pub fn tree_table(&self, metric: &ColKey) -> Result<String, ThicketError> {
        self.perf_data().column(metric)?;
        let profiles = self.profiles();

        // Tree column first: a local walk that records which node each
        // line belongs to (a DAG node with several parents appears on
        // one line per incoming path, correctly re-annotated each time).
        let mut tree_lines: Vec<String> = Vec::new();
        let mut order: Vec<thicket_graph::NodeId> = Vec::new();
        fn walk(
            g: &thicket_graph::Graph,
            id: thicket_graph::NodeId,
            prefix: &str,
            is_last: bool,
            is_root: bool,
            lines: &mut Vec<String>,
            order: &mut Vec<thicket_graph::NodeId>,
        ) {
            let line = if is_root {
                g.node(id).name().to_string()
            } else {
                format!("{prefix}{} {}", if is_last { "└─" } else { "├─" }, g.node(id).name())
            };
            lines.push(line);
            order.push(id);
            let child_prefix = if is_root {
                prefix.to_string()
            } else {
                format!("{prefix}{}", if is_last { "   " } else { "│  " })
            };
            let children = g.node(id).children();
            for (i, &c) in children.iter().enumerate() {
                walk(g, c, &child_prefix, i + 1 == children.len(), false, lines, order);
            }
        }
        for &root in self.graph().roots() {
            walk(self.graph(), root, "", true, true, &mut tree_lines, &mut order);
        }

        let tree_w = tree_lines.iter().map(String::len).max().unwrap_or(4).max(4);
        let mut out = String::new();
        out.push_str(&format!("{:<tree_w$}", "node"));
        let col_w = 12usize;
        for p in &profiles {
            let label = p.display_cell();
            let label = if label.len() > col_w { &label[..col_w] } else { &label };
            out.push_str(&format!("  {label:>col_w$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat((tree_w + profiles.len() * (col_w + 2)).min(200)));
        out.push('\n');
        for (line, &id) in tree_lines.iter().zip(order.iter()) {
            out.push_str(&format!("{line:<tree_w$}"));
            for p in &profiles {
                match self.metric_at(id, p, metric) {
                    Some(v) => out.push_str(&format!("  {v:>col_w$.6}")),
                    None => out.push_str(&format!("  {:>col_w$}", "")),
                }
            }
            out.push('\n');
        }
        Ok(out)
    }

    /// Flat hot-spot profile: nodes ranked by one profile's metric,
    /// descending, with the share of the profile's total — the classic
    /// "where does the time go" table.
    pub fn flat_profile(
        &self,
        metric: &ColKey,
        profile: &Value,
    ) -> Result<DataFrame, ThicketError> {
        self.perf_data().column(metric)?;
        let mut rows: Vec<(String, f64)> = self
            .graph()
            .preorder()
            .into_iter()
            .filter_map(|id| {
                self.metric_at(id, profile, metric)
                    .map(|v| (self.graph().node(id).name().to_string(), v))
            })
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        let total: f64 = rows.iter().map(|(_, v)| v).sum();

        let index = Index::single("node", rows.iter().map(|(n, _)| Value::from(n.as_str())));
        let mut out = DataFrame::new(index);
        let mut vals = ColumnBuilder::with_capacity(rows.len());
        let mut pct = ColumnBuilder::with_capacity(rows.len());
        for (_, v) in &rows {
            vals.push(Value::Float(*v)).expect("float");
            pct.push(Value::Float(if total > 0.0 { v / total * 100.0 } else { 0.0 }))
                .expect("float");
        }
        out.insert(metric.clone(), vals.finish())?;
        out.insert(ColKey::new("% of total"), pct.finish())?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_perfsim::{simulate_cpu_run, CpuRunConfig};

    fn sample() -> Thicket {
        let profiles: Vec<_> = (0..2)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        Thicket::loader(&profiles[..])
            .profile_ids(&[Value::Int(10), Value::Int(20)])
            .load()
            .map(|(tk, _)| tk)
            .unwrap()
    }

    #[test]
    fn tree_table_layout() {
        let tk = sample();
        let s = tk.tree_table(&ColKey::new("time (exc)")).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + one line per node
        assert_eq!(lines.len(), 2 + tk.graph().len());
        assert!(lines[0].contains("10"));
        assert!(lines[0].contains("20"));
        // Kernel rows carry two numeric cells; group rows carry blanks.
        let vol = lines.iter().find(|l| l.contains("Apps_VOL3D")).unwrap();
        assert!(vol.matches('.').count() >= 2);
        assert!(tk.tree_table(&ColKey::new("nope")).is_err());
    }

    #[test]
    fn flat_profile_ranks_descending() {
        let tk = sample();
        let flat = tk
            .flat_profile(&ColKey::new("time (exc)"), &Value::Int(10))
            .unwrap();
        let vals = flat
            .column(&ColKey::new("time (exc)"))
            .unwrap()
            .numeric_values();
        assert!(vals.windows(2).all(|w| w[0] >= w[1]));
        // Percentages sum to 100.
        let pct: f64 = flat
            .column(&ColKey::new("% of total"))
            .unwrap()
            .numeric_values()
            .iter()
            .sum();
        assert!((pct - 100.0).abs() < 1e-9);
        // 13 kernels carry exclusive time.
        assert_eq!(flat.len(), 13);
    }

    #[test]
    fn flat_profile_unknown_profile_is_empty() {
        let tk = sample();
        let flat = tk
            .flat_profile(&ColKey::new("time (exc)"), &Value::Int(999))
            .unwrap();
        assert_eq!(flat.len(), 0);
    }
}
