//! # thicket-core
//!
//! The thicket object (paper §3): a unified view over an ensemble of
//! call-tree profiles, built from three relationally linked components —
//!
//! * **performance data** — a `(call-tree node, profile)`-indexed table
//!   of measured metrics;
//! * **metadata** — a profile-indexed table of build settings and
//!   execution context;
//! * **aggregated statistics** — a node-indexed table of reductions
//!   across profiles.
//!
//! plus the EDA operations of §4: metadata filtering, grouping, call-path
//! querying, aggregated statistics, column-axis composition of multiple
//! thickets, Extra-P-style modeling glue, and feature extraction for
//! clustering/PCA.
//!
//! ```
//! use thicket_core::Thicket;
//! use thicket_perfsim::{simulate_cpu_run, CpuRunConfig};
//!
//! let mut profiles = Vec::new();
//! for seed in 0..4 {
//!     let mut cfg = CpuRunConfig::quartz_default();
//!     cfg.seed = seed;
//!     profiles.push(simulate_cpu_run(&cfg));
//! }
//! let (tk, report) = Thicket::loader(&profiles).load().unwrap();
//! assert_eq!(tk.profiles().len(), 4);
//! assert_eq!(tk.metadata().len(), 4);
//! assert!(report.is_clean());
//! ```

#![warn(missing_docs)]

mod compose;
mod display;
mod extend;
mod loader;
mod model_glue;
mod ops;
mod order;
mod pivot;
mod rowconcat;
mod source;
mod stats;
mod thicket;
mod trace_agg;
mod treetable;

pub use loader::{LoadSource, Loader};
pub use source::{
    trace_to_store, EnsembleSource, OwnedSource, ProfileSource, SliceSource, StoreSource,
    TraceSource,
};
pub use trace_agg::TraceAggregator;
pub use thicket_perfsim::{FilterPlan, IngestReport, MetaPred, Strictness};
pub use thicket_dataframe::{Bitmap, PredExpr, PredOp, StrMatch};

pub use compose::{concat_thickets, concat_thickets_threads, NodeMatch};
pub use rowconcat::{concat_thickets_rows, concat_thickets_rows_threads};
pub use model_glue::{model_metric, NodeModel};
pub use stats::StatSpec;
pub use thicket::{Thicket, ThicketError};
