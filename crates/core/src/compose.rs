//! Hierarchical (column-axis) composition of thickets (paper §3.2.2,
//! Figures 4 and 15): joining multiple thickets' performance data
//! side-by-side under a new top-level column index.

use crate::thicket::{input_failure, Thicket, ThicketError, NODE_LEVEL, PROFILE_LEVEL};
use std::collections::HashSet;
use thicket_dataframe::{join_many, DataFrame, Index, JoinHow, Value};
use thicket_graph::GraphUnion;

/// How call-tree nodes are matched across the composed thickets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeMatch {
    /// Match by full call path (structural union) — the default when the
    /// inputs come from the same code shape.
    Path,
    /// Match by node *name* — needed when different tools produce
    /// different tree shapes around the same kernels (the paper's
    /// CPU-Caliper vs GPU-NCU composition, Figure 15). Node names must
    /// be unique within each input.
    Name,
}

impl Thicket {
    /// Replace the profile index with the values of a metadata column
    /// (e.g. `problem size`), as the paper does before composing CPU and
    /// GPU thickets on a shared secondary index (Figure 4). The column's
    /// values must be unique across profiles.
    pub fn reindex_profiles_by(
        &self,
        column: &thicket_dataframe::ColKey,
    ) -> Result<Thicket, ThicketError> {
        let map = self.metadata_column(column)?;
        {
            let mut seen = HashSet::new();
            for v in map.values() {
                if !seen.insert(v.clone()) {
                    return Err(ThicketError::Invalid(format!(
                        "metadata column {column} is not unique across profiles"
                    )));
                }
            }
        }
        // A perf row whose profile id has no metadata row cannot be
        // re-keyed; silently mapping it to null would corrupt the index.
        let remap = |old: &Value| -> Result<Value, ThicketError> {
            map.get(old).cloned().ok_or_else(|| {
                ThicketError::Invalid(format!(
                    "perf data references profile {old} which has no metadata row; \
                     cannot reindex by {column}"
                ))
            })
        };

        let perf_keys: Vec<Vec<Value>> = self
            .perf_data
            .index()
            .keys()
            .iter()
            .map(|k| Ok(vec![k[0].clone(), remap(&k[1])?]))
            .collect::<Result<_, ThicketError>>()?;
        let perf_index = Index::new([NODE_LEVEL, PROFILE_LEVEL], perf_keys)?;
        let mut perf_data = DataFrame::new(perf_index);
        for (k, c) in self.perf_data.columns() {
            perf_data.insert(k.clone(), c.clone())?;
        }

        let meta_keys: Vec<Vec<Value>> = self
            .metadata
            .index()
            .keys()
            .iter()
            .map(|k| Ok(vec![remap(&k[0])?]))
            .collect::<Result<_, ThicketError>>()?;
        let meta_index = Index::new([PROFILE_LEVEL], meta_keys)?;
        let mut metadata = DataFrame::new(meta_index);
        for (k, c) in self.metadata.columns() {
            metadata.insert(k.clone(), c.clone())?;
        }

        Thicket::from_components(
            self.graph.clone(),
            perf_data.sort_by_index(),
            metadata,
            DataFrame::new(Index::empty([NODE_LEVEL])),
        )
    }
}

/// Compose thickets along the column axis: each input's performance-data
/// and metadata columns appear under its group label; rows are the
/// `(node, profile)` pairs present in **all** inputs (inner join — the
/// paper's intersection semantics).
///
/// Per-input frame preparation fans out over worker threads; see
/// [`concat_thickets_threads`] for an explicit count.
pub fn concat_thickets(
    inputs: &[(&str, &Thicket)],
    match_on: NodeMatch,
) -> Result<Thicket, ThicketError> {
    concat_thickets_threads(inputs, match_on, thicket_perfsim::default_threads(inputs.len()))
}

/// [`concat_thickets`] with an explicit worker count. Each input's
/// re-keyed, column-grouped perf frame is built on its own worker; the
/// frames then meet in one k-way inner join, so the result is identical
/// for any `threads ≥ 1`.
pub fn concat_thickets_threads(
    inputs: &[(&str, &Thicket)],
    match_on: NodeMatch,
    threads: usize,
) -> Result<Thicket, ThicketError> {
    if inputs.is_empty() {
        return Err(ThicketError::Invalid("concat_thickets of nothing".into()));
    }
    {
        let mut seen = HashSet::new();
        for (label, _) in inputs {
            if !seen.insert(*label) {
                return Err(ThicketError::Invalid(format!(
                    "duplicate group label {label:?}"
                )));
            }
        }
    }

    // Build each input's perf frame (re-keyed node level + grouped
    // columns) on the workers, in input order.
    let (perf_frames, result_graph) = match match_on {
        NodeMatch::Path => {
            let graphs: Vec<&thicket_graph::Graph> =
                inputs.iter().map(|(_, t)| t.graph()).collect();
            let union = GraphUnion::build(&graphs);
            let items: Vec<_> = inputs.iter().zip(union.mappings.iter()).collect();
            let frames =
                thicket_perfsim::try_parallel_map(&items, threads, |((label, tk), mapping)| {
                    let keys: Vec<Vec<Value>> = tk
                        .perf_data
                        .index()
                        .keys()
                        .iter()
                        .map(|k| {
                            let old = tk.node_of_value(&k[0]).ok_or(())?;
                            let new = mapping.get(&old).ok_or(())?;
                            Ok(vec![Value::Int(new.index() as i64), k[1].clone()])
                        })
                        .collect::<Result<_, ()>>()
                        .map_err(|_| {
                            ThicketError::Invalid("perf row references unknown node".into())
                        })?;
                    rekey(&tk.perf_data, keys, label)
                })
                .map_err(|e| input_failure(e, "input thicket"))?;
            (frames, union.graph)
        }
        NodeMatch::Name => {
            let frames = thicket_perfsim::try_parallel_map(inputs, threads, |(label, tk)| {
                let keys: Vec<Vec<Value>> = tk
                    .perf_data
                    .index()
                    .keys()
                    .iter()
                    .map(|k| vec![Value::from(tk.node_name(&k[0]).as_str()), k[1].clone()])
                    .collect();
                let frame = rekey(&tk.perf_data, keys, label)?;
                if !frame.index().is_unique() {
                    return Err(ThicketError::Invalid(format!(
                        "node names are not unique in input {label:?}; use NodeMatch::Path"
                    )));
                }
                Ok(frame)
            })
            .map_err(|e| input_failure(e, "input thicket"))?;
            (frames, inputs[0].1.graph().clone())
        }
    };

    let refs: Vec<&DataFrame> = perf_frames.iter().collect();
    let perf_data = join_many(&refs, JoinHow::Inner)?;

    // Metadata composes the same way (outer join keeps every profile).
    let meta_frames: Vec<DataFrame> = inputs
        .iter()
        .map(|(label, tk)| tk.metadata.with_column_group(label))
        .collect();
    let mrefs: Vec<&DataFrame> = meta_frames.iter().collect();
    let metadata = join_many(&mrefs, JoinHow::Outer)?;

    // In Name mode the node level holds names, not arena ids; keep the
    // graph for display but note lookups go through names.
    Thicket::from_components(
        result_graph,
        crate::order::sort_frame_by_index_threads(&perf_data, threads),
        metadata,
        DataFrame::new(Index::empty([NODE_LEVEL])),
    )
}

fn rekey(
    frame: &DataFrame,
    keys: Vec<Vec<Value>>,
    group: &str,
) -> Result<DataFrame, ThicketError> {
    let index = Index::new([NODE_LEVEL, PROFILE_LEVEL], keys)?;
    let mut out = DataFrame::new(index);
    for (k, c) in frame.columns() {
        out.insert(k.under(group), c.clone())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_dataframe::ColKey;
    use thicket_perfsim::{
        simulate_cpu_run, simulate_gpu_run, CpuRunConfig, GpuRunConfig,
    };

    fn cpu_thicket() -> Thicket {
        let profiles: Vec<_> = [1_048_576u64, 4_194_304]
            .iter()
            .map(|&size| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.problem_size = size;
                simulate_cpu_run(&cfg)
            })
            .collect();
        Thicket::loader(&profiles).load()
            .unwrap()
            .0
            .reindex_profiles_by(&ColKey::new("problem size"))
            .unwrap()
    }

    fn gpu_thicket() -> Thicket {
        let profiles: Vec<_> = [1_048_576u64, 4_194_304]
            .iter()
            .map(|&size| {
                let mut cfg = GpuRunConfig::lassen_default();
                cfg.problem_size = size;
                simulate_gpu_run(&cfg)
            })
            .collect();
        Thicket::loader(&profiles).load()
            .unwrap()
            .0
            .reindex_profiles_by(&ColKey::new("problem size"))
            .unwrap()
    }

    #[test]
    fn reindex_replaces_profile_level() {
        let tk = cpu_thicket();
        assert_eq!(
            tk.profiles(),
            vec![Value::Int(1_048_576), Value::Int(4_194_304)]
        );
        // Perf rows carry the new index too.
        let sizes: HashSet<Value> = tk
            .perf_data()
            .index()
            .keys()
            .iter()
            .map(|k| k[1].clone())
            .collect();
        assert_eq!(sizes.len(), 2);
        assert!(sizes.contains(&Value::Int(1_048_576)));
    }

    #[test]
    fn reindex_requires_unique_values() {
        let profiles: Vec<_> = (0..2)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        let tk = Thicket::loader(&profiles).load().unwrap().0;
        // Both runs share the same problem size.
        assert!(tk.reindex_profiles_by(&ColKey::new("problem size")).is_err());
    }

    #[test]
    fn reindex_rejects_orphaned_perf_profile() {
        // Hand-build a thicket whose perf data references a profile id
        // that has no metadata row.
        let tk = cpu_thicket();
        let mut perf = tk.perf_data().clone();
        let orphan = Value::Int(999_999);
        let mut keys: Vec<Vec<Value>> = perf.index().keys().to_vec();
        keys[0][1] = orphan.clone();
        let index = Index::new(["node", "profile"], keys).unwrap();
        let mut rekeyed = DataFrame::new(index);
        for (k, c) in perf.columns() {
            rekeyed.insert(k.clone(), c.clone()).unwrap();
        }
        perf = rekeyed;
        let broken = Thicket::from_components(
            tk.graph().clone(),
            perf,
            tk.metadata().clone(),
            DataFrame::new(Index::empty(["node"])),
        )
        .unwrap();
        let err = broken
            .reindex_profiles_by(&ColKey::new("problem size"))
            .unwrap_err();
        assert!(
            err.to_string().contains("999999"),
            "error should name the orphaned profile: {err}"
        );
        assert!(err.to_string().contains("no metadata row"), "{err}");
    }

    #[test]
    fn threads_variant_matches_default() {
        let a = cpu_thicket();
        let b = gpu_thicket();
        let inputs = [("CPU", &a), ("GPU", &b)];
        let one = concat_thickets_threads(&inputs, NodeMatch::Name, 1).unwrap();
        let many = concat_thickets_threads(&inputs, NodeMatch::Name, 8).unwrap();
        assert_eq!(one.perf_data(), many.perf_data());
        assert_eq!(one.metadata(), many.metadata());
    }

    #[test]
    fn figure4_cpu_gpu_composition() {
        let composed =
            concat_thickets(&[("CPU", &cpu_thicket()), ("GPU", &gpu_thicket())], NodeMatch::Name)
                .unwrap();
        // Grouped columns from both sides.
        assert!(composed
            .perf_data()
            .has_column(&ColKey::grouped("CPU", "time (exc)")));
        assert!(composed
            .perf_data()
            .has_column(&ColKey::grouped("GPU", "time (gpu)")));
        assert!(composed
            .perf_data()
            .has_column(&ColKey::grouped("GPU", "gpu__dram_throughput")));
        // Rows exist only for shared (kernel, size) pairs; every row has
        // both CPU and GPU values.
        assert!(!composed.perf_data().is_empty());
        let cpu_col = composed
            .perf_data()
            .column(&ColKey::grouped("CPU", "time (exc)"))
            .unwrap();
        let gpu_col = composed
            .perf_data()
            .column(&ColKey::grouped("GPU", "time (gpu)"))
            .unwrap();
        for row in 0..composed.perf_data().len() {
            assert!(!cpu_col.is_null_at(row));
            assert!(!gpu_col.is_null_at(row));
        }
        // Two rows (problem sizes) per shared kernel node (Figure 4).
        let dot_rows = composed
            .perf_data()
            .index()
            .keys()
            .iter()
            .filter(|k| k[0] == Value::from("Stream_DOT"))
            .count();
        assert_eq!(dot_rows, 2);
        // Metadata composed with group labels.
        assert!(composed
            .metadata()
            .has_column(&ColKey::grouped("CPU", "compiler")));
        assert!(composed
            .metadata()
            .has_column(&ColKey::grouped("GPU", "cuda compiler")));
    }

    #[test]
    fn path_mode_requires_shared_paths() {
        // CPU trees share paths with themselves: compose two CPU thickets.
        let a = cpu_thicket();
        let b = cpu_thicket();
        let composed = concat_thickets(&[("A", &a), ("B", &b)], NodeMatch::Path).unwrap();
        assert!(composed
            .perf_data()
            .has_column(&ColKey::grouped("A", "time (exc)")));
        assert_eq!(composed.perf_data().len(), a.perf_data().len());
        // CPU vs GPU trees diverge below the root → path intersection has
        // no measured common rows.
        let cross =
            concat_thickets(&[("CPU", &a), ("GPU", &gpu_thicket())], NodeMatch::Path).unwrap();
        assert_eq!(cross.perf_data().len(), 0);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let a = cpu_thicket();
        assert!(concat_thickets(&[("X", &a), ("X", &a)], NodeMatch::Name).is_err());
        assert!(concat_thickets(&[], NodeMatch::Name).is_err());
    }

    #[test]
    fn figure15_derived_speedup() {
        let mut composed =
            concat_thickets(&[("CPU", &cpu_thicket()), ("GPU", &gpu_thicket())], NodeMatch::Name)
                .unwrap();
        composed
            .add_derived_column(ColKey::grouped("Derived", "speedup"), |r| {
                match (
                    r.f64(ColKey::grouped("CPU", "time (exc)")),
                    r.f64(ColKey::grouped("GPU", "time (gpu)")),
                ) {
                    (Some(c), Some(g)) if g > 0.0 => Value::Float(c / g),
                    _ => Value::Null,
                }
            })
            .unwrap();
        let speedup = composed
            .perf_data()
            .column(&ColKey::grouped("Derived", "speedup"))
            .unwrap();
        assert!(speedup.numeric_values().iter().all(|v| *v > 0.0));
    }
}
