//! Aggregated statistics (paper §4.2.1): reduce each metric across all
//! profiles of each call-tree node into the node-indexed statsframe.

use crate::thicket::{Thicket, ThicketError, NODE_LEVEL};
use thicket_dataframe::{AggFn, ColKey, GroupBy};

/// A `(metric column, aggregations)` request.
pub type StatSpec = (ColKey, Vec<AggFn>);

impl Thicket {
    /// Compute aggregated statistics for the given metric columns and
    /// reductions, replacing the statsframe. Output columns follow the
    /// paper's `<metric>_<agg>` naming (Figure 9: `time (exc)_std`).
    pub fn compute_stats(&mut self, specs: &[StatSpec]) -> Result<(), ThicketError> {
        let groups = GroupBy::by_levels(&self.perf_data, &[NODE_LEVEL])?;
        self.statsframe = groups.agg_columns(specs)?;
        Ok(())
    }

    /// Compute one reduction over *every* numeric perf-data column.
    pub fn compute_stats_all(&mut self, func: AggFn) -> Result<(), ThicketError> {
        let specs: Vec<StatSpec> = self
            .perf_data
            .columns()
            .filter(|(_, c)| c.dtype().is_numeric())
            .map(|(k, _)| (k.clone(), vec![func]))
            .collect();
        self.compute_stats(&specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_dataframe::Value;
    use thicket_perfsim::{simulate_cpu_run, CpuRunConfig};

    fn ensemble(n: u64) -> Thicket {
        let profiles: Vec<_> = (0..n)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        Thicket::loader(&profiles).load().unwrap().0
    }

    #[test]
    fn std_columns_created() {
        let mut tk = ensemble(10);
        tk.compute_stats(&[
            (ColKey::new("Retiring"), vec![AggFn::Std]),
            (ColKey::new("Backend bound"), vec![AggFn::Std]),
            (ColKey::new("time (exc)"), vec![AggFn::Std]),
        ])
        .unwrap();
        let sf = tk.statsframe();
        assert!(sf.has_column(&ColKey::new("Retiring_std")));
        assert!(sf.has_column(&ColKey::new("Backend bound_std")));
        assert!(sf.has_column(&ColKey::new("time (exc)_std")));
        // One row per node that has perf data.
        assert!(!sf.is_empty());
        assert_eq!(sf.index().names(), &[NODE_LEVEL.to_string()]);
    }

    #[test]
    fn stats_match_manual_computation() {
        let mut tk = ensemble(8);
        tk.compute_stats(&[(ColKey::new("time (exc)"), vec![AggFn::Mean, AggFn::Var])])
            .unwrap();
        let node = tk.find_node("Stream_DOT").unwrap();
        let series: Vec<f64> = tk
            .metric_series(node, &ColKey::new("time (exc)"))
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert_eq!(series.len(), 8);
        let manual_mean = thicket_stats::mean(&series).unwrap();
        let manual_var = thicket_stats::variance(&series).unwrap();
        // Find the statsframe row for this node.
        let node_v = tk.value_of_node(node);
        let row = tk
            .statsframe()
            .index()
            .keys()
            .iter()
            .position(|k| k[0] == node_v)
            .unwrap();
        let got_mean = tk
            .statsframe()
            .column(&ColKey::new("time (exc)_mean"))
            .unwrap()
            .get_f64(row)
            .unwrap();
        let got_var = tk
            .statsframe()
            .column(&ColKey::new("time (exc)_var"))
            .unwrap()
            .get_f64(row)
            .unwrap();
        assert!((got_mean - manual_mean).abs() < 1e-12);
        assert!((got_var - manual_var).abs() < 1e-12);
    }

    #[test]
    fn compute_stats_all_covers_numeric_columns() {
        let mut tk = ensemble(5);
        tk.compute_stats_all(AggFn::Mean).unwrap();
        assert!(tk.statsframe().has_column(&ColKey::new("time (exc)_mean")));
        assert!(tk.statsframe().has_column(&ColKey::new("Retiring_mean")));
    }

    #[test]
    fn single_profile_std_is_null() {
        let mut tk = ensemble(1);
        tk.compute_stats(&[(ColKey::new("time (exc)"), vec![AggFn::Std])])
            .unwrap();
        let col = tk
            .statsframe()
            .column(&ColKey::new("time (exc)_std"))
            .unwrap();
        assert_eq!(col.count_valid(), 0);
    }

    #[test]
    fn missing_metric_errors() {
        let mut tk = ensemble(2);
        assert!(tk
            .compute_stats(&[(ColKey::new("nope"), vec![AggFn::Mean])])
            .is_err());
    }

    #[test]
    fn statsframe_named_uses_node_names() {
        let mut tk = ensemble(3);
        tk.compute_stats(&[(ColKey::new("time (exc)"), vec![AggFn::Mean])])
            .unwrap();
        let named = tk.statsframe_named();
        let names: Vec<String> = named
            .index()
            .keys()
            .iter()
            .map(|k| k[0].as_str().unwrap().to_string())
            .collect();
        assert!(names.contains(&"Apps_VOL3D".to_string()));
        assert!(!names.contains(&Value::Int(0).display_cell().into_owned()));
    }
}
