//! The unified ingest builder: one front door for every way a
//! [`Thicket`] gets built.
//!
//! The legacy surface grew combinatorially — ten `Thicket::from_profiles*`
//! variants, four `load_ensemble*` free functions, and the
//! `from_store*`/`load_where*` families — one name per (source ×
//! strictness × threads × index) combination. [`Loader`] collapses all
//! of them behind a single builder:
//!
//! ```
//! use thicket_core::Thicket;
//! use thicket_perfsim::{simulate_cpu_run, CpuRunConfig};
//!
//! let profiles: Vec<_> = (0..4)
//!     .map(|seed| {
//!         let mut cfg = CpuRunConfig::quartz_default();
//!         cfg.seed = seed;
//!         simulate_cpu_run(&cfg)
//!     })
//!     .collect();
//! let (tk, report) = Thicket::loader(&profiles).load().unwrap();
//! assert_eq!(tk.profiles().len(), 4);
//! assert!(report.is_clean());
//! ```
//!
//! Sources are in-memory profile slices, loose-JSON ensemble
//! directories, sharded store directories, raw event traces, or any
//! custom [`ProfileSource`] ([`LoadSource`]). Internally the loader
//! consumes every source through the same pull-based chunk protocol
//! ([`ProfileSource`]): the first chunk composes the thicket, every
//! later chunk extends it, so a source larger than memory (a trace)
//! streams through without ever materializing.
//!
//! The same knobs apply to each source: [`Loader::threads`] pins the
//! worker count (default: auto), [`Loader::strictness`] picks fail-fast
//! vs lenient ingest, and [`Loader::filter`] accepts **either** a typed
//! [`MetaPred`](thicket_perfsim::MetaPred) or a compiled predicate-engine
//! [`PredExpr`] — both flow through the same planner, which pushes
//! metadata conjuncts below the source read (columnar manifest
//! selection on store sources — non-matching shards are never opened)
//! and applies the residual after composition:
//!
//! ```no_run
//! use thicket_core::{LoadSource, Thicket};
//! use thicket_perfsim::MetaPred;
//!
//! let pred = MetaPred::eq("cluster", "quartz").and(MetaPred::ge("problem_size", 1024i64));
//! let (tk, report) = Thicket::loader(LoadSource::store("runs.tks"))
//!     .filter(pred)
//!     .load()
//!     .unwrap();
//! # let _ = (tk, report);
//! ```
//!
//! Streaming a trace with time windows:
//!
//! ```no_run
//! use std::time::Duration;
//! use thicket_core::{LoadSource, Thicket};
//!
//! let (tk, report) = Thicket::loader(
//!     LoadSource::trace("run.trace").windows(Duration::from_millis(100)),
//! )
//! .load()
//! .unwrap();
//! # let _ = (tk, report);
//! ```
//!
//! Every deprecated entry point is now a thin wrapper over this
//! builder; the `builder_equiv` integration suite proves each wrapper
//! bit-identical to its builder spelling.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::time::Duration;
use thicket_dataframe::{PredExpr, Value};
use thicket_perfsim::{
    default_threads, Diagnostic, FilterPlan, IngestReport, Profile, Strictness, StoreEntry,
};

use crate::source::{
    profile_meta_keys, EnsembleSource, ProfileSource, StoreSource, TraceSource,
};
use crate::thicket::{Thicket, ThicketError, PROFILE_LEVEL};

/// Where a [`Loader`] reads its profiles from.
///
/// Constructed via `From` for in-memory slices (so
/// `Thicket::loader(&profiles)` just works) or the
/// [`LoadSource::ensemble`] / [`LoadSource::store`] /
/// [`LoadSource::trace`] / [`LoadSource::custom`] constructors.
pub enum LoadSource<'a> {
    /// Profiles already in memory.
    Profiles(&'a [Profile]),
    /// Profiles the loader takes ownership of. This is the wire-client
    /// plumbing: `ThicketClient::load_matching` hands back owned
    /// profiles with no slice to borrow from, and
    /// `Thicket::loader(profiles)` must work without the caller keeping
    /// a binding alive. Semantically identical to
    /// [`LoadSource::Profiles`].
    Owned(Vec<Profile>),
    /// A loose-JSON ensemble directory
    /// ([`thicket_perfsim::ensemble`]).
    Ensemble(PathBuf),
    /// A sharded, checksummed store directory
    /// ([`thicket_perfsim::store`]).
    Store(PathBuf),
    /// A raw event trace, streamed through a bounded-memory aggregator
    /// ([`crate::TraceAggregator`]) into per-rank (and per-window)
    /// profiles.
    Trace {
        /// The trace file path.
        path: PathBuf,
        /// Aggregation window; `None` folds the whole trace into one
        /// profile per rank.
        window: Option<Duration>,
        /// Events read per pull (`None`: the [`TraceSource`] default).
        chunk_events: Option<usize>,
    },
    /// Any custom [`ProfileSource`] implementation.
    Custom(Box<dyn ProfileSource + 'a>),
}

impl LoadSource<'_> {
    /// A loose-JSON ensemble directory source.
    pub fn ensemble(dir: impl AsRef<Path>) -> LoadSource<'static> {
        LoadSource::Ensemble(dir.as_ref().to_path_buf())
    }

    /// A sharded store directory source.
    pub fn store(dir: impl AsRef<Path>) -> LoadSource<'static> {
        LoadSource::Store(dir.as_ref().to_path_buf())
    }

    /// A raw event trace source: the trace streams through a
    /// bounded-memory aggregator into one profile per rank (add
    /// [`LoadSource::windows`] for one per rank per time window).
    pub fn trace(path: impl AsRef<Path>) -> LoadSource<'static> {
        LoadSource::Trace {
            path: path.as_ref().to_path_buf(),
            window: None,
            chunk_events: None,
        }
    }

    /// Cut the trace's time axis into windows of `window` length: each
    /// rank emits one profile per window that saw activity, with
    /// `window` / `window start (ns)` metadata for filtering.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-trace source — windows are a
    /// property of trace aggregation only.
    pub fn windows(self, window: Duration) -> Self {
        match self {
            LoadSource::Trace {
                path, chunk_events, ..
            } => LoadSource::Trace {
                path,
                window: Some(window),
                chunk_events,
            },
            _ => panic!("LoadSource::windows applies only to trace sources"),
        }
    }

    /// Events read per pull for a trace source (smaller: lower peak
    /// memory; larger: less parse overhead).
    ///
    /// # Panics
    ///
    /// Panics when called on a non-trace source.
    pub fn chunk_events(self, n: usize) -> Self {
        match self {
            LoadSource::Trace { path, window, .. } => LoadSource::Trace {
                path,
                window,
                chunk_events: Some(n),
            },
            _ => panic!("LoadSource::chunk_events applies only to trace sources"),
        }
    }
}

impl<'a> LoadSource<'a> {
    /// Wrap a custom [`ProfileSource`] implementation (a socket, a
    /// generator, a foreign format…). The loader drives it through the
    /// same chunked build-then-extend protocol as every built-in
    /// source.
    pub fn custom(src: impl ProfileSource + 'a) -> LoadSource<'a> {
        LoadSource::Custom(Box::new(src))
    }
}

impl<'a> From<&'a [Profile]> for LoadSource<'a> {
    fn from(profiles: &'a [Profile]) -> Self {
        LoadSource::Profiles(profiles)
    }
}

impl<'a> From<&'a Vec<Profile>> for LoadSource<'a> {
    fn from(profiles: &'a Vec<Profile>) -> Self {
        LoadSource::Profiles(profiles)
    }
}

impl<'a, const N: usize> From<&'a [Profile; N]> for LoadSource<'a> {
    fn from(profiles: &'a [Profile; N]) -> Self {
        LoadSource::Profiles(profiles)
    }
}

impl From<Vec<Profile>> for LoadSource<'static> {
    fn from(profiles: Vec<Profile>) -> Self {
        LoadSource::Owned(profiles)
    }
}

/// The predicate shapes a loader can carry: a compiled predicate-engine
/// [`PredExpr`] (which a typed `MetaPred` converts into — metadata
/// conjuncts push below the read, performance-frame conjuncts run after
/// composition), or a legacy entry closure (store sources only; forces
/// full metadata materialization).
enum Filter<'a> {
    Expr(PredExpr),
    Entries(Box<dyn FnMut(&StoreEntry) -> bool + 'a>),
}

/// Builder for every thicket ingest path; constructed by
/// [`Thicket::loader`].
pub struct Loader<'a> {
    source: LoadSource<'a>,
    threads: Option<usize>,
    strictness: Strictness,
    filter: Option<Filter<'a>>,
    profile_ids: Option<&'a [Value]>,
    pinned: bool,
}

impl Thicket {
    /// Start building a thicket from `source` (an in-memory profile
    /// slice, [`LoadSource::ensemble`], [`LoadSource::store`],
    /// [`LoadSource::trace`], or [`LoadSource::custom`]).
    ///
    /// Defaults: auto worker count, [`Strictness::FailFast`], no
    /// filter, profile ids from [`Profile::profile_hash`].
    pub fn loader<'a>(source: impl Into<LoadSource<'a>>) -> Loader<'a> {
        Loader {
            source: source.into(),
            threads: None,
            strictness: Strictness::FailFast,
            filter: None,
            profile_ids: None,
            pinned: true,
        }
    }
}

impl<'a> Loader<'a> {
    /// Pin the worker count for the load and row-assembly fan-outs.
    /// The result is bit-identical for any `threads ≥ 1`; the default
    /// scales with the input size ([`default_threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Choose fail-fast (default) or lenient ingest. Lenient drops
    /// unhealthy sources with typed diagnostics in the returned
    /// [`IngestReport`]; fail-fast turns the first problem into an
    /// error — for store sources, *any* load diagnostic is fatal.
    pub fn strictness(mut self, strictness: Strictness) -> Self {
        self.strictness = strictness;
        self
    }

    /// Keep only profiles matching a predicate — a typed
    /// [`MetaPred`](thicket_perfsim::MetaPred) or a compiled
    /// predicate-engine [`PredExpr`]; both convert into the same AST
    /// (the one [`MetaPred::to_expr`](thicket_perfsim::MetaPred::to_expr),
    /// the query dialect's `parse_pred`, and the frame filters compile
    /// into) and flow through one planner. The expression may also
    /// reference performance-frame fields: the planner splits the
    /// top-level conjunction, pushes every conjunct whose fields the
    /// source's metadata can answer *below* the read (columnar
    /// manifest selection on store sources — non-matching shards are
    /// never opened), and applies the remainder after composition with
    /// exists-row semantics over the performance frame (a profile
    /// survives if at least one of its rows satisfies the conjunct;
    /// fields resolve to perf columns, then index levels, then profile
    /// metadata). The split is recorded in [`IngestReport::pushdown`].
    pub fn filter(mut self, pred: impl Into<PredExpr>) -> Self {
        self.filter = Some(Filter::Expr(pred.into()));
        self
    }

    /// Deprecated spelling of [`Loader::filter`], kept for one release
    /// so existing callers migrate at leisure — `filter` now accepts
    /// both predicate shapes directly.
    #[deprecated(note = "use `filter` — it accepts both `MetaPred` and `PredExpr`")]
    pub fn filter_expr(self, expr: PredExpr) -> Self {
        self.filter(expr)
    }

    /// Keep only store entries matching a closure (store sources
    /// only). This is the escape hatch behind the deprecated
    /// `from_store_filtered*` shims: unlike [`Loader::filter`] it
    /// materializes every entry's metadata, so prefer a typed
    /// [`MetaPred`](thicket_perfsim::MetaPred) wherever one can express
    /// the selection.
    pub fn filter_entries(mut self, pred: impl FnMut(&StoreEntry) -> bool + 'a) -> Self {
        self.filter = Some(Filter::Entries(Box::new(pred)));
        self
    }

    /// Supply study-relevant profile index values (in-memory profile
    /// sources only; must be unique and match the slice length). The
    /// default indices are the deterministic metadata hashes.
    pub fn profile_ids(mut self, ids: &'a [Value]) -> Self {
        self.profile_ids = Some(ids);
        self
    }

    /// Pin store reads (store sources only; default `true`): the load
    /// opens a generation-pinned snapshot — shard handles held open, a
    /// GC lease registered — so a concurrent append, compaction, or
    /// garbage collection can never tear the read. Costs one lease
    /// file write per load; pass `false` to read unpinned (safe when
    /// nothing else writes the store).
    pub fn pinned(mut self, pinned: bool) -> Self {
        self.pinned = pinned;
        self
    }

    /// Run the load: read the source, apply the filter, compose the
    /// thicket. Returns the thicket plus an [`IngestReport`] covering
    /// both the read and the composition; the report is clean for
    /// fail-fast loads that return `Ok`.
    ///
    /// Chunked sources (traces, [`StoreSource::chunk_size`], custom
    /// sources) compose incrementally: the first chunk builds the
    /// thicket, each later chunk is absorbed via `Thicket::extend` —
    /// bit-identical to a whole-input build, but never holding more
    /// than one chunk of source profiles.
    pub fn load(self) -> Result<(Thicket, IngestReport), ThicketError> {
        let Loader {
            source,
            threads,
            strictness,
            filter,
            profile_ids,
            pinned,
        } = self;

        // An owned source is a borrowed source whose backing storage we
        // carry ourselves: normalize it here so the zero-clone in-memory
        // fast path below serves both shapes.
        let owned_backing: Vec<Profile>;
        let source = match source {
            LoadSource::Owned(profiles) => {
                owned_backing = profiles;
                LoadSource::Profiles(&owned_backing)
            }
            other => other,
        };

        if profile_ids.is_some() && !matches!(source, LoadSource::Profiles(_)) {
            return Err(ThicketError::Invalid(
                "profile_ids applies only to in-memory profile sources; \
                 ensemble, store, and trace loads index by profile hash"
                    .into(),
            ));
        }

        // Split the filter into the shapes the paths below understand.
        let (expr_filter, entries_filter) = match filter {
            None => (None, None),
            Some(Filter::Expr(expr)) => (Some(expr), None),
            Some(Filter::Entries(pred)) => (None, Some(pred)),
        };
        if entries_filter.is_some() && !matches!(source, LoadSource::Store(_)) {
            return Err(ThicketError::Invalid(
                "entry closures apply only to store sources; \
                 use `filter` with a `MetaPred`"
                    .into(),
            ));
        }

        match source {
            // Normalized away above; the compiler cannot see that.
            LoadSource::Owned(_) => unreachable!("Owned normalized to Profiles"),

            // In-memory fast path: no adapter, no clone for unfiltered
            // loads — the borrowed slice composes directly.
            LoadSource::Profiles(profiles) => {
                load_in_memory(profiles, profile_ids, threads, strictness, expr_filter)
            }

            LoadSource::Ensemble(dir) => load_streaming(
                Box::new(EnsembleSource::new(&dir, threads, strictness)),
                threads,
                strictness,
                expr_filter,
            ),

            LoadSource::Store(dir) => {
                let mut src = StoreSource::open(&dir, pinned, threads, strictness)?;
                if let Some(pred) = entries_filter {
                    src = src.entry_filter(pred);
                }
                load_streaming(Box::new(src), threads, strictness, expr_filter)
            }

            LoadSource::Trace {
                path,
                window,
                chunk_events,
            } => {
                let mut src = TraceSource::open(&path, window, strictness)?;
                if let Some(n) = chunk_events {
                    src = src.chunk_events(n);
                }
                load_streaming(Box::new(src), threads, strictness, expr_filter)
            }

            LoadSource::Custom(src) => load_streaming(src, threads, strictness, expr_filter),
        }
    }
}

/// The in-memory fast path: zero-clone composition of a borrowed slice
/// when unfiltered, one filtered copy otherwise. Equivalent to driving
/// a [`crate::SliceSource`] through [`load_streaming`], minus the
/// defensive clone the trait's owned-chunk protocol requires.
fn load_in_memory(
    profiles: &[Profile],
    profile_ids: Option<&[Value]>,
    threads: Option<usize>,
    strictness: Strictness,
    filter: Option<PredExpr>,
) -> Result<(Thicket, IngestReport), ThicketError> {
    use std::borrow::Cow;

    let mut plan: Option<FilterPlan> = None;
    let mut residual: Vec<PredExpr> = Vec::new();
    let (kept, kept_ids): (Cow<'_, [Profile]>, Option<Cow<'_, [Value]>>) = match filter {
        None => (Cow::Borrowed(profiles), profile_ids.map(Cow::Borrowed)),
        Some(expr) => {
            let keys = profile_meta_keys(profiles.iter());
            let (pushed, res, p) = plan_conjuncts(&expr, &keys);
            plan = Some(p);
            residual = res;
            if let Some(ids) = profile_ids {
                if ids.len() != profiles.len() {
                    return Err(ThicketError::Invalid(format!(
                        "{} profiles but {} profile ids",
                        profiles.len(),
                        ids.len()
                    )));
                }
                let (kept, kept_ids): (Vec<_>, Vec<_>) = profiles
                    .iter()
                    .zip(ids.iter())
                    .filter(|(p, _)| expr_matches_profile(&pushed, p))
                    .map(|(p, id)| (p.clone(), id.clone()))
                    .unzip();
                (Cow::Owned(kept), Some(Cow::Owned(kept_ids)))
            } else {
                (
                    Cow::Owned(
                        profiles
                            .iter()
                            .filter(|p| expr_matches_profile(&pushed, p))
                            .cloned()
                            .collect(),
                    ),
                    None,
                )
            }
        }
    };
    let ids = match kept_ids {
        Some(ids) => ids,
        None => Cow::Owned(hash_ids(&kept)),
    };
    let threads = threads.unwrap_or_else(|| default_threads(kept.len()));
    let (tk, report) = compose(&kept, &ids, threads, strictness, None)?;
    finalize(tk, report, plan, &residual)
}

/// Drive any [`ProfileSource`] through the chunked build-then-extend
/// protocol: plan the filter against the source's metadata keys, pull
/// chunks (applying the pushed predicate per chunk when the source
/// declined it), compose the first chunk, extend with the rest, then
/// merge read and composition accounting.
fn load_streaming(
    mut src: Box<dyn ProfileSource + '_>,
    threads: Option<usize>,
    strictness: Strictness,
    filter: Option<PredExpr>,
) -> Result<(Thicket, IngestReport), ThicketError> {
    let mut plan: Option<FilterPlan> = None;
    let mut residual: Vec<PredExpr> = Vec::new();
    let mut chunk_pred: Option<PredExpr> = None;
    let mut unplanned: Option<PredExpr> = None;

    if let Some(expr) = filter {
        match src.meta_keys() {
            Some(keys) => {
                let (pushed, res, p) = plan_conjuncts(&expr, &keys);
                plan = Some(p);
                residual = res;
                if !src.push_filter(&pushed) {
                    chunk_pred = Some(pushed);
                }
            }
            // The source cannot enumerate its keys up front: buffer
            // every chunk, then plan against the materialized profiles.
            None => unplanned = Some(expr),
        }
    }

    let mut tk: Option<Thicket> = None;
    let mut attempted = 0usize;
    let mut loaded = 0usize;
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut buffered: Vec<Profile> = Vec::new();

    while let Some(mut chunk) = src.next_chunk()? {
        if unplanned.is_some() {
            buffered.append(&mut chunk);
            continue;
        }
        if let Some(pred) = &chunk_pred {
            chunk.retain(|p| expr_matches_profile(pred, p));
        }
        if chunk.is_empty() {
            continue;
        }
        let ids = hash_ids(&chunk);
        let threads_n = threads.unwrap_or_else(|| default_threads(chunk.len()));
        match &mut tk {
            None => {
                let (built, r) = compose(&chunk, &ids, threads_n, strictness, None)?;
                attempted += r.attempted;
                loaded += r.loaded;
                diagnostics.extend(r.diagnostics);
                tk = Some(built);
            }
            Some(t) => {
                // Extension chunks compose fail-fast: per-profile
                // lenient isolation lives in the read phase (source
                // diagnostics) and the first-chunk build.
                t.extend_threads(&chunk, &ids, threads_n)?;
                attempted += chunk.len();
                loaded += chunk.len();
            }
        }
    }

    if let Some(expr) = unplanned {
        let keys = profile_meta_keys(buffered.iter());
        let (pushed, res, p) = plan_conjuncts(&expr, &keys);
        plan = Some(p);
        residual = res;
        buffered.retain(|prof| expr_matches_profile(&pushed, prof));
        let ids = hash_ids(&buffered);
        let threads_n = threads.unwrap_or_else(|| default_threads(buffered.len()));
        let (built, r) = compose(&buffered, &ids, threads_n, strictness, None)?;
        attempted += r.attempted;
        loaded += r.loaded;
        diagnostics.extend(r.diagnostics);
        tk = Some(built);
    }

    let read = src.take_report();
    let build_report = IngestReport {
        attempted,
        loaded,
        diagnostics,
        pushdown: None,
    };
    match tk {
        Some(tk) => {
            // A trivial read report (no read phase of its own) means
            // composition accounting stands alone — exactly the classic
            // in-memory semantics. Otherwise chain read → compose the
            // way the two-phase loads always have.
            let report = if read.attempted == 0 && read.diagnostics.is_empty() {
                build_report
            } else {
                let mut read = read;
                read.absorb(build_report);
                read
            };
            finalize(tk, report, plan, &residual)
        }
        // Nothing loaded at all: surface the canonical zero-profile
        // error (fail-fast and lenient builds both refuse emptiness).
        None => {
            compose(&[], &[], 1, strictness, Some(read))?;
            unreachable!("composing zero profiles always errors")
        }
    }
}

/// Record the pushdown plan and run residual conjuncts (exists-row
/// semantics over the composed frame).
fn finalize(
    tk: Thicket,
    mut report: IngestReport,
    plan: Option<FilterPlan>,
    residual: &[PredExpr],
) -> Result<(Thicket, IngestReport), ThicketError> {
    if plan.is_some() {
        report.pushdown = plan;
    }
    let mut tk = tk;
    for conjunct in residual {
        tk = residual_filter(&tk, conjunct)?;
    }
    Ok((tk, report))
}

/// Scalar engine evaluation of an expression against one profile's
/// metadata (missing key ⇒ false, like every other engine surface).
fn expr_matches_profile(expr: &PredExpr, p: &Profile) -> bool {
    expr.eval_lookup(&mut |k| p.metadata(k).cloned())
}

/// The planner: split `expr`'s top-level conjunction into the part the
/// source can answer from metadata alone (every field of the conjunct
/// is in `keys`) and the residual conjuncts that need the composed
/// performance frame, plus the [`FilterPlan`] describing the split.
fn plan_conjuncts(
    expr: &PredExpr,
    keys: &BTreeSet<String>,
) -> (PredExpr, Vec<PredExpr>, FilterPlan) {
    let mut pushed = Vec::new();
    let mut residual = Vec::new();
    for c in expr.conjuncts() {
        if c.fields().iter().all(|f| keys.contains(*f)) {
            pushed.push(c.clone());
        } else {
            residual.push(c.clone());
        }
    }
    let plan = FilterPlan {
        pushed: pushed.iter().map(|c| c.to_string()).collect(),
        residual: residual.iter().map(|c| c.to_string()).collect(),
    };
    (PredExpr::and(pushed), residual, plan)
}

/// Apply one residual conjunct with exists-row semantics: keep exactly
/// the profiles having at least one perf-data row that satisfies it.
/// Fields resolve to perf columns, then index levels, then profile
/// metadata columns (gathered per row; a null metadata cell is absent).
fn residual_filter(tk: &Thicket, conjunct: &PredExpr) -> Result<Thicket, ThicketError> {
    let perf = tk.perf_data();
    let prof_of_row = perf.index().level_values(PROFILE_LEVEL)?;
    let mut src = perf.bind_source(conjunct);
    let unbound: Vec<&str> = conjunct
        .fields()
        .into_iter()
        .filter(|f| !src.is_bound(f))
        .collect();
    if !unbound.is_empty() {
        let meta = tk.metadata();
        let meta_row: HashMap<&Value, usize> = meta
            .index()
            .keys()
            .iter()
            .enumerate()
            .map(|(i, k)| (&k[0], i))
            .collect();
        let rows: Vec<Option<usize>> = prof_of_row
            .iter()
            .map(|p| meta_row.get(p).copied())
            .collect();
        for field in unbound {
            let Ok(col) = meta.column_named(field) else {
                continue; // unanswerable anywhere: matches no rows
            };
            let mut values = Vec::with_capacity(perf.len());
            let mut present = Vec::with_capacity(perf.len());
            for r in &rows {
                let v = match r {
                    Some(i) => col.get(*i),
                    None => Value::Null,
                };
                present.push(!v.is_null());
                values.push(v);
            }
            src.bind_masked(field, values, present);
        }
    }
    let hits = conjunct.eval(&src);
    let mut seen = HashSet::new();
    let mut keep = Vec::new();
    for i in hits.positions() {
        if seen.insert(prof_of_row[i].clone()) {
            keep.push(prof_of_row[i].clone());
        }
    }
    Ok(tk.filter_profiles(&keep))
}

/// Default profile index values: the deterministic metadata hashes.
fn hash_ids(profiles: &[Profile]) -> Vec<Value> {
    profiles
        .iter()
        .map(|p| Value::Int(p.profile_hash()))
        .collect()
}

/// Compose loaded profiles under the requested strictness, absorbing
/// the read-phase report (if any) so `attempted` counts sources and
/// `loaded` counts survivors of both phases.
fn compose(
    profiles: &[Profile],
    ids: &[Value],
    threads: usize,
    strictness: Strictness,
    read: Option<IngestReport>,
) -> Result<(Thicket, IngestReport), ThicketError> {
    let build = match strictness {
        Strictness::FailFast => {
            let tk = Thicket::build_indexed_threads(profiles, ids, threads)?;
            (
                tk,
                IngestReport {
                    attempted: profiles.len(),
                    loaded: profiles.len(),
                    diagnostics: Vec::new(),
                    pushdown: None,
                },
            )
        }
        Strictness::Lenient { .. } => {
            Thicket::build_indexed_lenient_threads(profiles, ids, threads)?
        }
    };
    match read {
        None => Ok(build),
        Some(mut report) => {
            report.absorb(build.1);
            Ok((build.0, report))
        }
    }
}
