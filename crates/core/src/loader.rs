//! The unified ingest builder: one front door for every way a
//! [`Thicket`] gets built.
//!
//! The legacy surface grew combinatorially — ten `Thicket::from_profiles*`
//! variants, four `load_ensemble*` free functions, and the
//! `from_store*`/`load_where*` families — one name per (source ×
//! strictness × threads × index) combination. [`Loader`] collapses all
//! of them behind a single builder:
//!
//! ```
//! use thicket_core::Thicket;
//! use thicket_perfsim::{simulate_cpu_run, CpuRunConfig};
//!
//! let profiles: Vec<_> = (0..4)
//!     .map(|seed| {
//!         let mut cfg = CpuRunConfig::quartz_default();
//!         cfg.seed = seed;
//!         simulate_cpu_run(&cfg)
//!     })
//!     .collect();
//! let (tk, report) = Thicket::loader(&profiles).load().unwrap();
//! assert_eq!(tk.profiles().len(), 4);
//! assert!(report.is_clean());
//! ```
//!
//! Sources are in-memory profile slices, loose-JSON ensemble
//! directories, or sharded store directories ([`LoadSource`]). The same
//! knobs apply to each: [`Loader::threads`] pins the worker count
//! (default: auto), [`Loader::strictness`] picks fail-fast vs lenient
//! ingest, and [`Loader::filter`] pushes a typed
//! [`MetaPred`](thicket_perfsim::MetaPred) down to the source — for
//! store sources that means columnar manifest selection *before* any
//! shard I/O:
//!
//! ```no_run
//! use thicket_core::{LoadSource, Thicket};
//! use thicket_perfsim::MetaPred;
//!
//! let pred = MetaPred::eq("cluster", "quartz").and(MetaPred::ge("problem_size", 1024i64));
//! let (tk, report) = Thicket::loader(LoadSource::store("runs.tks"))
//!     .filter(pred)
//!     .load()
//!     .unwrap();
//! # let _ = (tk, report);
//! ```
//!
//! Every deprecated entry point is now a thin wrapper over this
//! builder; the `builder_equiv` integration suite proves each wrapper
//! bit-identical to its builder spelling.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::{Path, PathBuf};
use thicket_dataframe::{PredExpr, Value};
use thicket_perfsim::{
    default_threads, load_dir, FilterPlan, IngestReport, MetaPred, Profile, Strictness, StoreEntry,
};

use crate::thicket::{Thicket, ThicketError, PROFILE_LEVEL};

/// Where a [`Loader`] reads its profiles from.
///
/// Constructed via `From` for in-memory slices (so
/// `Thicket::loader(&profiles)` just works) or the
/// [`LoadSource::ensemble`] / [`LoadSource::store`] path constructors.
pub enum LoadSource<'a> {
    /// Profiles already in memory.
    Profiles(&'a [Profile]),
    /// Profiles the loader takes ownership of. This is the wire-client
    /// plumbing: `ThicketClient::load_matching` hands back owned
    /// profiles with no slice to borrow from, and
    /// `Thicket::loader(profiles)` must work without the caller keeping
    /// a binding alive. Semantically identical to
    /// [`LoadSource::Profiles`].
    Owned(Vec<Profile>),
    /// A loose-JSON ensemble directory
    /// ([`thicket_perfsim::ensemble`]).
    Ensemble(PathBuf),
    /// A sharded, checksummed store directory
    /// ([`thicket_perfsim::store`]).
    Store(PathBuf),
}

impl LoadSource<'_> {
    /// A loose-JSON ensemble directory source.
    pub fn ensemble(dir: impl AsRef<Path>) -> LoadSource<'static> {
        LoadSource::Ensemble(dir.as_ref().to_path_buf())
    }

    /// A sharded store directory source.
    pub fn store(dir: impl AsRef<Path>) -> LoadSource<'static> {
        LoadSource::Store(dir.as_ref().to_path_buf())
    }
}

impl<'a> From<&'a [Profile]> for LoadSource<'a> {
    fn from(profiles: &'a [Profile]) -> Self {
        LoadSource::Profiles(profiles)
    }
}

impl<'a> From<&'a Vec<Profile>> for LoadSource<'a> {
    fn from(profiles: &'a Vec<Profile>) -> Self {
        LoadSource::Profiles(profiles)
    }
}

impl<'a, const N: usize> From<&'a [Profile; N]> for LoadSource<'a> {
    fn from(profiles: &'a [Profile; N]) -> Self {
        LoadSource::Profiles(profiles)
    }
}

impl From<Vec<Profile>> for LoadSource<'static> {
    fn from(profiles: Vec<Profile>) -> Self {
        LoadSource::Owned(profiles)
    }
}

/// The predicate shapes a loader can carry: a typed [`MetaPred`]
/// (pushed down to columnar selection on store sources), a compiled
/// predicate-engine [`PredExpr`] (planned: metadata conjuncts push
/// below the read, performance-frame conjuncts run after composition),
/// or a legacy entry closure (store sources only; forces full metadata
/// materialization).
enum Filter<'a> {
    Pred(MetaPred),
    Expr(PredExpr),
    Entries(Box<dyn FnMut(&StoreEntry) -> bool + 'a>),
}

/// Builder for every thicket ingest path; constructed by
/// [`Thicket::loader`].
pub struct Loader<'a> {
    source: LoadSource<'a>,
    threads: Option<usize>,
    strictness: Strictness,
    filter: Option<Filter<'a>>,
    profile_ids: Option<&'a [Value]>,
    pinned: bool,
}

impl Thicket {
    /// Start building a thicket from `source` (an in-memory profile
    /// slice, [`LoadSource::ensemble`], or [`LoadSource::store`]).
    ///
    /// Defaults: auto worker count, [`Strictness::FailFast`], no
    /// filter, profile ids from [`Profile::profile_hash`].
    pub fn loader<'a>(source: impl Into<LoadSource<'a>>) -> Loader<'a> {
        Loader {
            source: source.into(),
            threads: None,
            strictness: Strictness::FailFast,
            filter: None,
            profile_ids: None,
            pinned: true,
        }
    }
}

impl<'a> Loader<'a> {
    /// Pin the worker count for the load and row-assembly fan-outs.
    /// The result is bit-identical for any `threads ≥ 1`; the default
    /// scales with the input size ([`default_threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Choose fail-fast (default) or lenient ingest. Lenient drops
    /// unhealthy sources with typed diagnostics in the returned
    /// [`IngestReport`]; fail-fast turns the first problem into an
    /// error — for store sources, *any* load diagnostic is fatal.
    pub fn strictness(mut self, strictness: Strictness) -> Self {
        self.strictness = strictness;
        self
    }

    /// Keep only profiles matching a typed [`MetaPred`]. On store
    /// sources the predicate is pushed down to the columnar manifest
    /// index, so non-matching shards are never opened and metadata
    /// keys the predicate doesn't name are never parsed; on profile
    /// and ensemble sources it is evaluated against each profile's
    /// metadata after load.
    pub fn filter(mut self, pred: MetaPred) -> Self {
        self.filter = Some(Filter::Pred(pred));
        self
    }

    /// Keep only profiles matching a compiled predicate-engine
    /// [`PredExpr`] — the same AST that [`MetaPred::to_expr`],
    /// the query dialect's `parse_pred`, and the frame filters
    /// compile into. Unlike [`Loader::filter`] the expression may also
    /// reference performance-frame fields: a planner splits the
    /// top-level conjunction, pushes every conjunct whose fields the
    /// source's metadata can answer *below* the read (columnar
    /// manifest selection on store sources — non-matching shards are
    /// never opened), and applies the remainder after composition with
    /// exists-row semantics over the performance frame (a profile
    /// survives if at least one of its rows satisfies the conjunct;
    /// fields resolve to perf columns, then index levels, then profile
    /// metadata). The split is recorded in [`IngestReport::pushdown`].
    pub fn filter_expr(mut self, expr: PredExpr) -> Self {
        self.filter = Some(Filter::Expr(expr));
        self
    }

    /// Keep only store entries matching a closure (store sources
    /// only). This is the escape hatch behind the deprecated
    /// `from_store_filtered*` shims: unlike [`Loader::filter`] it
    /// materializes every entry's metadata, so prefer a typed
    /// [`MetaPred`] wherever one can express the selection.
    pub fn filter_entries(mut self, pred: impl FnMut(&StoreEntry) -> bool + 'a) -> Self {
        self.filter = Some(Filter::Entries(Box::new(pred)));
        self
    }

    /// Supply study-relevant profile index values (in-memory profile
    /// sources only; must be unique and match the slice length). The
    /// default indices are the deterministic metadata hashes.
    pub fn profile_ids(mut self, ids: &'a [Value]) -> Self {
        self.profile_ids = Some(ids);
        self
    }

    /// Pin store reads (store sources only; default `true`): the load
    /// opens a generation-pinned snapshot — shard handles held open, a
    /// GC lease registered — so a concurrent append, compaction, or
    /// garbage collection can never tear the read. Costs one lease
    /// file write per load; pass `false` to read unpinned (safe when
    /// nothing else writes the store).
    pub fn pinned(mut self, pinned: bool) -> Self {
        self.pinned = pinned;
        self
    }

    /// Run the load: read the source, apply the filter, compose the
    /// thicket. Returns the thicket plus an [`IngestReport`] covering
    /// both the read and the composition; the report is clean for
    /// fail-fast loads that return `Ok`.
    pub fn load(self) -> Result<(Thicket, IngestReport), ThicketError> {
        let Loader {
            source,
            threads,
            strictness,
            filter,
            profile_ids,
            pinned,
        } = self;

        // An owned source is a borrowed source whose backing storage we
        // carry ourselves: normalize it here so every downstream match
        // arm sees exactly one in-memory shape.
        let owned_backing: Vec<Profile>;
        let source = match source {
            LoadSource::Owned(profiles) => {
                owned_backing = profiles;
                LoadSource::Profiles(&owned_backing)
            }
            other => other,
        };

        if profile_ids.is_some() && !matches!(source, LoadSource::Profiles(_)) {
            return Err(ThicketError::Invalid(
                "profile_ids applies only to in-memory profile sources; \
                 ensemble and store loads index by profile hash"
                    .into(),
            ));
        }

        // Planner state: which conjuncts were pushed below the source
        // read (recorded in the report) and which remain to run after
        // composition with exists-row semantics.
        let mut plan: Option<FilterPlan> = None;
        let mut residual: Vec<PredExpr> = Vec::new();

        let (tk, mut report) = match source {
            // Normalized away above; the compiler cannot see that.
            LoadSource::Owned(_) => unreachable!("Owned normalized to Profiles"),
            LoadSource::Profiles(profiles) => {
                use std::borrow::Cow;
                let (kept, kept_ids): (Cow<'_, [Profile]>, Option<Cow<'_, [Value]>>) = match filter
                {
                    None => (Cow::Borrowed(profiles), profile_ids.map(Cow::Borrowed)),
                    Some(Filter::Expr(expr)) => {
                        let keys = profile_meta_keys(profiles.iter());
                        let (pushed, res, p) = plan_conjuncts(&expr, &keys);
                        plan = Some(p);
                        residual = res;
                        if let Some(ids) = profile_ids {
                            if ids.len() != profiles.len() {
                                return Err(ThicketError::Invalid(format!(
                                    "{} profiles but {} profile ids",
                                    profiles.len(),
                                    ids.len()
                                )));
                            }
                            let (kept, kept_ids): (Vec<_>, Vec<_>) = profiles
                                .iter()
                                .zip(ids.iter())
                                .filter(|(p, _)| expr_matches_profile(&pushed, p))
                                .map(|(p, id)| (p.clone(), id.clone()))
                                .unzip();
                            (Cow::Owned(kept), Some(Cow::Owned(kept_ids)))
                        } else {
                            (
                                Cow::Owned(
                                    profiles
                                        .iter()
                                        .filter(|p| expr_matches_profile(&pushed, p))
                                        .cloned()
                                        .collect(),
                                ),
                                None,
                            )
                        }
                    }
                    Some(Filter::Pred(pred)) => {
                        if let Some(ids) = profile_ids {
                            if ids.len() != profiles.len() {
                                return Err(ThicketError::Invalid(format!(
                                    "{} profiles but {} profile ids",
                                    profiles.len(),
                                    ids.len()
                                )));
                            }
                            let (kept, kept_ids): (Vec<_>, Vec<_>) = profiles
                                .iter()
                                .zip(ids.iter())
                                .filter(|(p, _)| pred.matches_profile(p))
                                .map(|(p, id)| (p.clone(), id.clone()))
                                .unzip();
                            (Cow::Owned(kept), Some(Cow::Owned(kept_ids)))
                        } else {
                            (
                                Cow::Owned(
                                    profiles
                                        .iter()
                                        .filter(|p| pred.matches_profile(p))
                                        .cloned()
                                        .collect(),
                                ),
                                None,
                            )
                        }
                    }
                    Some(Filter::Entries(_)) => {
                        return Err(ThicketError::Invalid(
                            "entry closures apply only to store sources; \
                             use `filter` with a `MetaPred`"
                                .into(),
                        ));
                    }
                };
                let ids = match kept_ids {
                    Some(ids) => ids,
                    None => Cow::Owned(hash_ids(&kept)),
                };
                let threads = threads.unwrap_or_else(|| default_threads(kept.len()));
                compose(&kept, &ids, threads, strictness, None)
            }

            LoadSource::Ensemble(dir) => {
                let (loaded, read) = load_dir(&dir, threads, strictness)?;
                let profiles = match filter {
                    Some(Filter::Expr(expr)) => {
                        let keys = profile_meta_keys(loaded.iter());
                        let (pushed, res, p) = plan_conjuncts(&expr, &keys);
                        plan = Some(p);
                        residual = res;
                        loaded
                            .into_iter()
                            .filter(|p| expr_matches_profile(&pushed, p))
                            .collect()
                    }
                    mut other => apply_profile_filter(loaded, &mut other)?,
                };
                let ids = hash_ids(&profiles);
                let threads = threads.unwrap_or_else(|| default_threads(profiles.len()));
                compose(&profiles, &ids, threads, strictness, Some(read))
            }

            LoadSource::Store(dir) => {
                // Deferred-init bindings: both arms produce a
                // `&StoreReader` (the snapshot derefs to one) without
                // boxing; whichever binding is unused is never touched.
                let pinned_snap;
                let opened;
                let reader: &thicket_perfsim::StoreReader = if pinned {
                    pinned_snap = thicket_perfsim::Store::open_pinned(&dir)?;
                    &pinned_snap
                } else {
                    opened = thicket_perfsim::Store::open(&dir)?;
                    &opened
                };
                let threads =
                    threads.unwrap_or_else(|| default_threads(reader.manifest().profiles.len()));
                let (profiles, read) = match filter {
                    None => reader.load_matching_threads(&MetaPred::True, threads)?,
                    Some(Filter::Pred(pred)) => reader.load_matching_threads(&pred, threads)?,
                    Some(Filter::Expr(expr)) => {
                        let (pushed, res, p) = plan_conjuncts(&expr, &reader.meta_keys());
                        plan = Some(p);
                        residual = res;
                        reader.load_matching_expr(&pushed, threads)?
                    }
                    Some(Filter::Entries(pred)) => reader.load_entries_where(pred, threads)?,
                };
                if matches!(strictness, Strictness::FailFast) && !read.is_clean() {
                    return Err(ThicketError::Invalid(format!(
                        "store load failed under fail-fast strictness ({})",
                        read.summary()
                    )));
                }
                if let Strictness::Lenient { max_errors } = strictness {
                    if read.diagnostics.len() > max_errors {
                        return Err(ThicketError::Invalid(format!(
                            "store load exceeded the lenient error budget of {max_errors} ({})",
                            read.summary()
                        )));
                    }
                }
                let ids = hash_ids(&profiles);
                compose(&profiles, &ids, threads, strictness, Some(read))
            }
        }?;

        if plan.is_some() {
            report.pushdown = plan;
        }
        let mut tk = tk;
        for conjunct in &residual {
            tk = residual_filter(&tk, conjunct)?;
        }
        Ok((tk, report))
    }
}

/// Union of metadata keys across profiles: what an in-memory or
/// ensemble source can answer before composition.
fn profile_meta_keys<'p>(profiles: impl Iterator<Item = &'p Profile>) -> BTreeSet<String> {
    profiles
        .flat_map(|p| p.metadata_iter().map(|(k, _)| k.to_string()))
        .collect()
}

/// Scalar engine evaluation of an expression against one profile's
/// metadata (missing key ⇒ false, like every other engine surface).
fn expr_matches_profile(expr: &PredExpr, p: &Profile) -> bool {
    expr.eval_lookup(&mut |k| p.metadata(k).cloned())
}

/// The planner: split `expr`'s top-level conjunction into the part the
/// source can answer from metadata alone (every field of the conjunct
/// is in `keys`) and the residual conjuncts that need the composed
/// performance frame, plus the [`FilterPlan`] describing the split.
fn plan_conjuncts(
    expr: &PredExpr,
    keys: &BTreeSet<String>,
) -> (PredExpr, Vec<PredExpr>, FilterPlan) {
    let mut pushed = Vec::new();
    let mut residual = Vec::new();
    for c in expr.conjuncts() {
        if c.fields().iter().all(|f| keys.contains(*f)) {
            pushed.push(c.clone());
        } else {
            residual.push(c.clone());
        }
    }
    let plan = FilterPlan {
        pushed: pushed.iter().map(|c| c.to_string()).collect(),
        residual: residual.iter().map(|c| c.to_string()).collect(),
    };
    (PredExpr::and(pushed), residual, plan)
}

/// Apply one residual conjunct with exists-row semantics: keep exactly
/// the profiles having at least one perf-data row that satisfies it.
/// Fields resolve to perf columns, then index levels, then profile
/// metadata columns (gathered per row; a null metadata cell is absent).
fn residual_filter(tk: &Thicket, conjunct: &PredExpr) -> Result<Thicket, ThicketError> {
    let perf = tk.perf_data();
    let prof_of_row = perf.index().level_values(PROFILE_LEVEL)?;
    let mut src = perf.bind_source(conjunct);
    let unbound: Vec<&str> = conjunct
        .fields()
        .into_iter()
        .filter(|f| !src.is_bound(f))
        .collect();
    if !unbound.is_empty() {
        let meta = tk.metadata();
        let meta_row: HashMap<&Value, usize> = meta
            .index()
            .keys()
            .iter()
            .enumerate()
            .map(|(i, k)| (&k[0], i))
            .collect();
        let rows: Vec<Option<usize>> = prof_of_row
            .iter()
            .map(|p| meta_row.get(p).copied())
            .collect();
        for field in unbound {
            let Ok(col) = meta.column_named(field) else {
                continue; // unanswerable anywhere: matches no rows
            };
            let mut values = Vec::with_capacity(perf.len());
            let mut present = Vec::with_capacity(perf.len());
            for r in &rows {
                let v = match r {
                    Some(i) => col.get(*i),
                    None => Value::Null,
                };
                present.push(!v.is_null());
                values.push(v);
            }
            src.bind_masked(field, values, present);
        }
    }
    let hits = conjunct.eval(&src);
    let mut seen = HashSet::new();
    let mut keep = Vec::new();
    for i in hits.positions() {
        if seen.insert(prof_of_row[i].clone()) {
            keep.push(prof_of_row[i].clone());
        }
    }
    Ok(tk.filter_profiles(&keep))
}

/// Default profile index values: the deterministic metadata hashes.
fn hash_ids(profiles: &[Profile]) -> Vec<Value> {
    profiles
        .iter()
        .map(|p| Value::Int(p.profile_hash()))
        .collect()
}

/// Evaluate a typed filter against loaded profiles (ensemble sources);
/// entry closures only make sense against a store manifest.
fn apply_profile_filter(
    profiles: Vec<Profile>,
    filter: &mut Option<Filter<'_>>,
) -> Result<Vec<Profile>, ThicketError> {
    match filter {
        None => Ok(profiles),
        Some(Filter::Pred(pred)) => Ok(profiles
            .into_iter()
            .filter(|p| pred.matches_profile(p))
            .collect()),
        Some(Filter::Entries(_)) => Err(ThicketError::Invalid(
            "entry closures apply only to store sources; use `filter` with a `MetaPred`".into(),
        )),
        // Expression filters are planned (and consumed) before reaching
        // this legacy path.
        Some(Filter::Expr(_)) => unreachable!("expression filters are planned at the source"),
    }
}

/// Compose loaded profiles under the requested strictness, absorbing
/// the read-phase report (if any) so `attempted` counts sources and
/// `loaded` counts survivors of both phases.
fn compose(
    profiles: &[Profile],
    ids: &[Value],
    threads: usize,
    strictness: Strictness,
    read: Option<IngestReport>,
) -> Result<(Thicket, IngestReport), ThicketError> {
    let build = match strictness {
        Strictness::FailFast => {
            let tk = Thicket::build_indexed_threads(profiles, ids, threads)?;
            (
                tk,
                IngestReport {
                    attempted: profiles.len(),
                    loaded: profiles.len(),
                    diagnostics: Vec::new(),
                    pushdown: None,
                },
            )
        }
        Strictness::Lenient { .. } => {
            Thicket::build_indexed_lenient_threads(profiles, ids, threads)?
        }
    };
    match read {
        None => Ok(build),
        Some(mut report) => {
            report.absorb(build.1);
            Ok((build.0, report))
        }
    }
}
