//! Pivot the performance data into a wide node×profile matrix for one
//! metric — the natural input shape for heatmaps and clustering over an
//! ensemble.

use crate::thicket::{Thicket, ThicketError, NODE_LEVEL};
use std::collections::HashMap;
use thicket_dataframe::{ColKey, ColumnBuilder, DataFrame, Index, Value};

impl Thicket {
    /// Wide view of one metric: one row per call-tree node (index level
    /// `node`, rendered as arena id), one column per profile (named by
    /// the profile id). Cells missing in a profile are null. Rows follow
    /// the graph's pre-order; columns follow metadata order.
    pub fn pivot_metric(&self, metric: &ColKey) -> Result<DataFrame, ThicketError> {
        let col = self.perf_data().column(metric)?;
        // (node, profile) -> value
        let mut cells: HashMap<(Value, Value), f64> = HashMap::new();
        for (row, key) in self.perf_data().index().keys().iter().enumerate() {
            if let Some(v) = col.get_f64(row) {
                cells.insert((key[0].clone(), key[1].clone()), v);
            }
        }
        let profiles = self.profiles();
        // Keep only nodes with at least one measurement, in pre-order.
        let nodes: Vec<Value> = self
            .graph()
            .preorder()
            .into_iter()
            .map(|id| self.value_of_node(id))
            .filter(|n| profiles.iter().any(|p| cells.contains_key(&(n.clone(), p.clone()))))
            .collect();

        let index = Index::new(
            [NODE_LEVEL],
            nodes.iter().map(|n| vec![n.clone()]).collect(),
        )?;
        let mut out = DataFrame::new(index);
        for p in &profiles {
            let mut b = ColumnBuilder::with_capacity(nodes.len());
            for n in &nodes {
                b.push(
                    cells
                        .get(&(n.clone(), p.clone()))
                        .map(|v| Value::Float(*v))
                        .unwrap_or(Value::Null),
                )?;
            }
            out.insert(ColKey::new(p.display_cell()), b.finish())?;
        }
        Ok(out)
    }

    /// The pivot as a dense row-major matrix with labels: `(node names,
    /// profile labels, values)`; missing cells become NaN.
    #[allow(clippy::type_complexity)]
    pub fn pivot_matrix(
        &self,
        metric: &ColKey,
    ) -> Result<(Vec<String>, Vec<String>, Vec<Vec<f64>>), ThicketError> {
        let wide = self.pivot_metric(metric)?;
        let rows: Vec<String> = wide
            .index()
            .keys()
            .iter()
            .map(|k| self.node_name(&k[0]))
            .collect();
        let cols: Vec<String> = wide
            .column_keys()
            .iter()
            .map(|k| k.name.to_string())
            .collect();
        let values: Vec<Vec<f64>> = (0..wide.len())
            .map(|r| {
                wide.columns()
                    .map(|(_, c)| c.get_f64(r).unwrap_or(f64::NAN))
                    .collect()
            })
            .collect();
        Ok((rows, cols, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_perfsim::{simulate_cpu_run, CpuRunConfig};

    fn sample() -> Thicket {
        let profiles: Vec<_> = (0..3)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        Thicket::loader(&profiles[..])
            .profile_ids(&(0..3i64).map(Value::Int).collect::<Vec<_>>())
            .load()
            .map(|(tk, _)| tk)
            .unwrap()
    }

    #[test]
    fn pivot_shape() {
        let tk = sample();
        let wide = tk.pivot_metric(&ColKey::new("time (exc)")).unwrap();
        assert_eq!(wide.ncols(), 3); // one column per profile
        // 13 kernels carry time (exc); interior nodes only carry inc.
        assert_eq!(wide.len(), 13);
        assert!(tk.pivot_metric(&ColKey::new("nope")).is_err());
    }

    #[test]
    fn pivot_values_match_lookup() {
        let tk = sample();
        let wide = tk.pivot_metric(&ColKey::new("time (exc)")).unwrap();
        let node = tk.find_node("Stream_DOT").unwrap();
        let row = wide
            .index()
            .keys()
            .iter()
            .position(|k| k[0] == tk.value_of_node(node))
            .unwrap();
        for p in 0..3i64 {
            let direct = tk
                .metric_at(node, &Value::Int(p), &ColKey::new("time (exc)"))
                .unwrap();
            let cell = wide
                .column(&ColKey::new(p.to_string()))
                .unwrap()
                .get_f64(row)
                .unwrap();
            assert_eq!(direct, cell);
        }
    }

    #[test]
    fn matrix_labels_and_nan_fill() {
        let tk = sample();
        let (rows, cols, values) = tk.pivot_matrix(&ColKey::new("time (exc)")).unwrap();
        assert_eq!(rows.len(), values.len());
        assert_eq!(cols.len(), 3);
        assert!(rows.contains(&"Apps_VOL3D".to_string()));
        assert!(values.iter().flatten().all(|v| v.is_finite()));
        // The inclusive metric exists only on interior nodes.
        let (rows_inc, _, vals_inc) = tk.pivot_matrix(&ColKey::new("time (inc)")).unwrap();
        assert_eq!(rows_inc.len(), 6);
        assert!(vals_inc.iter().flatten().all(|v| v.is_finite()));
    }
}
