//! Feature standardization (scikit-learn's `StandardScaler`).

/// Per-feature standardizer: `z = (x − mean) / std`.
///
/// Uses the *population* standard deviation (ddof = 0), matching
/// scikit-learn. Zero-variance features pass through centred but
/// unscaled (scikit-learn's behaviour: scale 1).
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    /// Per-feature means.
    pub means: Vec<f64>,
    /// Per-feature scales (population std; 1.0 where variance is zero).
    pub scales: Vec<f64>,
}

impl StandardScaler {
    /// Fit a scaler to row-major samples. Panics on empty input or ragged
    /// rows.
    pub fn fit(samples: &[Vec<f64>]) -> Self {
        assert!(!samples.is_empty(), "StandardScaler::fit on empty input");
        let d = samples[0].len();
        assert!(
            samples.iter().all(|r| r.len() == d),
            "ragged sample matrix"
        );
        let n = samples.len() as f64;
        let mut means = vec![0.0; d];
        for row in samples {
            for (m, v) in means.iter_mut().zip(row.iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut scales = vec![0.0; d];
        for row in samples {
            for ((s, v), m) in scales.iter_mut().zip(row.iter()).zip(means.iter()) {
                let dlt = v - m;
                *s += dlt * dlt;
            }
        }
        for s in &mut scales {
            *s = (*s / n).sqrt();
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        StandardScaler { means, scales }
    }

    /// Transform samples with the fitted parameters.
    pub fn transform(&self, samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
        samples
            .iter()
            .map(|row| {
                row.iter()
                    .zip(self.means.iter().zip(self.scales.iter()))
                    .map(|(v, (m, s))| (v - m) / s)
                    .collect()
            })
            .collect()
    }

    /// Fit and transform in one step.
    pub fn fit_transform(samples: &[Vec<f64>]) -> (Self, Vec<Vec<f64>>) {
        let scaler = Self::fit(samples);
        let out = scaler.transform(samples);
        (scaler, out)
    }

    /// Invert the transformation.
    pub fn inverse_transform(&self, samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
        samples
            .iter()
            .map(|row| {
                row.iter()
                    .zip(self.means.iter().zip(self.scales.iter()))
                    .map(|(z, (m, s))| z * s + m)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ]
    }

    #[test]
    fn standardized_moments() {
        let (_, z) = StandardScaler::fit_transform(&samples());
        for j in 0..2 {
            let col: Vec<f64> = z.iter().map(|r| r[j]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|v| v * v).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip() {
        let s = samples();
        let (scaler, z) = StandardScaler::fit_transform(&s);
        let back = scaler.inverse_transform(&z);
        for (a, b) in s.iter().flatten().zip(back.iter().flatten()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_centred_not_scaled() {
        let s = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let (scaler, z) = StandardScaler::fit_transform(&s);
        assert_eq!(scaler.scales[0], 1.0);
        assert!(z.iter().all(|r| r[0].abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_input_panics() {
        StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
