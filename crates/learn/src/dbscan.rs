//! DBSCAN density-based clustering (Ester et al. 1996; scikit-learn's
//! `DBSCAN`) — useful for performance ensembles where the number of
//! clusters is unknown and outlier runs should be flagged as noise
//! rather than forced into a cluster.

/// Cluster label assigned by DBSCAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbscanLabel {
    /// Member of cluster `n` (0-based).
    Cluster(usize),
    /// Noise point (no dense neighbourhood).
    Noise,
}

impl DbscanLabel {
    /// Cluster index, `None` for noise.
    pub fn cluster(self) -> Option<usize> {
        match self {
            DbscanLabel::Cluster(c) => Some(c),
            DbscanLabel::Noise => None,
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Run DBSCAN with radius `eps` and density threshold `min_pts` (a point
/// is *core* when at least `min_pts` points — itself included — lie
/// within `eps`). Returns one label per sample. Panics on ragged input
/// or non-positive `eps`.
pub fn dbscan(samples: &[Vec<f64>], eps: f64, min_pts: usize) -> Vec<DbscanLabel> {
    assert!(eps > 0.0, "eps must be positive");
    let n = samples.len();
    if n == 0 {
        return Vec::new();
    }
    let d = samples[0].len();
    assert!(samples.iter().all(|s| s.len() == d), "ragged sample matrix");
    let eps2 = eps * eps;
    let neighbours = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| sq_dist(&samples[i], &samples[j]) <= eps2)
            .collect()
    };

    let mut labels = vec![None::<DbscanLabel>; n];
    let mut cluster = 0usize;
    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        let nbrs = neighbours(i);
        if nbrs.len() < min_pts {
            labels[i] = Some(DbscanLabel::Noise);
            continue;
        }
        // Start a new cluster and expand it breadth-first.
        labels[i] = Some(DbscanLabel::Cluster(cluster));
        let mut queue: Vec<usize> = nbrs;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            match labels[j] {
                Some(DbscanLabel::Noise) => {
                    // Border point reached from a core: adopt it.
                    labels[j] = Some(DbscanLabel::Cluster(cluster));
                }
                Some(_) => continue,
                None => {
                    labels[j] = Some(DbscanLabel::Cluster(cluster));
                    let jn = neighbours(j);
                    if jn.len() >= min_pts {
                        queue.extend(jn);
                    }
                }
            }
        }
        cluster += 1;
    }
    labels.into_iter().map(|l| l.expect("all labelled")).collect()
}

/// Number of clusters found (ignoring noise).
pub fn n_clusters(labels: &[DbscanLabel]) -> usize {
    labels
        .iter()
        .filter_map(|l| l.cluster())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0)] {
            for i in 0..6 {
                let d = (i as f64 - 2.5) * 0.1;
                pts.push(vec![cx + d, cy - d]);
            }
        }
        pts.push(vec![50.0, 50.0]); // an outlier
        pts
    }

    #[test]
    fn finds_two_blobs_and_noise() {
        let labels = dbscan(&blobs(), 1.0, 3);
        assert_eq!(n_clusters(&labels), 2);
        assert_eq!(labels[12], DbscanLabel::Noise);
        // All members of each blob share a label.
        assert!(labels[..6].iter().all(|l| *l == labels[0]));
        assert!(labels[6..12].iter().all(|l| *l == labels[6]));
        assert_ne!(labels[0], labels[6]);
    }

    #[test]
    fn everything_noise_when_eps_tiny() {
        let labels = dbscan(&blobs(), 1e-6, 3);
        assert!(labels.iter().all(|l| *l == DbscanLabel::Noise));
        assert_eq!(n_clusters(&labels), 0);
    }

    #[test]
    fn one_cluster_when_eps_huge() {
        let labels = dbscan(&blobs(), 1e3, 3);
        assert_eq!(n_clusters(&labels), 1);
        assert!(labels.iter().all(|l| l.cluster() == Some(0)));
    }

    #[test]
    fn min_pts_gates_core_points() {
        // Two points within eps of each other but below min_pts.
        let pts = vec![vec![0.0], vec![0.1]];
        let labels = dbscan(&pts, 1.0, 3);
        assert!(labels.iter().all(|l| *l == DbscanLabel::Noise));
        let labels2 = dbscan(&pts, 1.0, 2);
        assert_eq!(n_clusters(&labels2), 1);
    }

    #[test]
    fn empty_input() {
        assert!(dbscan(&[], 1.0, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn bad_eps_panics() {
        dbscan(&[vec![0.0]], 0.0, 1);
    }

    #[test]
    fn deterministic() {
        let a = dbscan(&blobs(), 1.0, 3);
        let b = dbscan(&blobs(), 1.0, 3);
        assert_eq!(a, b);
    }
}
