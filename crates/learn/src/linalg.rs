//! Minimal dense linear algebra for PCA: a small row-major matrix type
//! and a cyclic Jacobi eigensolver for symmetric matrices.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row-major nested vectors. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged matrix rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product. Panics on shape mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Largest absolute off-diagonal element (square matrices).
    fn max_off_diagonal(&self) -> (usize, usize, f64) {
        let mut best = (0, 1, 0.0);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if self[(i, j)].abs() > best.2 {
                    best = (i, j, self[(i, j)].abs());
                }
            }
        }
        best
    }

    /// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi
    /// method. Returns `(eigenvalues, eigenvectors)` sorted by descending
    /// eigenvalue; eigenvector `k` is column `k` of the returned matrix,
    /// exposed as `Vec<Vec<f64>>` rows of length `n` per eigenvector.
    pub fn symmetric_eigen(&self) -> (Vec<f64>, Vec<Vec<f64>>) {
        assert_eq!(self.rows, self.cols, "eigen requires a square matrix");
        let n = self.rows;
        if n == 0 {
            return (Vec::new(), Vec::new());
        }
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        // Classical Jacobi: each rotation zeroes the largest off-diagonal
        // element; O(n² log(1/ε)) rotations suffice in practice.
        let max_rotations = 50 * n * n + 100;
        for _rotation in 0..max_rotations {
            let (p, q, off) = a.max_off_diagonal();
            if off < 1e-12 {
                break;
            }
            // Jacobi rotation zeroing a[p][q].
            let app = a[(p, p)];
            let aqq = a[(q, q)];
            let apq = a[(p, q)];
            let theta = (aqq - app) / (2.0 * apq);
            let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
            let c = 1.0 / (t * t + 1.0).sqrt();
            let s = t * c;
            for k in 0..n {
                let akp = a[(k, p)];
                let akq = a[(k, q)];
                a[(k, p)] = c * akp - s * akq;
                a[(k, q)] = s * akp + c * akq;
            }
            for k in 0..n {
                let apk = a[(p, k)];
                let aqk = a[(q, k)];
                a[(p, k)] = c * apk - s * aqk;
                a[(q, k)] = s * apk + c * aqk;
            }
            for k in 0..n {
                let vkp = v[(k, p)];
                let vkq = v[(k, q)];
                v[(k, p)] = c * vkp - s * vkq;
                v[(k, q)] = s * vkp + c * vkq;
            }
        }
        let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
            .map(|j| (a[(j, j)], (0..n).map(|i| v[(i, j)]).collect()))
            .collect();
        pairs.sort_by(|x, y| y.0.total_cmp(&x.0));
        let vals = pairs.iter().map(|(l, _)| *l).collect();
        let vecs = pairs.into_iter().map(|(_, v)| v).collect();
        (vals, vecs)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let t = m.transpose();
        assert_eq!(t[(1, 0)], 2.0);
        let p = m.matmul(&Matrix::identity(2));
        assert_eq!(p, m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn eigen_of_diagonal() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        let (vals, vecs) = m.symmetric_eigen();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        assert!((vecs[0][0].abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_known_symmetric() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors
        // (1,1)/√2 and (1,−1)/√2.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (vals, vecs) = m.symmetric_eigen();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        let v0 = &vecs[0];
        assert!((v0[0].abs() - 1.0 / 2f64.sqrt()).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]);
        let (vals, vecs) = m.symmetric_eigen();
        // A == Σ λ_k v_k v_kᵀ
        let n = 3;
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += vals[k] * vecs[k][i] * vecs[k][j];
                }
                assert!((acc - m[(i, j)]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 4.0, 0.5],
            vec![1.0, 0.5, 3.0],
        ]);
        let (_, vecs) = m.symmetric_eigen();
        for a in 0..3 {
            for b in 0..3 {
                let dot: f64 = vecs[a].iter().zip(vecs[b].iter()).map(|(x, y)| x * y).sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn empty_eigen() {
        let (vals, vecs) = Matrix::zeros(0, 0).symmetric_eigen();
        assert!(vals.is_empty());
        assert!(vecs.is_empty());
    }
}
