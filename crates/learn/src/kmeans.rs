//! Lloyd's K-means with k-means++ initialization (scikit-learn's
//! `KMeans`), used by the Figure 10 clustering study.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-means configuration.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Independent restarts; best inertia wins (scikit default: 10).
    pub n_init: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iter: usize,
    /// Convergence threshold on centroid movement (squared distance).
    pub tol: f64,
    /// RNG seed for reproducible clustering.
    pub seed: u64,
}

impl KMeansConfig {
    /// Config with `k` clusters and scikit-learn-like defaults.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            n_init: 10,
            max_iter: 300,
            tol: 1e-8,
            seed: 0,
        }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fitted K-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster label of each input sample.
    pub labels: Vec<usize>,
    /// Sum of squared distances of samples to their centroid.
    pub inertia: f64,
    /// Lloyd iterations used by the winning restart.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(point, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, then proportional to the
/// squared distance from the nearest chosen centroid.
fn kmeanspp_init(samples: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(samples[rng.gen_range(0..samples.len())].clone());
    let mut d2: Vec<f64> = samples
        .iter()
        .map(|s| sq_dist(s, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick any.
            rng.gen_range(0..samples.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        centroids.push(samples[next].clone());
        for (dist, s) in d2.iter_mut().zip(samples.iter()) {
            let nd = sq_dist(s, centroids.last().expect("just pushed"));
            if nd < *dist {
                *dist = nd;
            }
        }
    }
    centroids
}

/// Run K-means. Panics on empty input, ragged rows, `k == 0`, or
/// `k > n_samples`.
pub fn kmeans(samples: &[Vec<f64>], config: &KMeansConfig) -> KMeans {
    assert!(!samples.is_empty(), "kmeans on empty input");
    let d = samples[0].len();
    assert!(samples.iter().all(|r| r.len() == d), "ragged sample matrix");
    assert!(config.k > 0, "k must be positive");
    assert!(
        config.k <= samples.len(),
        "k = {} exceeds sample count {}",
        config.k,
        samples.len()
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best: Option<KMeans> = None;

    for _ in 0..config.n_init.max(1) {
        let mut centroids = kmeanspp_init(samples, config.k, &mut rng);
        let mut labels = vec![0usize; samples.len()];
        let mut iterations = 0;
        for it in 0..config.max_iter {
            iterations = it + 1;
            // Assignment step.
            for (l, s) in labels.iter_mut().zip(samples.iter()) {
                *l = nearest(s, &centroids).0;
            }
            // Update step.
            let mut sums = vec![vec![0.0; d]; config.k];
            let mut counts = vec![0usize; config.k];
            for (l, s) in labels.iter().zip(samples.iter()) {
                counts[*l] += 1;
                for (acc, v) in sums[*l].iter_mut().zip(s.iter()) {
                    *acc += v;
                }
            }
            let mut moved = 0.0;
            for (c, (sum, count)) in centroids
                .iter_mut()
                .zip(sums.into_iter().zip(counts))
            {
                if count == 0 {
                    // Empty cluster: re-seed at the farthest sample.
                    let far = samples
                        .iter()
                        .max_by(|a, b| {
                            nearest(a, std::slice::from_ref(c))
                                .1
                                .total_cmp(&nearest(b, std::slice::from_ref(c)).1)
                        })
                        .expect("non-empty samples");
                    moved += sq_dist(c, far);
                    *c = far.clone();
                    continue;
                }
                let new: Vec<f64> = sum.iter().map(|v| v / count as f64).collect();
                moved += sq_dist(c, &new);
                *c = new;
            }
            if moved <= config.tol {
                break;
            }
        }
        // Final assignment + inertia.
        let mut inertia = 0.0;
        for (l, s) in labels.iter_mut().zip(samples.iter()) {
            let (c, dist) = nearest(s, &centroids);
            *l = c;
            inertia += dist;
        }
        let candidate = KMeans {
            centroids,
            labels,
            inertia,
            iterations,
        };
        if best.as_ref().is_none_or(|b| candidate.inertia < b.inertia) {
            best = Some(candidate);
        }
    }
    best.expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs, 5 points each.
    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut pts = Vec::new();
        let mut truth = Vec::new();
        for (ci, (cx, cy)) in centers.iter().enumerate() {
            for i in 0..5 {
                let dx = (i as f64 - 2.0) * 0.1;
                pts.push(vec![cx + dx, cy - dx]);
                truth.push(ci);
            }
        }
        (pts, truth)
    }

    /// Labels may be permuted; compare partitions.
    fn same_partition(a: &[usize], b: &[usize]) -> bool {
        let n = a.len();
        (0..n).all(|i| (0..n).all(|j| (a[i] == a[j]) == (b[i] == b[j])))
    }

    #[test]
    fn recovers_separated_blobs() {
        let (pts, truth) = blobs();
        let km = kmeans(&pts, &KMeansConfig::new(3).with_seed(42));
        assert!(same_partition(&km.labels, &truth));
        assert!(km.inertia < 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (pts, _) = blobs();
        let a = kmeans(&pts, &KMeansConfig::new(3).with_seed(7));
        let b = kmeans(&pts, &KMeansConfig::new(3).with_seed(7));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn centroids_are_cluster_means() {
        let (pts, _) = blobs();
        let km = kmeans(&pts, &KMeansConfig::new(3).with_seed(1));
        for (c, centroid) in km.centroids.iter().enumerate() {
            let members: Vec<&Vec<f64>> = pts
                .iter()
                .zip(km.labels.iter())
                .filter(|(_, l)| **l == c)
                .map(|(p, _)| p)
                .collect();
            assert!(!members.is_empty());
            for j in 0..2 {
                let mean = members.iter().map(|p| p[j]).sum::<f64>() / members.len() as f64;
                assert!((centroid[j] - mean).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let km = kmeans(&pts, &KMeansConfig::new(3).with_seed(3));
        assert!(km.inertia < 1e-12);
        let mut ls = km.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), 3);
    }

    #[test]
    fn k_one_single_cluster() {
        let (pts, _) = blobs();
        let km = kmeans(&pts, &KMeansConfig::new(1).with_seed(5));
        assert!(km.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![vec![1.0, 1.0]; 6];
        let km = kmeans(&pts, &KMeansConfig::new(2).with_seed(9));
        assert_eq!(km.labels.len(), 6);
        assert!(km.inertia < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds sample count")]
    fn k_larger_than_n_panics() {
        kmeans(&[vec![1.0]], &KMeansConfig::new(2));
    }
}
