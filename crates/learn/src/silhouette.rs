//! Silhouette analysis (Rousseeuw 1987), used by the paper to pick the
//! number of K-means clusters for Figure 10.

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Per-sample silhouette coefficients `s(i) = (b − a) / max(a, b)` where
/// `a` is the mean intra-cluster distance and `b` the mean distance to the
/// nearest other cluster. Samples in singleton clusters get 0 (scikit
/// convention). Returns `None` when there are fewer than 2 clusters or
/// labels/samples mismatch.
pub fn silhouette_samples(samples: &[Vec<f64>], labels: &[usize]) -> Option<Vec<f64>> {
    if samples.len() != labels.len() || samples.is_empty() {
        return None;
    }
    let k = labels.iter().copied().max()? + 1;
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    if counts.iter().filter(|c| **c > 0).count() < 2 {
        return None;
    }
    let n = samples.len();
    let mut out = vec![0.0; n];
    for i in 0..n {
        if counts[labels[i]] <= 1 {
            out[i] = 0.0;
            continue;
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += dist(&samples[i], &samples[j]);
            }
        }
        let a = sums[labels[i]] / (counts[labels[i]] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != labels[i] && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        out[i] = if denom > 0.0 { (b - a) / denom } else { 0.0 };
    }
    Some(out)
}

/// Mean silhouette coefficient over all samples.
pub fn silhouette_score(samples: &[Vec<f64>], labels: &[usize]) -> Option<f64> {
    let s = silhouette_samples(samples, labels)?;
    Some(s.iter().sum::<f64>() / s.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};

    fn blobs() -> Vec<Vec<f64>> {
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut pts = Vec::new();
        for (cx, cy) in centers {
            for i in 0..5 {
                let dx = (i as f64 - 2.0) * 0.1;
                pts.push(vec![cx + dx, cy - dx]);
            }
        }
        pts
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let pts = blobs();
        let labels: Vec<usize> = (0..15).map(|i| i / 5).collect();
        let score = silhouette_score(&pts, &labels).unwrap();
        assert!(score > 0.95, "score = {score}");
    }

    #[test]
    fn wrong_labels_score_lower() {
        let pts = blobs();
        let good: Vec<usize> = (0..15).map(|i| i / 5).collect();
        let bad: Vec<usize> = (0..15).map(|i| i % 3).collect();
        assert!(
            silhouette_score(&pts, &good).unwrap() > silhouette_score(&pts, &bad).unwrap()
        );
    }

    #[test]
    fn silhouette_selects_true_k() {
        // The paper's workflow: scan k, keep the best silhouette.
        let pts = blobs();
        let mut best = (0usize, f64::MIN);
        for k in 2..=5 {
            let km = kmeans(&pts, &KMeansConfig::new(k).with_seed(11));
            let s = silhouette_score(&pts, &km.labels).unwrap();
            if s > best.1 {
                best = (k, s);
            }
        }
        assert_eq!(best.0, 3);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(silhouette_score(&[], &[]).is_none());
        assert!(silhouette_score(&[vec![1.0]], &[0]).is_none()); // one cluster
        assert!(silhouette_score(&[vec![1.0], vec![2.0]], &[0]).is_none()); // mismatch
    }

    #[test]
    fn singleton_cluster_zero() {
        let pts = vec![vec![0.0], vec![0.1], vec![10.0]];
        let labels = vec![0, 0, 1];
        let s = silhouette_samples(&pts, &labels).unwrap();
        assert_eq!(s[2], 0.0);
        assert!(s[0] > 0.9);
    }

    #[test]
    fn coefficients_bounded() {
        let pts = blobs();
        let labels: Vec<usize> = (0..15).map(|i| i % 3).collect();
        for s in silhouette_samples(&pts, &labels).unwrap() {
            assert!((-1.0..=1.0).contains(&s));
        }
    }
}
