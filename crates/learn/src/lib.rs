//! # thicket-learn
//!
//! The scikit-learn stand-in for the Thicket reproduction (paper §4.2.2):
//! feature scaling, K-means clustering with k-means++ initialization,
//! silhouette analysis for choosing `k`, and PCA via a Jacobi
//! eigensolver. Everything operates on row-major sample matrices
//! (`&[Vec<f64>]`), which is how the thicket hands its performance data to
//! "external" data-science routines.

#![warn(missing_docs)]

mod dbscan;
mod kmeans;
mod linalg;
mod pca;
mod scale;
mod silhouette;

pub use dbscan::{dbscan, n_clusters, DbscanLabel};
pub use kmeans::{kmeans, KMeans, KMeansConfig};
pub use linalg::Matrix;
pub use pca::{pca, Pca};
pub use scale::StandardScaler;
pub use silhouette::{silhouette_samples, silhouette_score};
