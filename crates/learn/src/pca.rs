//! Principal component analysis via the covariance matrix and the Jacobi
//! eigensolver (scikit-learn's `PCA` for the small feature counts the
//! paper's studies use).

use crate::linalg::Matrix;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature means subtracted before projection.
    pub means: Vec<f64>,
    /// Principal axes, one row per component (descending variance).
    pub components: Vec<Vec<f64>>,
    /// Variance explained by each component.
    pub explained_variance: Vec<f64>,
    /// Fraction of total variance explained by each component.
    pub explained_variance_ratio: Vec<f64>,
}

impl Pca {
    /// Project samples onto the principal axes.
    pub fn transform(&self, samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
        samples
            .iter()
            .map(|row| {
                self.components
                    .iter()
                    .map(|axis| {
                        axis.iter()
                            .zip(row.iter().zip(self.means.iter()))
                            .map(|(a, (v, m))| a * (v - m))
                            .sum()
                    })
                    .collect()
            })
            .collect()
    }
}

/// Fit PCA with `n_components` components (clamped to the feature count).
/// Panics on empty or ragged input or fewer than two samples.
pub fn pca(samples: &[Vec<f64>], n_components: usize) -> Pca {
    assert!(samples.len() >= 2, "pca needs at least two samples");
    let d = samples[0].len();
    assert!(samples.iter().all(|r| r.len() == d), "ragged sample matrix");
    let n = samples.len() as f64;
    let mut means = vec![0.0; d];
    for row in samples {
        for (m, v) in means.iter_mut().zip(row.iter()) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    // Sample covariance (n−1 denominator, matching scikit-learn).
    let mut cov = Matrix::zeros(d, d);
    for row in samples {
        for i in 0..d {
            let di = row[i] - means[i];
            for j in i..d {
                let dj = row[j] - means[j];
                cov[(i, j)] += di * dj;
            }
        }
    }
    for i in 0..d {
        for j in i..d {
            let v = cov[(i, j)] / (n - 1.0);
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    let (vals, vecs) = cov.symmetric_eigen();
    let total: f64 = vals.iter().map(|v| v.max(0.0)).sum();
    let k = n_components.min(d);
    let explained_variance: Vec<f64> = vals[..k].iter().map(|v| v.max(0.0)).collect();
    let explained_variance_ratio = explained_variance
        .iter()
        .map(|v| if total > 0.0 { v / total } else { 0.0 })
        .collect();
    Pca {
        means,
        components: vecs[..k].to_vec(),
        explained_variance,
        explained_variance_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points along the line y = 2x with small orthogonal jitter.
    fn line_data() -> Vec<Vec<f64>> {
        (0..20)
            .map(|i| {
                let t = i as f64 * 0.5;
                let jitter = if i % 2 == 0 { 0.05 } else { -0.05 };
                // Orthogonal direction to (1,2)/√5 is (-2,1)/√5.
                vec![t - 2.0 * jitter, 2.0 * t + jitter]
            })
            .collect()
    }

    #[test]
    fn first_component_follows_the_line() {
        let p = pca(&line_data(), 2);
        let c = &p.components[0];
        // Direction ∝ (1, 2)/√5 (sign-free).
        let norm = (c[0] * c[0] + c[1] * c[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        let ratio = (c[1] / c[0]).abs();
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
        assert!(p.explained_variance_ratio[0] > 0.99);
    }

    #[test]
    fn ratios_sum_to_one() {
        let p = pca(&line_data(), 2);
        let sum: f64 = p.explained_variance_ratio.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(p.explained_variance[0] >= p.explained_variance[1]);
    }

    #[test]
    fn transform_decorrelates() {
        let p = pca(&line_data(), 2);
        let z = p.transform(&line_data());
        let x: Vec<f64> = z.iter().map(|r| r[0]).collect();
        let y: Vec<f64> = z.iter().map(|r| r[1]).collect();
        let mx = x.iter().sum::<f64>() / x.len() as f64;
        let my = y.iter().sum::<f64>() / y.len() as f64;
        let cov: f64 = x
            .iter()
            .zip(y.iter())
            .map(|(a, b)| (a - mx) * (b - my))
            .sum::<f64>()
            / (x.len() - 1) as f64;
        assert!(cov.abs() < 1e-6);
    }

    #[test]
    fn component_clamping() {
        let p = pca(&line_data(), 10);
        assert_eq!(p.components.len(), 2);
    }

    #[test]
    fn projection_variance_matches_eigenvalue() {
        let p = pca(&line_data(), 1);
        let z = p.transform(&line_data());
        let x: Vec<f64> = z.iter().map(|r| r[0]).collect();
        let mx = x.iter().sum::<f64>() / x.len() as f64;
        let var: f64 =
            x.iter().map(|v| (v - mx) * (v - mx)).sum::<f64>() / (x.len() - 1) as f64;
        assert!((var - p.explained_variance[0]).abs() / var < 1e-6);
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn single_sample_panics() {
        pca(&[vec![1.0, 2.0]], 1);
    }
}
