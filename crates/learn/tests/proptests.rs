//! Property tests for the learn crate.

use proptest::prelude::*;
use thicket_learn::{kmeans, pca, silhouette_samples, KMeansConfig, StandardScaler};

fn samples() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..5).prop_flat_map(|d| {
        proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, d..=d),
            4..30,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// StandardScaler round-trips through inverse_transform.
    #[test]
    fn scaler_roundtrip(s in samples()) {
        let (scaler, z) = StandardScaler::fit_transform(&s);
        let back = scaler.inverse_transform(&z);
        for (a, b) in s.iter().flatten().zip(back.iter().flatten()) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// Scaled features have mean ~0 and population variance ~1 (unless the
    /// feature was constant).
    #[test]
    fn scaler_moments(s in samples()) {
        let (scaler, z) = StandardScaler::fit_transform(&s);
        let d = s[0].len();
        let n = s.len() as f64;
        for j in 0..d {
            let col: Vec<f64> = z.iter().map(|r| r[j]).collect();
            let mean = col.iter().sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-7);
            let was_constant = s.iter().all(|r| r[j] == s[0][j]);
            if !was_constant && scaler.scales[j] > 1e-9 {
                let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
                prop_assert!((var - 1.0).abs() < 1e-6);
            }
        }
    }

    /// K-means invariants: every sample gets the *nearest* centroid, and
    /// inertia equals the sum of those distances.
    #[test]
    fn kmeans_assignment_optimal(s in samples(), k in 1usize..4, seed in any::<u64>()) {
        prop_assume!(k <= s.len());
        let km = kmeans(&s, &KMeansConfig::new(k).with_seed(seed));
        let mut inertia = 0.0;
        for (row, &label) in s.iter().zip(km.labels.iter()) {
            let dists: Vec<f64> = km.centroids.iter()
                .map(|c| row.iter().zip(c.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>())
                .collect();
            let best = dists.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(dists[label] <= best + 1e-9);
            inertia += dists[label];
        }
        prop_assert!((inertia - km.inertia).abs() < 1e-6 * (1.0 + inertia));
    }

    /// More clusters never increase the best-found inertia by much
    /// (k+1 clusters can always reproduce k's solution plus one split).
    #[test]
    fn kmeans_inertia_monotone_in_k(s in samples(), seed in any::<u64>()) {
        prop_assume!(s.len() >= 4);
        let k1 = kmeans(&s, &KMeansConfig::new(1).with_seed(seed));
        let k3 = kmeans(&s, &KMeansConfig::new(3).with_seed(seed));
        prop_assert!(k3.inertia <= k1.inertia + 1e-6);
    }

    /// Silhouette coefficients stay within [-1, 1].
    #[test]
    fn silhouette_bounded(s in samples(), seed in any::<u64>()) {
        prop_assume!(s.len() >= 4);
        let km = kmeans(&s, &KMeansConfig::new(2).with_seed(seed));
        if let Some(coeffs) = silhouette_samples(&s, &km.labels) {
            for c in coeffs {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
            }
        }
    }

    /// PCA explained-variance ratios are non-negative, descending, and sum
    /// to ≤ 1.
    #[test]
    fn pca_ratio_invariants(s in samples()) {
        let d = s[0].len();
        let p = pca(&s, d);
        let mut prev = f64::INFINITY;
        let mut total = 0.0;
        for &r in &p.explained_variance_ratio {
            prop_assert!(r >= -1e-12);
            prop_assert!(r <= prev + 1e-12);
            prev = r;
            total += r;
        }
        prop_assert!(total <= 1.0 + 1e-9);
    }

    /// PCA components are orthonormal.
    #[test]
    fn pca_components_orthonormal(s in samples()) {
        let d = s[0].len();
        let p = pca(&s, d);
        for a in 0..p.components.len() {
            for b in 0..p.components.len() {
                let dot: f64 = p.components[a].iter().zip(p.components[b].iter())
                    .map(|(x, y)| x * y).sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                prop_assert!((dot - expect).abs() < 1e-6);
            }
        }
    }
}
