//! Property-based tests for dataframe invariants.

use proptest::prelude::*;
use thicket_dataframe::{
    join, join_many, join_many_pairwise, merge_fragments, AggFn, BoundSource, ColKey, Column,
    ColumnFragments, DataFrame, FrameBuilder, GroupBy, Index, JoinHow, PredExpr, PredOp, StrMatch,
    Value,
};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(|s| Value::from(s.as_str())),
    ]
}

fn float_frame(keys: Vec<i64>, vals: Vec<f64>) -> DataFrame {
    let mut df = DataFrame::new(Index::single("k", keys));
    df.insert("x", Column::from_f64(vals)).unwrap();
    df
}

proptest! {
    /// Value ordering is a total order: antisymmetric and transitive over
    /// random triples.
    #[test]
    fn value_total_order(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Equal values hash equally (required for grouping keys).
    #[test]
    fn value_hash_consistent_with_eq(a in value_strategy(), b in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| { let mut s = DefaultHasher::new(); v.hash(&mut s); s.finish() };
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// Column round-trips dynamic values through typed storage.
    #[test]
    fn column_roundtrip(vals in proptest::collection::vec(
        prop_oneof![Just(Value::Null), (-100i64..100).prop_map(Value::Int)], 0..40)) {
        let col = Column::from_values(vals.clone()).unwrap();
        let back: Vec<Value> = col.iter().collect();
        prop_assert_eq!(back, vals);
    }

    /// filter + take preserve row content and order.
    #[test]
    fn filter_preserves_rows(vals in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let keys: Vec<i64> = (0..vals.len() as i64).collect();
        let df = float_frame(keys, vals.clone());
        let pos = df.filter(|r| r.f64("x").unwrap() >= 0.0);
        let expected: Vec<f64> = vals.iter().copied().filter(|v| *v >= 0.0).collect();
        prop_assert_eq!(pos.column(&ColKey::new("x")).unwrap().numeric_values(), expected);
    }

    /// Sorting by a column yields monotone values and preserves multiset.
    #[test]
    fn sort_is_permutation_and_monotone(vals in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let keys: Vec<i64> = (0..vals.len() as i64).collect();
        let df = float_frame(keys, vals.clone());
        let sorted = df.sort_by(&ColKey::new("x"), true).unwrap();
        let got = sorted.column(&ColKey::new("x")).unwrap().numeric_values();
        let mut expected = vals.clone();
        expected.sort_by(f64::total_cmp);
        prop_assert_eq!(got, expected);
    }

    /// Group sizes partition the frame and the group mean matches a naive
    /// computation.
    #[test]
    fn groupby_partitions(pairs in proptest::collection::vec((0i64..5, -100.0f64..100.0), 1..60)) {
        let keys: Vec<i64> = pairs.iter().map(|(k, _)| *k).collect();
        let vals: Vec<f64> = pairs.iter().map(|(_, v)| *v).collect();
        let df = float_frame(keys.clone(), vals.clone());
        let g = GroupBy::by_levels(&df, &["k"]).unwrap();
        let total: usize = g.group_rows().iter().map(Vec::len).sum();
        prop_assert_eq!(total, df.len());
        let agg = g.agg(AggFn::Mean).unwrap();
        for (i, gk) in g.keys().iter().enumerate() {
            let k = gk[0].as_i64().unwrap();
            let members: Vec<f64> = pairs.iter().filter(|(kk, _)| *kk == k).map(|(_, v)| *v).collect();
            let naive = members.iter().sum::<f64>() / members.len() as f64;
            let got = agg.column(&ColKey::new("x_mean")).unwrap().get_f64(i).unwrap();
            prop_assert!((got - naive).abs() < 1e-9);
        }
    }

    /// Inner join keeps exactly the key intersection, in left order.
    #[test]
    fn inner_join_is_intersection(
        lk in proptest::collection::hash_set(0i64..30, 1..20),
        rk in proptest::collection::hash_set(0i64..30, 1..20),
    ) {
        let mut lk: Vec<i64> = lk.into_iter().collect();
        let mut rk: Vec<i64> = rk.into_iter().collect();
        lk.sort_unstable();
        rk.sort_unstable();
        let lvals: Vec<f64> = lk.iter().map(|k| *k as f64).collect();
        let rvals: Vec<f64> = rk.iter().map(|k| *k as f64 * 10.0).collect();
        let a = float_frame(lk.clone(), lvals);
        let mut b = DataFrame::new(Index::single("k", rk.clone()));
        b.insert("y", Column::from_f64(rvals)).unwrap();
        let j = join(&a, &b, JoinHow::Inner).unwrap();
        let expected: Vec<i64> = lk.iter().copied().filter(|k| rk.contains(k)).collect();
        let got: Vec<i64> = j.index().keys().iter().map(|k| k[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got, expected);
        // Joined cells align: y == 10 * x on every row.
        for r in 0..j.len() {
            let x = j.column(&ColKey::new("x")).unwrap().get_f64(r).unwrap();
            let y = j.column(&ColKey::new("y")).unwrap().get_f64(r).unwrap();
            prop_assert!((y - 10.0 * x).abs() < 1e-9);
        }
    }

    /// Outer join covers the key union with nulls exactly where a side is
    /// missing.
    #[test]
    fn outer_join_is_union(
        lk in proptest::collection::hash_set(0i64..20, 1..12),
        rk in proptest::collection::hash_set(0i64..20, 1..12),
    ) {
        let lk: Vec<i64> = lk.into_iter().collect();
        let rk: Vec<i64> = rk.into_iter().collect();
        let a = float_frame(lk.clone(), lk.iter().map(|k| *k as f64).collect());
        let mut b = DataFrame::new(Index::single("k", rk.clone()));
        b.insert("y", Column::from_f64(rk.iter().map(|k| *k as f64).collect())).unwrap();
        let j = join(&a, &b, JoinHow::Outer).unwrap();
        let union: std::collections::HashSet<i64> = lk.iter().chain(rk.iter()).copied().collect();
        prop_assert_eq!(j.len(), union.len());
        for r in 0..j.len() {
            let key = j.index().key(r)[0].as_i64().unwrap();
            prop_assert_eq!(j.column(&ColKey::new("x")).unwrap().is_null_at(r), !lk.contains(&key));
            prop_assert_eq!(j.column(&ColKey::new("y")).unwrap().is_null_at(r), !rk.contains(&key));
        }
    }

    /// The single-pass k-way join agrees with the pairwise-chain baseline
    /// on random frames for every join strategy — key set, key order, and
    /// every cell (including the null fill pattern).
    #[test]
    fn kway_join_matches_pairwise(
        ka in proptest::collection::hash_set(0i64..25, 1..15),
        kb in proptest::collection::hash_set(0i64..25, 1..15),
        kc in proptest::collection::hash_set(0i64..25, 1..15),
    ) {
        let build = |col: &str, keys: &std::collections::HashSet<i64>, scale: f64| {
            let keys: Vec<i64> = {
                let mut k: Vec<i64> = keys.iter().copied().collect();
                k.sort_unstable();
                k
            };
            let vals: Vec<f64> = keys.iter().map(|k| *k as f64 * scale).collect();
            let mut df = DataFrame::new(Index::single("k", keys));
            df.insert(col, Column::from_f64(vals)).unwrap();
            df
        };
        let a = build("x", &ka, 1.0);
        let b = build("y", &kb, 10.0);
        let c = build("z", &kc, 100.0);
        for how in [JoinHow::Inner, JoinHow::Left, JoinHow::Outer] {
            let kway = join_many(&[&a, &b, &c], how);
            let pairwise = join_many_pairwise(&[&a, &b, &c], how);
            match (kway, pairwise) {
                (Ok(kw), Ok(pw)) => prop_assert_eq!(kw, pw, "mismatch under {:?}", how),
                (kw, pw) => prop_assert!(false, "join failed: {:?} vs {:?}", kw.err(), pw.err()),
            }
        }
    }

    /// The column-chunked merge is byte-identical to a serial
    /// [`FrameBuilder`] over the same rows for any chunking — the worker
    /// batch boundaries must be invisible in the result (dtype
    /// promotion, null backfill, and column order included).
    #[test]
    fn fragments_merge_matches_frame_builder(
        rows in proptest::collection::vec(
            (
                0i64..1000,
                // Negative / empty draws mean "cell absent", so every
                // column has random coverage holes to null-backfill.
                -100i64..100,
                -1e3f64..1e3,
                "[a-z]{0,4}",
            ),
            1..40,
        ),
        chunk in 1usize..10,
    ) {
        let cells = |r: &(i64, i64, f64, String)| {
            let mut out = Vec::new();
            if r.1 >= 0 { out.push((ColKey::new("a"), Value::Int(r.1))); }
            if r.2 >= 0.0 { out.push((ColKey::new("b"), Value::Float(r.2))); }
            if !r.3.is_empty() { out.push((ColKey::new("c"), Value::from(r.3.as_str()))); }
            out
        };
        let mut fb = FrameBuilder::new(["k"]);
        for r in &rows {
            fb.push_row(vec![Value::Int(r.0)], cells(r)).unwrap();
        }
        let serial = fb.finish().unwrap();

        let frags: Vec<ColumnFragments> = rows
            .chunks(chunk)
            .map(|ch| {
                ColumnFragments::from_rows(
                    ["k"],
                    ch.iter().map(|r| (vec![Value::Int(r.0)], cells(r))),
                )
                .unwrap()
            })
            .collect();
        let merged = merge_fragments(&frags).unwrap();
        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.column_keys(), serial.column_keys());
    }

    /// Interned column keys are fully interchangeable with keys built
    /// around fresh, uninterned strings: the frames compare equal and
    /// resolve the same lookups.
    #[test]
    fn interned_frames_equal_fresh_strings(
        names in proptest::collection::hash_set("[a-z]{1,6}", 1..8),
        n in 1usize..20,
    ) {
        let names: Vec<String> = {
            let mut v: Vec<String> = names.into_iter().collect();
            v.sort();
            v
        };
        let keys: Vec<i64> = (0..n as i64).collect();
        let mut interned = DataFrame::new(Index::single("k", keys.clone()));
        let mut fresh = DataFrame::new(Index::single("k", keys));
        for (i, name) in names.iter().enumerate() {
            let vals: Vec<f64> = (0..n).map(|r| (r + i) as f64).collect();
            interned
                .insert(ColKey::new(name.as_str()), Column::from_f64(vals.clone()))
                .unwrap();
            // Bypass the interner: a key around a foreign arc.
            let foreign = ColKey {
                group: None,
                name: std::sync::Arc::from(name.as_str()),
            };
            fresh.insert(foreign, Column::from_f64(vals)).unwrap();
        }
        prop_assert_eq!(&interned, &fresh);
        for name in &names {
            prop_assert!(fresh.has_column(&ColKey::new(name.as_str())));
            prop_assert_eq!(
                interned.column_named(name).unwrap(),
                fresh.column_named(name).unwrap()
            );
        }
    }

    /// CSV export emits one line per row plus a header.
    #[test]
    fn csv_line_count(vals in proptest::collection::vec(-10.0f64..10.0, 0..30)) {
        let keys: Vec<i64> = (0..vals.len() as i64).collect();
        let df = float_frame(keys, vals);
        let csv = thicket_dataframe::to_csv(&df);
        prop_assert_eq!(csv.lines().count(), df.len() + 1);
    }
}

proptest! {
    /// CSV export/import round-trips numeric frames (values and index).
    #[test]
    fn csv_roundtrip(rows in proptest::collection::vec((-1e6f64..1e6, -1000i64..1000), 1..40)) {
        let keys: Vec<i64> = (0..rows.len() as i64).collect();
        let mut df = DataFrame::new(Index::single("k", keys));
        // Round to avoid display-precision loss; the CSV writer prints 6
        // significant decimals.
        df.insert("x", Column::from_f64(rows.iter().map(|(f, _)| (f * 1e3).round() / 1e3).collect())).unwrap();
        df.insert("i", Column::from_i64(rows.iter().map(|(_, i)| *i).collect())).unwrap();
        let back = thicket_dataframe::from_csv(&thicket_dataframe::to_csv(&df), 1).unwrap();
        prop_assert_eq!(back.len(), df.len());
        let xa = df.column(&ColKey::new("x")).unwrap().numeric_values();
        let xb = back.column(&ColKey::new("x")).unwrap().numeric_values();
        for (a, b) in xa.iter().zip(xb.iter()) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
        prop_assert_eq!(
            df.column(&ColKey::new("i")).unwrap().iter().collect::<Vec<_>>(),
            back.column(&ColKey::new("i")).unwrap().iter().collect::<Vec<_>>()
        );
    }
}

// ---------------------------------------------------------------------
// Predicate engine: the vectorized evaluator over typed columns must
// agree bit-for-bit with the independent row-wise reference evaluator
// for arbitrary expression ASTs over frames with arbitrary null masks —
// kind-mismatched comparisons, all-null columns, and fields the frame
// doesn't carry included.

/// A comparison value of any kind, in and out of the stored ranges.
fn pred_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-6i64..6).prop_map(Value::Int),
        (-6.0f64..6.0).prop_map(Value::Float),
        prop_oneof![Just(f64::NAN), Just(f64::INFINITY)].prop_map(Value::Float),
        "[a-c]{0,3}".prop_map(|s| Value::from(s.as_str())),
    ]
}

fn pred_op() -> impl Strategy<Value = PredOp> {
    prop_oneof![
        Just(PredOp::Eq),
        Just(PredOp::Ne),
        Just(PredOp::Lt),
        Just(PredOp::Le),
        Just(PredOp::Gt),
        Just(PredOp::Ge),
    ]
}

fn str_op() -> impl Strategy<Value = StrMatch> {
    prop_oneof![
        Just(StrMatch::StartsWith),
        Just(StrMatch::EndsWith),
        Just(StrMatch::Contains),
    ]
}

/// Fields covering every column dtype, an all-null column, and a name
/// the frame doesn't have.
fn pred_field() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("i".to_string()),
        Just("f".to_string()),
        Just("s".to_string()),
        Just("b".to_string()),
        Just("nul".to_string()),
        Just("missing".to_string()),
    ]
}

/// Arbitrary expression ASTs up to depth 3. `In` draws up to 12 values
/// to exercise both the linear probe and the hash-set path.
fn expr_strategy() -> impl Strategy<Value = PredExpr> {
    let leaf = prop_oneof![
        Just(PredExpr::True),
        (pred_field(), pred_op(), pred_value()).prop_map(|(field, op, value)| {
            PredExpr::Cmp { field, op, value }
        }),
        (pred_field(), str_op(), "[a-c]{0,2}").prop_map(|(field, op, needle)| {
            PredExpr::Str { field, op, needle }
        }),
        (pred_field(), proptest::collection::vec(pred_value(), 0..12))
            .prop_map(|(field, values)| PredExpr::In { field, values }),
    ];
    leaf.prop_recursive(3, 32, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(PredExpr::And),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(PredExpr::Or),
            inner.prop_map(|e| PredExpr::Not(Box::new(e))),
        ]
    })
}

type NullableRow = (Option<i64>, Option<f64>, Option<String>, Option<bool>);

fn nullable_rows() -> impl Strategy<Value = Vec<NullableRow>> {
    let opt_i = prop_oneof![Just(None), (-5i64..5).prop_map(Some)];
    let opt_f = prop_oneof![Just(None), (-5.0f64..5.0).prop_map(Some)];
    let opt_s = prop_oneof![Just(None), "[a-c]{0,3}".prop_map(Some)];
    let opt_b = prop_oneof![Just(None), any::<bool>().prop_map(Some)];
    proptest::collection::vec((opt_i, opt_f, opt_s, opt_b), 0..40)
}

fn nullable_frame(rows: &[NullableRow]) -> DataFrame {
    let keys: Vec<i64> = (0..rows.len() as i64).collect();
    let mut df = DataFrame::new(Index::single("k", keys));
    let cell = |o: Option<Value>| o.unwrap_or(Value::Null);
    df.insert(
        "i",
        Column::from_values(rows.iter().map(|r| cell(r.0.map(Value::Int)))).unwrap(),
    )
    .unwrap();
    df.insert(
        "f",
        Column::from_values(rows.iter().map(|r| cell(r.1.map(Value::Float)))).unwrap(),
    )
    .unwrap();
    df.insert(
        "s",
        Column::from_values(
            rows.iter()
                .map(|r| cell(r.2.as_deref().map(Value::from))),
        )
        .unwrap(),
    )
    .unwrap();
    df.insert(
        "b",
        Column::from_values(rows.iter().map(|r| cell(r.3.map(Value::Bool)))).unwrap(),
    )
    .unwrap();
    df.insert(
        "nul",
        Column::from_values(rows.iter().map(|_| Value::Null)).unwrap(),
    )
    .unwrap();
    df
}

proptest! {
    /// Vectorized ≡ row-wise over random frames, null masks, and ASTs.
    #[test]
    fn vectorized_matches_rowwise_on_columns(
        rows in nullable_rows(),
        expr in expr_strategy(),
    ) {
        let df = nullable_frame(&rows);
        let src = df.bind_source(&expr);
        let fast = expr.eval(&src);
        let slow = expr.eval_rowwise(&src);
        prop_assert_eq!(
            fast.positions(), slow.positions(),
            "engines disagree for {} over {} rows", expr, rows.len()
        );
        // filter_expr keeps exactly the selected rows, in order.
        prop_assert_eq!(df.filter_expr(&expr).len(), df.select_rows(&expr).count_ones());
    }

    /// Vectorized ≡ row-wise over `Value`-slice views with explicit
    /// presence masks (the store's MetaBlock shape) — a stored `Null`
    /// that is *present* behaves differently from an absent cell, and
    /// both evaluators must agree on it.
    #[test]
    fn vectorized_matches_rowwise_on_value_views(
        cells in proptest::collection::vec((pred_value(), any::<bool>()), 0..40),
        expr in expr_strategy(),
    ) {
        let values: Vec<Value> = cells.iter().map(|(v, _)| v.clone()).collect();
        let present: Vec<bool> = cells.iter().map(|(_, p)| *p).collect();
        let mut src = BoundSource::new(cells.len());
        for field in ["i", "f", "s", "b", "nul"] {
            src.bind_masked(field, values.clone(), present.clone());
        }
        let fast = expr.eval(&src);
        let slow = expr.eval_rowwise(&src);
        prop_assert_eq!(
            fast.positions(), slow.positions(),
            "engines disagree for {} over a masked value view", expr
        );
    }

    /// The scalar lookup evaluator agrees with the row-wise one on
    /// every row (it is the store-v1 / profile-metadata path).
    #[test]
    fn lookup_matches_rowwise(
        rows in nullable_rows(),
        expr in expr_strategy(),
    ) {
        let df = nullable_frame(&rows);
        let src = df.bind_source(&expr);
        for row in 0..df.len() {
            let by_lookup = expr.eval_lookup(&mut |key| {
                df.column_named(key).ok().and_then(|c| {
                    let v = c.get(row);
                    if v.is_null() { None } else { Some(v) }
                }).or_else(|| df.index().get(row, key).ok())
            });
            prop_assert_eq!(
                by_lookup,
                expr.eval_row(&src, row),
                "lookup and row-wise disagree at row {} for {}", row, expr
            );
        }
    }
}
