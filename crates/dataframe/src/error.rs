//! Error type shared by all dataframe operations.

use crate::colkey::ColKey;
use crate::value::DType;
use std::fmt;

/// Alias for results of dataframe operations.
pub type Result<T> = std::result::Result<T, DfError>;

/// Errors raised by dataframe construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfError {
    /// A column's length does not match the frame's index length.
    LengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Length actually provided.
        actual: usize,
    },
    /// A column with this key already exists.
    DuplicateColumn(ColKey),
    /// No column with this key exists.
    MissingColumn(ColKey),
    /// Incompatible dtypes for an operation.
    TypeError {
        /// Dtype the operation expected (or the left-hand dtype).
        expected: DType,
        /// Dtype encountered.
        actual: DType,
    },
    /// Two frames' indices are incompatible for the requested operation.
    IndexMismatch(String),
    /// An index level name was not found.
    MissingLevel(String),
    /// The operation is undefined for an empty input.
    Empty(&'static str),
    /// Anything else (parse failures, invalid arguments).
    Other(String),
}

impl DfError {
    pub(crate) fn type_error(expected: DType, actual: DType) -> Self {
        DfError::TypeError { expected, actual }
    }
}

impl fmt::Display for DfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfError::LengthMismatch { expected, actual } => {
                write!(f, "column length {actual} does not match index length {expected}")
            }
            DfError::DuplicateColumn(k) => write!(f, "column {k} already exists"),
            DfError::MissingColumn(k) => write!(f, "no column named {k}"),
            DfError::TypeError { expected, actual } => {
                write!(f, "incompatible types: expected {expected}, got {actual}")
            }
            DfError::IndexMismatch(msg) => write!(f, "index mismatch: {msg}"),
            DfError::MissingLevel(name) => write!(f, "no index level named {name:?}"),
            DfError::Empty(op) => write!(f, "{op} is undefined on an empty input"),
            DfError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for DfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DfError::LengthMismatch {
            expected: 3,
            actual: 2,
        };
        assert_eq!(e.to_string(), "column length 2 does not match index length 3");
        assert!(DfError::MissingColumn(ColKey::new("time"))
            .to_string()
            .contains("time"));
        assert!(DfError::MissingLevel("node".into()).to_string().contains("node"));
    }
}
