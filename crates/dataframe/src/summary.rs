//! Frame-level summaries: pandas' `describe()` analogue over all numeric
//! columns.

use crate::agg::AggFn;
use crate::colkey::ColKey;
use crate::column::ColumnBuilder;
use crate::error::Result;
use crate::frame::DataFrame;
use crate::index::Index;
use crate::value::Value;

impl DataFrame {
    /// Summarize every numeric column: one row per statistic
    /// (`count`, `mean`, `std`, `min`, `p25`, `median`, `p75`, `max`),
    /// one column per numeric input column — pandas' `describe()`.
    pub fn describe(&self) -> Result<DataFrame> {
        let stats = [
            AggFn::Count,
            AggFn::Mean,
            AggFn::Std,
            AggFn::Min,
            AggFn::Percentile(25.0),
            AggFn::Median,
            AggFn::Percentile(75.0),
            AggFn::Max,
        ];
        let labels = ["count", "mean", "std", "min", "25%", "50%", "75%", "max"];
        let index = Index::single("stat", labels.iter().map(|s| Value::from(*s)));
        let mut out = DataFrame::new(index);
        for (key, col) in self.columns() {
            if !col.dtype().is_numeric() {
                continue;
            }
            let values = col.numeric_values();
            let mut b = ColumnBuilder::with_capacity(stats.len());
            for stat in &stats {
                b.push(stat.apply(&values).map(Value::Float).unwrap_or(Value::Null))?;
            }
            out.insert(key.clone(), b.finish())?;
        }
        Ok(out)
    }

    /// Sum of one numeric column's non-null cells.
    pub fn column_sum(&self, key: &ColKey) -> Result<f64> {
        Ok(self.column(key)?.numeric_values().iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn sample() -> DataFrame {
        let mut df = DataFrame::new(Index::single("i", 0..4i64));
        df.insert("x", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        df.insert("label", Column::from_strs(["a", "b", "c", "d"]))
            .unwrap();
        df
    }

    #[test]
    fn describe_shape_and_values() {
        let d = sample().describe().unwrap();
        assert_eq!(d.len(), 8);
        assert_eq!(d.ncols(), 1); // string column skipped
        let x = d.column(&ColKey::new("x")).unwrap();
        assert_eq!(x.get_f64(0), Some(4.0)); // count
        assert_eq!(x.get_f64(1), Some(2.5)); // mean
        assert_eq!(x.get_f64(3), Some(1.0)); // min
        assert_eq!(x.get_f64(5), Some(2.5)); // median
        assert_eq!(x.get_f64(7), Some(4.0)); // max
    }

    #[test]
    fn describe_with_nulls() {
        let mut df = DataFrame::new(Index::single("i", 0..3i64));
        df.insert_values(
            "x",
            vec![Value::Float(2.0), Value::Null, Value::Float(4.0)],
        )
        .unwrap();
        let d = df.describe().unwrap();
        let x = d.column(&ColKey::new("x")).unwrap();
        assert_eq!(x.get_f64(0), Some(2.0)); // non-null count
        assert_eq!(x.get_f64(1), Some(3.0)); // mean of {2, 4}
    }

    #[test]
    fn column_sum() {
        let df = sample();
        assert_eq!(df.column_sum(&ColKey::new("x")).unwrap(), 10.0);
        assert!(df.column_sum(&ColKey::new("nope")).is_err());
    }
}
