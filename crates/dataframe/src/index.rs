//! Hierarchical (multi-level) row index.
//!
//! Thicket's performance-data table is keyed by the pair *(call-tree node,
//! profile)* — a two-level index — while metadata and statistics tables use
//! single-level indices (*profile* and *node* respectively). [`Index`]
//! generalizes to any number of named levels whose entries are [`Value`]s.

use crate::error::{DfError, Result};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// One row's index entry: a tuple of per-level values.
pub type Key = Vec<Value>;

/// A named, multi-level row index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Index {
    names: Vec<String>,
    keys: Vec<Key>,
}

impl Index {
    /// New index with the given level names and row keys.
    ///
    /// Every key must have exactly one value per level.
    pub fn new(
        names: impl IntoIterator<Item = impl Into<String>>,
        keys: Vec<Key>,
    ) -> Result<Self> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.is_empty() {
            return Err(DfError::Other("index needs at least one level".into()));
        }
        for (i, k) in keys.iter().enumerate() {
            if k.len() != names.len() {
                return Err(DfError::IndexMismatch(format!(
                    "key {i} has {} values but the index has {} levels",
                    k.len(),
                    names.len()
                )));
            }
        }
        Ok(Index { names, keys })
    }

    /// Single-level index from scalar values.
    pub fn single(
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> Self {
        Index {
            names: vec![name.into()],
            keys: values.into_iter().map(|v| vec![v.into()]).collect(),
        }
    }

    /// Two-level index from value pairs.
    pub fn pairs(
        names: (impl Into<String>, impl Into<String>),
        values: impl IntoIterator<Item = (impl Into<Value>, impl Into<Value>)>,
    ) -> Self {
        Index {
            names: vec![names.0.into(), names.1.into()],
            keys: values
                .into_iter()
                .map(|(a, b)| vec![a.into(), b.into()])
                .collect(),
        }
    }

    /// An empty index with the given level names.
    pub fn empty(names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Index {
            names: names.into_iter().map(Into::into).collect(),
            keys: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of levels.
    pub fn nlevels(&self) -> usize {
        self.names.len()
    }

    /// Level names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// All row keys, in order.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// The key of row `i`.
    pub fn key(&self, i: usize) -> &Key {
        &self.keys[i]
    }

    /// Position of the level called `name`.
    pub fn level_pos(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DfError::MissingLevel(name.to_string()))
    }

    /// The values of one level across all rows.
    pub fn level_values(&self, name: &str) -> Result<Vec<Value>> {
        let p = self.level_pos(name)?;
        Ok(self.keys.iter().map(|k| k[p].clone()).collect())
    }

    /// Value of level `name` at row `i`.
    pub fn get(&self, i: usize, name: &str) -> Result<Value> {
        let p = self.level_pos(name)?;
        Ok(self.keys[i][p].clone())
    }

    /// Append one row key.
    pub fn push(&mut self, key: Key) -> Result<()> {
        if key.len() != self.names.len() {
            return Err(DfError::IndexMismatch(format!(
                "key has {} values but the index has {} levels",
                key.len(),
                self.names.len()
            )));
        }
        self.keys.push(key);
        Ok(())
    }

    /// New index with only the given row positions (in order).
    pub fn take(&self, rows: &[usize]) -> Index {
        Index {
            names: self.names.clone(),
            keys: rows.iter().map(|&r| self.keys[r].clone()).collect(),
        }
    }

    /// First positions of each distinct key, preserving first-seen order,
    /// plus the rows carrying each key.
    pub fn group_positions(&self) -> (Vec<Key>, Vec<Vec<usize>>) {
        let mut order: Vec<Key> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut seen: HashMap<&Key, usize> = HashMap::new();
        for (i, k) in self.keys.iter().enumerate() {
            if let Some(&g) = seen.get(k) {
                groups[g].push(i);
            } else {
                seen.insert(k, order.len());
                order.push(k.clone());
                groups.push(vec![i]);
            }
        }
        (order, groups)
    }

    /// Map from key to all row positions carrying it.
    pub fn positions_by_key(&self) -> HashMap<Key, Vec<usize>> {
        let mut m: HashMap<Key, Vec<usize>> = HashMap::new();
        for (i, k) in self.keys.iter().enumerate() {
            m.entry(k.clone()).or_default().push(i);
        }
        m
    }

    /// `true` if every key appears exactly once.
    pub fn is_unique(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.keys.iter().all(|k| seen.insert(k))
    }

    /// Row positions sorted by key (stable; ties keep original order).
    pub fn argsort(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| self.keys[a].cmp(&self.keys[b]));
        order
    }

    /// Render one key for display (multi-level keys comma-joined).
    pub fn format_key(&self, i: usize) -> String {
        let parts: Vec<String> = self.keys[i]
            .iter()
            .map(|v| v.display_cell().into_owned())
            .collect();
        parts.join(", ")
    }
}

impl fmt::Display for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Index[{}; {} rows]", self.names.join(", "), self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> Index {
        Index::pairs(
            ("node", "profile"),
            vec![(1i64, 100i64), (1, 200), (2, 100), (2, 200)],
        )
    }

    #[test]
    fn construction_validates_arity() {
        let bad = Index::new(["a", "b"], vec![vec![Value::Int(1)]]);
        assert!(bad.is_err());
        let ok = Index::new(["a"], vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(Index::new(Vec::<String>::new(), vec![]).is_err());
    }

    #[test]
    fn level_access() {
        let i = idx();
        assert_eq!(i.nlevels(), 2);
        assert_eq!(
            i.level_values("profile").unwrap(),
            vec![
                Value::Int(100),
                Value::Int(200),
                Value::Int(100),
                Value::Int(200)
            ]
        );
        assert_eq!(i.get(2, "node").unwrap(), Value::Int(2));
        assert!(i.level_values("nope").is_err());
    }

    #[test]
    fn grouping_preserves_first_seen_order() {
        let i = Index::single("k", vec!["b", "a", "b", "c"]);
        let (keys, groups) = i.group_positions();
        assert_eq!(keys, vec![Value::from("b"), Value::from("a"), Value::from("c")]
            .into_iter()
            .map(|v| vec![v])
            .collect::<Vec<_>>());
        assert_eq!(groups, vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn uniqueness_and_argsort() {
        let i = idx();
        assert!(i.is_unique());
        let dup = Index::single("k", vec![1i64, 1]);
        assert!(!dup.is_unique());
        let unsorted = Index::single("k", vec![3i64, 1, 2]);
        assert_eq!(unsorted.argsort(), vec![1, 2, 0]);
    }

    #[test]
    fn take_and_push() {
        let mut i = idx();
        let t = i.take(&[3, 0]);
        assert_eq!(t.key(0), &vec![Value::Int(2), Value::Int(200)]);
        i.push(vec![Value::Int(9), Value::Int(1)]).unwrap();
        assert_eq!(i.len(), 5);
        assert!(i.push(vec![Value::Int(9)]).is_err());
    }

    #[test]
    fn format_key_joins_levels() {
        let i = idx();
        assert_eq!(i.format_key(0), "1, 100");
    }
}
