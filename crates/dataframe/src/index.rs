//! Hierarchical (multi-level) row index.
//!
//! Thicket's performance-data table is keyed by the pair *(call-tree node,
//! profile)* — a two-level index — while metadata and statistics tables use
//! single-level indices (*profile* and *node* respectively). [`Index`]
//! generalizes to any number of named levels whose entries are [`Value`]s.

use crate::error::{DfError, Result};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// One row's index entry: a tuple of per-level values.
pub type Key = Vec<Value>;

/// Lazily-built lookup structures over an index's keys. Built once on
/// first use, shared by every subsequent lookup, and discarded whenever
/// the key set mutates ([`Index::push`]) or the index is cloned.
#[derive(Debug)]
struct PositionCache {
    /// Key → all row positions carrying it, in row order.
    positions: HashMap<Key, Vec<usize>>,
    /// First key that occurs more than once, if any (`None` ⇔ unique).
    duplicate: Option<Key>,
}

/// A named, multi-level row index.
#[derive(Debug)]
pub struct Index {
    names: Vec<String>,
    keys: Vec<Key>,
    cache: OnceLock<PositionCache>,
}

// The cache is derived state: equality, cloning, and hashing consider
// only `names` and `keys`. A clone starts with a cold cache rather than
// paying to copy the maps.
impl Clone for Index {
    fn clone(&self) -> Self {
        Index {
            names: self.names.clone(),
            keys: self.keys.clone(),
            cache: OnceLock::new(),
        }
    }
}

impl PartialEq for Index {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names && self.keys == other.keys
    }
}

impl Eq for Index {}

impl Index {
    /// New index with the given level names and row keys.
    ///
    /// Every key must have exactly one value per level.
    pub fn new(
        names: impl IntoIterator<Item = impl Into<String>>,
        keys: Vec<Key>,
    ) -> Result<Self> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.is_empty() {
            return Err(DfError::Other("index needs at least one level".into()));
        }
        for (i, k) in keys.iter().enumerate() {
            if k.len() != names.len() {
                return Err(DfError::IndexMismatch(format!(
                    "key {i} has {} values but the index has {} levels",
                    k.len(),
                    names.len()
                )));
            }
        }
        Ok(Index { names, keys, cache: OnceLock::new() })
    }

    /// Single-level index from scalar values.
    pub fn single(
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> Self {
        Index {
            names: vec![name.into()],
            keys: values.into_iter().map(|v| vec![v.into()]).collect(),
            cache: OnceLock::new(),
        }
    }

    /// Two-level index from value pairs.
    pub fn pairs(
        names: (impl Into<String>, impl Into<String>),
        values: impl IntoIterator<Item = (impl Into<Value>, impl Into<Value>)>,
    ) -> Self {
        Index {
            names: vec![names.0.into(), names.1.into()],
            keys: values
                .into_iter()
                .map(|(a, b)| vec![a.into(), b.into()])
                .collect(),
            cache: OnceLock::new(),
        }
    }

    /// An empty index with the given level names.
    pub fn empty(names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Index {
            names: names.into_iter().map(Into::into).collect(),
            keys: Vec::new(),
            cache: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of levels.
    pub fn nlevels(&self) -> usize {
        self.names.len()
    }

    /// Level names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// All row keys, in order.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// The key of row `i`.
    pub fn key(&self, i: usize) -> &Key {
        &self.keys[i]
    }

    /// Position of the level called `name`.
    pub fn level_pos(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DfError::MissingLevel(name.to_string()))
    }

    /// The values of one level across all rows.
    pub fn level_values(&self, name: &str) -> Result<Vec<Value>> {
        let p = self.level_pos(name)?;
        Ok(self.keys.iter().map(|k| k[p].clone()).collect())
    }

    /// Value of level `name` at row `i`.
    pub fn get(&self, i: usize, name: &str) -> Result<Value> {
        let p = self.level_pos(name)?;
        Ok(self.keys[i][p].clone())
    }

    /// Append one row key. Invalidates the position cache.
    pub fn push(&mut self, key: Key) -> Result<()> {
        if key.len() != self.names.len() {
            return Err(DfError::IndexMismatch(format!(
                "key has {} values but the index has {} levels",
                key.len(),
                self.names.len()
            )));
        }
        self.keys.push(key);
        self.cache.take();
        Ok(())
    }

    /// New index with only the given row positions (in order).
    pub fn take(&self, rows: &[usize]) -> Index {
        Index {
            names: self.names.clone(),
            keys: rows.iter().map(|&r| self.keys[r].clone()).collect(),
            cache: OnceLock::new(),
        }
    }

    /// The lazily-built lookup cache (one pass over the keys, amortized
    /// over every subsequent join / point lookup / group operation).
    fn cache(&self) -> &PositionCache {
        self.cache.get_or_init(|| {
            let mut positions: HashMap<Key, Vec<usize>> =
                HashMap::with_capacity(self.keys.len());
            let mut duplicate = None;
            for (i, k) in self.keys.iter().enumerate() {
                let slot = positions.entry(k.clone()).or_default();
                if !slot.is_empty() && duplicate.is_none() {
                    duplicate = Some(k.clone());
                }
                slot.push(i);
            }
            PositionCache {
                positions,
                duplicate,
            }
        })
    }

    /// Cached key → row-positions map (built on first use; every
    /// subsequent lookup borrows the same map).
    pub fn positions(&self) -> &HashMap<Key, Vec<usize>> {
        &self.cache().positions
    }

    /// Map from key to all row positions carrying it (owned copy of the
    /// cached map; prefer [`Index::positions`] to avoid the clone).
    pub fn positions_by_key(&self) -> HashMap<Key, Vec<usize>> {
        self.positions().clone()
    }

    /// First row position carrying `key`, if any (O(1) amortized).
    pub fn position_of(&self, key: &Key) -> Option<usize> {
        self.positions().get(key).map(|rows| rows[0])
    }

    /// First positions of each distinct key, preserving first-seen order,
    /// plus the rows carrying each key.
    pub fn group_positions(&self) -> (Vec<Key>, Vec<Vec<usize>>) {
        let positions = self.positions();
        let mut order: Vec<Key> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for k in &self.keys {
            if seen.insert(k) {
                order.push(k.clone());
                groups.push(positions[k].clone());
            }
        }
        (order, groups)
    }

    /// A lookup view guaranteed to map each key to a *single* row.
    /// Errors (naming the offending key) when any key occurs more than
    /// once — obtaining the view is the uniqueness proof, so callers
    /// never have to pick among duplicate rows.
    pub fn unique_positions(&self) -> Result<UniquePositions<'_>> {
        let cache = self.cache();
        match &cache.duplicate {
            Some(dup) => {
                let shown: Vec<String> = dup
                    .iter()
                    .map(|v| v.display_cell().into_owned())
                    .collect();
                Err(DfError::IndexMismatch(format!(
                    "index key ({}) occurs more than once",
                    shown.join(", ")
                )))
            }
            None => Ok(UniquePositions {
                map: &cache.positions,
            }),
        }
    }

    /// `true` if every key appears exactly once.
    pub fn is_unique(&self) -> bool {
        self.cache().duplicate.is_none()
    }

    /// Row positions sorted by key (stable; ties keep original order).
    pub fn argsort(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| self.keys[a].cmp(&self.keys[b]));
        order
    }

    /// Stable argsort of the contiguous row range `lo..hi` (returned
    /// positions are absolute). One chunk of a chunked parallel argsort:
    /// sort disjoint ranges concurrently, then stitch the runs back
    /// together with [`Index::merge_argsort_runs`].
    pub fn argsort_range(&self, lo: usize, hi: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (lo..hi.min(self.len())).collect();
        order.sort_by(|&a, &b| self.keys[a].cmp(&self.keys[b]));
        order
    }

    /// Serial stable merge of per-chunk argsort runs into one full
    /// ordering. Runs must come from [`Index::argsort_range`] over
    /// consecutive, disjoint ranges, in range order: ties then resolve to
    /// the earliest run — i.e. the smallest original position — which
    /// makes the result bit-identical to [`Index::argsort`] for any
    /// chunking.
    pub fn merge_argsort_runs(&self, runs: &[Vec<usize>]) -> Vec<usize> {
        let total: usize = runs.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        let mut heads = vec![0usize; runs.len()];
        for _ in 0..total {
            let mut best: Option<(usize, usize)> = None; // (run, position)
            for (r, run) in runs.iter().enumerate() {
                let Some(&pos) = run.get(heads[r]) else {
                    continue;
                };
                // Strict `<` keeps ties on the earliest (lowest) run.
                match best {
                    Some((_, bp)) if self.keys[pos] < self.keys[bp] => best = Some((r, pos)),
                    None => best = Some((r, pos)),
                    _ => {}
                }
            }
            let (r, pos) = best.expect("total counted non-empty runs");
            out.push(pos);
            heads[r] += 1;
        }
        out
    }

    /// Render one key for display (multi-level keys comma-joined).
    pub fn format_key(&self, i: usize) -> String {
        let parts: Vec<String> = self.keys[i]
            .iter()
            .map(|v| v.display_cell().into_owned())
            .collect();
        parts.join(", ")
    }
}

impl fmt::Display for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Index[{}; {} rows]", self.names.join(", "), self.len())
    }
}

/// Borrowed lookup view over a **unique** index: every key maps to
/// exactly one row. Only obtainable through [`Index::unique_positions`],
/// which rejects duplicated keys — so "which of the duplicate rows?" is
/// unrepresentable for holders of this view.
#[derive(Debug, Clone, Copy)]
pub struct UniquePositions<'a> {
    map: &'a HashMap<Key, Vec<usize>>,
}

impl UniquePositions<'_> {
    /// The single row position carrying `key`, if present.
    pub fn get(&self, key: &Key) -> Option<usize> {
        // `[0]` is total here: the uniqueness check at construction
        // guarantees every entry holds exactly one position.
        self.map.get(key).map(|rows| rows[0])
    }

    /// `true` if the index contains `key`.
    pub fn contains(&self, key: &Key) -> bool {
        self.map.contains_key(key)
    }

    /// Number of distinct keys (= number of rows, by uniqueness).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the index has no rows.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> Index {
        Index::pairs(
            ("node", "profile"),
            vec![(1i64, 100i64), (1, 200), (2, 100), (2, 200)],
        )
    }

    #[test]
    fn construction_validates_arity() {
        let bad = Index::new(["a", "b"], vec![vec![Value::Int(1)]]);
        assert!(bad.is_err());
        let ok = Index::new(["a"], vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(Index::new(Vec::<String>::new(), vec![]).is_err());
    }

    #[test]
    fn level_access() {
        let i = idx();
        assert_eq!(i.nlevels(), 2);
        assert_eq!(
            i.level_values("profile").unwrap(),
            vec![
                Value::Int(100),
                Value::Int(200),
                Value::Int(100),
                Value::Int(200)
            ]
        );
        assert_eq!(i.get(2, "node").unwrap(), Value::Int(2));
        assert!(i.level_values("nope").is_err());
    }

    #[test]
    fn grouping_preserves_first_seen_order() {
        let i = Index::single("k", vec!["b", "a", "b", "c"]);
        let (keys, groups) = i.group_positions();
        assert_eq!(keys, vec![Value::from("b"), Value::from("a"), Value::from("c")]
            .into_iter()
            .map(|v| vec![v])
            .collect::<Vec<_>>());
        assert_eq!(groups, vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn uniqueness_and_argsort() {
        let i = idx();
        assert!(i.is_unique());
        let dup = Index::single("k", vec![1i64, 1]);
        assert!(!dup.is_unique());
        let unsorted = Index::single("k", vec![3i64, 1, 2]);
        assert_eq!(unsorted.argsort(), vec![1, 2, 0]);
    }

    #[test]
    fn take_and_push() {
        let mut i = idx();
        let t = i.take(&[3, 0]);
        assert_eq!(t.key(0), &vec![Value::Int(2), Value::Int(200)]);
        i.push(vec![Value::Int(9), Value::Int(1)]).unwrap();
        assert_eq!(i.len(), 5);
        assert!(i.push(vec![Value::Int(9)]).is_err());
    }

    #[test]
    fn format_key_joins_levels() {
        let i = idx();
        assert_eq!(i.format_key(0), "1, 100");
    }

    #[test]
    fn position_lookups_hit_cache() {
        let i = idx();
        let key = vec![Value::Int(2), Value::Int(100)];
        assert_eq!(i.position_of(&key), Some(2));
        assert_eq!(i.position_of(&vec![Value::Int(9), Value::Int(9)]), None);
        // Repeated lookups borrow the same map.
        let p1 = i.positions() as *const _;
        let p2 = i.positions() as *const _;
        assert_eq!(p1, p2);
    }

    #[test]
    fn push_invalidates_position_cache() {
        let mut i = idx();
        assert_eq!(i.position_of(&vec![Value::Int(7), Value::Int(7)]), None);
        i.push(vec![Value::Int(7), Value::Int(7)]).unwrap();
        assert_eq!(i.position_of(&vec![Value::Int(7), Value::Int(7)]), Some(4));
        assert!(i.is_unique());
        i.push(vec![Value::Int(7), Value::Int(7)]).unwrap();
        assert!(!i.is_unique());
        assert_eq!(i.positions()[&vec![Value::Int(7), Value::Int(7)]], vec![4, 5]);
    }

    #[test]
    fn unique_positions_rejects_duplicates_by_name() {
        let dup = Index::single("k", vec![1i64, 2, 1]);
        let err = dup.unique_positions().unwrap_err();
        assert!(err.to_string().contains('1'), "error names the key: {err}");
        let ok = idx();
        let view = ok.unique_positions().unwrap();
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
        assert_eq!(view.get(&vec![Value::Int(1), Value::Int(200)]), Some(1));
        assert!(view.contains(&vec![Value::Int(2), Value::Int(200)]));
        assert!(!view.contains(&vec![Value::Int(3), Value::Int(100)]));
    }

    #[test]
    fn chunked_argsort_matches_full_sort() {
        // Duplicated keys exercise the stability of the run merge.
        let vals = vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let i = Index::single("k", vals);
        let full = i.argsort();
        for chunk in [1usize, 2, 3, 4, 11, 20] {
            let runs: Vec<Vec<usize>> = (0..i.len())
                .step_by(chunk)
                .map(|lo| i.argsort_range(lo, lo + chunk))
                .collect();
            assert_eq!(i.merge_argsort_runs(&runs), full, "chunk={chunk}");
        }
        // Degenerate inputs.
        let empty = Index::empty(["k"]);
        assert!(empty.merge_argsort_runs(&[]).is_empty());
        assert!(empty.argsort_range(0, 5).is_empty());
    }

    #[test]
    fn clone_and_equality_ignore_cache_state() {
        let a = idx();
        let _ = a.positions(); // warm a's cache
        let b = a.clone();
        assert_eq!(a, b); // cold-cache clone still equal
        assert_eq!(b.position_of(a.key(3)), Some(3));
    }
}
