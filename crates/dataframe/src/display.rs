//! Plain-text table rendering, including two-level column headers for
//! composed frames (Figure 4/15 style) and CSV export.

use crate::frame::DataFrame;
use std::fmt;

/// Render `df` as an aligned text table.
///
/// When any column carries a group label, a first header row shows the
/// groups (spanning their columns) above the metric-name row — matching the
/// paper's `CPU | GPU` two-level headers.
pub fn render(df: &DataFrame) -> String {
    let nlev = df.index().nlevels();
    let has_groups = df.columns().any(|(k, _)| k.group.is_some());

    // Column text matrix: first index-level columns, then data columns.
    let mut headers: Vec<String> = df.index().names().to_vec();
    let mut groups: Vec<String> = vec![String::new(); nlev];
    for (k, _) in df.columns() {
        headers.push(k.name.to_string());
        groups.push(k.group_str().unwrap_or("").to_string());
    }

    let mut rows: Vec<Vec<String>> = Vec::with_capacity(df.len());
    for r in 0..df.len() {
        let mut row: Vec<String> = df.index().key(r)
            .iter()
            .map(|v| v.display_cell().into_owned())
            .collect();
        for (_, c) in df.columns() {
            row.push(c.get(r).display_cell().into_owned());
        }
        rows.push(row);
    }

    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    if has_groups {
        for (w, g) in widths.iter_mut().zip(groups.iter()) {
            *w = (*w).max(g.len());
        }
    }
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }

    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, width) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!("{cell:<width$}"));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    if has_groups {
        write_row(&mut out, &groups);
    }
    write_row(&mut out, &headers);
    let sep: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(sep.min(160)));
    out.push('\n');
    for row in &rows {
        write_row(&mut out, row);
    }
    out
}

/// Render `df` as CSV (group labels joined into the header as `group.name`).
pub fn to_csv(df: &DataFrame) -> String {
    let mut out = String::new();
    let mut headers: Vec<String> = df.index().names().to_vec();
    for (k, _) in df.columns() {
        headers.push(match k.group_str() {
            Some(g) => format!("{g}.{}", k.name),
            None => k.name.to_string(),
        });
    }
    out.push_str(&headers.iter().map(|h| csv_escape(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for r in 0..df.len() {
        let mut cells: Vec<String> = df.index().key(r)
            .iter()
            .map(|v| csv_escape(&v.display_cell()))
            .collect();
        for (_, c) in df.columns() {
            cells.push(csv_escape(&c.get(r).display_cell()));
        }
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl fmt::Display for DataFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::index::Index;

    fn sample() -> DataFrame {
        let index = Index::single("profile", vec![-58107i64, 87514]);
        let mut df = DataFrame::new(index);
        df.insert("problem size", Column::from_i64(vec![1048576, 4194304]))
            .unwrap();
        df.insert("compiler", Column::from_strs(["clang-9.0.0", "clang-9.0.0"]))
            .unwrap();
        df
    }

    #[test]
    fn render_aligns_columns() {
        let s = render(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("profile"));
        assert!(lines[0].contains("problem size"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("-58107"));
        assert!(lines[3].contains("clang-9.0.0"));
    }

    #[test]
    fn render_two_level_header() {
        let df = sample().with_column_group("CPU");
        let s = render(&df);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("CPU"));
        assert!(lines[1].contains("compiler"));
    }

    #[test]
    fn csv_round_values() {
        let csv = to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "profile,problem size,compiler");
        assert_eq!(lines[1], "-58107,1048576,clang-9.0.0");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("plain"), "plain");
    }

    #[test]
    fn csv_grouped_headers_join_with_dot() {
        let df = sample().with_column_group("GPU");
        let csv = to_csv(&df);
        assert!(csv.lines().next().unwrap().contains("GPU.compiler"));
    }

    #[test]
    fn display_trait_matches_render() {
        let df = sample();
        assert_eq!(format!("{df}"), render(&df));
    }
}
