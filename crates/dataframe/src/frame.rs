//! The [`DataFrame`]: a multi-indexed, column-oriented table.

use crate::bitmap::Bitmap;
use crate::colkey::ColKey;
use crate::column::{Column, ColumnBuilder, ConcatPart};
use crate::error::{DfError, Result};
use crate::expr::{BoundSource, PredExpr};
use crate::index::{Index, Key};
use crate::value::{DType, Value};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A column-oriented table with a hierarchical row index and (optionally)
/// grouped column keys. This is the pandas-DataFrame stand-in that backs all
/// three thicket components.
#[derive(Debug)]
pub struct DataFrame {
    index: Index,
    cols: Vec<(ColKey, Column)>,
    lookup: HashMap<ColKey, usize>,
    /// Column-axis position cache: bare name → column positions carrying
    /// it, so [`DataFrame::column_named`] on wide composed frames (560
    /// grouped profile columns) is an O(1) amortized lookup instead of a
    /// scan. Same rules as the row-index cache in [`Index`]: built once on
    /// first use, discarded when the column set mutates, cold on clone.
    name_cache: OnceLock<HashMap<Arc<str>, Vec<usize>>>,
}

// The name cache is derived state: equality and cloning consider only
// the index and the columns (`lookup` is itself derived from `cols`,
// so comparing it adds nothing).
impl Clone for DataFrame {
    fn clone(&self) -> Self {
        DataFrame {
            index: self.index.clone(),
            cols: self.cols.clone(),
            lookup: self.lookup.clone(),
            name_cache: OnceLock::new(),
        }
    }
}

impl PartialEq for DataFrame {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.cols == other.cols
    }
}

impl DataFrame {
    /// An empty frame over `index` (no columns yet).
    pub fn new(index: Index) -> Self {
        DataFrame {
            index,
            cols: Vec::new(),
            lookup: HashMap::new(),
            name_cache: OnceLock::new(),
        }
    }

    /// Build a frame from an index and columns, validating lengths.
    pub fn from_columns(
        index: Index,
        cols: impl IntoIterator<Item = (ColKey, Column)>,
    ) -> Result<Self> {
        let mut df = DataFrame::new(index);
        for (k, c) in cols {
            df.insert(k, c)?;
        }
        Ok(df)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// The row index.
    pub fn index(&self) -> &Index {
        &self.index
    }

    /// Column keys in insertion order.
    pub fn column_keys(&self) -> Vec<ColKey> {
        self.cols.iter().map(|(k, _)| k.clone()).collect()
    }

    /// `true` if a column with this key exists.
    pub fn has_column(&self, key: &ColKey) -> bool {
        self.lookup.contains_key(key)
    }

    /// Insert a column; fails on duplicate key or length mismatch.
    pub fn insert(&mut self, key: impl Into<ColKey>, col: Column) -> Result<()> {
        let key = key.into();
        if self.lookup.contains_key(&key) {
            return Err(DfError::DuplicateColumn(key));
        }
        if col.len() != self.len() {
            return Err(DfError::LengthMismatch {
                expected: self.len(),
                actual: col.len(),
            });
        }
        self.lookup.insert(key.clone(), self.cols.len());
        self.cols.push((key, col));
        self.name_cache.take();
        Ok(())
    }

    /// Insert a column built from dynamic values.
    pub fn insert_values(
        &mut self,
        key: impl Into<ColKey>,
        values: impl IntoIterator<Item = Value>,
    ) -> Result<()> {
        self.insert(key, Column::from_values(values)?)
    }

    /// Replace an existing column (or insert if missing).
    pub fn upsert(&mut self, key: impl Into<ColKey>, col: Column) -> Result<()> {
        let key = key.into();
        if col.len() != self.len() {
            return Err(DfError::LengthMismatch {
                expected: self.len(),
                actual: col.len(),
            });
        }
        match self.lookup.get(&key) {
            Some(&i) => {
                self.cols[i].1 = col;
                Ok(())
            }
            None => self.insert(key, col),
        }
    }

    /// Borrow a column.
    pub fn column(&self, key: &ColKey) -> Result<&Column> {
        self.lookup
            .get(key)
            .map(|&i| &self.cols[i].1)
            .ok_or_else(|| DfError::MissingColumn(key.clone()))
    }

    /// The lazily-built name → column-positions map (one pass over the
    /// column keys, amortized over every subsequent by-name lookup).
    pub(crate) fn name_positions(&self) -> &HashMap<Arc<str>, Vec<usize>> {
        self.name_cache.get_or_init(|| {
            let mut map: HashMap<Arc<str>, Vec<usize>> =
                HashMap::with_capacity(self.cols.len());
            for (i, (k, _)) in self.cols.iter().enumerate() {
                map.entry(k.name.clone()).or_default().push(i);
            }
            map
        })
    }

    /// Borrow a column by bare name, ignoring group labels; fails if the
    /// name is ambiguous across groups. O(1) amortized through the
    /// column-axis position cache.
    pub fn column_named(&self, name: &str) -> Result<&Column> {
        match self.name_positions().get(name).map(Vec::as_slice) {
            Some([i]) => Ok(&self.cols[*i].1),
            Some(_) => Err(DfError::Other(format!(
                "column name {name:?} is ambiguous across groups"
            ))),
            None => Err(DfError::MissingColumn(ColKey::new(name))),
        }
    }

    /// Cell access.
    pub fn value(&self, row: usize, key: &ColKey) -> Result<Value> {
        Ok(self.column(key)?.get(row))
    }

    /// Iterate `(key, column)` pairs in order.
    pub fn columns(&self) -> impl Iterator<Item = (&ColKey, &Column)> {
        self.cols.iter().map(|(k, c)| (k, c))
    }

    /// Decompose the frame into its index and owned columns (insertion
    /// order) — the zero-copy feed for [`ColumnFragments::absorb`].
    pub fn into_parts(self) -> (Index, Vec<(ColKey, Column)>) {
        (self.index, self.cols)
    }

    /// A read-only view of one row.
    pub fn row(&self, row: usize) -> RowRef<'_> {
        RowRef { df: self, row }
    }

    /// New frame with only the requested columns (in the given order).
    pub fn select(&self, keys: &[ColKey]) -> Result<DataFrame> {
        let mut df = DataFrame::new(self.index.clone());
        for k in keys {
            df.insert(k.clone(), self.column(k)?.clone())?;
        }
        Ok(df)
    }

    /// New frame without the given columns (missing keys are ignored).
    pub fn drop_columns(&self, keys: &[ColKey]) -> DataFrame {
        let mut df = DataFrame::new(self.index.clone());
        for (k, c) in &self.cols {
            if !keys.contains(k) {
                df.insert(k.clone(), c.clone()).expect("unique keys");
            }
        }
        df
    }

    /// New frame containing the given row positions (in order).
    pub fn take(&self, rows: &[usize]) -> DataFrame {
        let mut df = DataFrame::new(self.index.take(rows));
        for (k, c) in &self.cols {
            df.insert(k.clone(), c.take(rows)).expect("lengths match");
        }
        df
    }

    /// Keep only rows where `pred` holds.
    pub fn filter<F: FnMut(RowRef<'_>) -> bool>(&self, mut pred: F) -> DataFrame {
        let rows: Vec<usize> = (0..self.len())
            .filter(|&i| pred(RowRef { df: self, row: i }))
            .collect();
        self.take(&rows)
    }

    /// Bind the fields a [`PredExpr`] reads against this frame: a uniquely
    /// named column binds its typed storage; otherwise an index level of
    /// that name is materialized. Fields that resolve to neither (missing,
    /// or group-ambiguous column names) stay unbound and match no rows.
    pub fn bind_source(&self, expr: &PredExpr) -> BoundSource<'_> {
        let mut src = BoundSource::new(self.len());
        for field in expr.fields() {
            if let Ok(col) = self.column_named(field) {
                src.bind_column(field, col);
            } else if let Ok(values) = self.index.level_values(field) {
                src.bind_values(field, values);
            }
        }
        src
    }

    /// Filter rows with the vectorized predicate engine. Fields resolve to
    /// columns first, then index levels (see [`DataFrame::bind_source`]);
    /// a field the frame doesn't have matches no rows.
    pub fn filter_expr(&self, expr: &PredExpr) -> DataFrame {
        let src = self.bind_source(expr);
        self.take(&expr.eval(&src).positions())
    }

    /// The selection bitmap a [`PredExpr`] produces over this frame,
    /// without materializing the filtered frame.
    pub fn select_rows(&self, expr: &PredExpr) -> Bitmap {
        expr.eval(&self.bind_source(expr))
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let rows: Vec<usize> = (0..self.len().min(n)).collect();
        self.take(&rows)
    }

    /// New frame sorted by the row index (stable).
    pub fn sort_by_index(&self) -> DataFrame {
        self.take(&self.index.argsort())
    }

    /// New frame sorted by a column (stable; nulls always sort last,
    /// regardless of direction).
    pub fn sort_by(&self, key: &ColKey, ascending: bool) -> Result<DataFrame> {
        let col = self.column(key)?;
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            let va = col.get(a);
            let vb = col.get(b);
            // Nulls always sort to the end regardless of direction.
            match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => {
                    if ascending {
                        va.cmp(&vb)
                    } else {
                        vb.cmp(&va)
                    }
                }
            }
        });
        Ok(self.take(&order))
    }

    /// Distinct values of one column, in first-seen order.
    pub fn unique(&self, key: &ColKey) -> Result<Vec<Value>> {
        let col = self.column(key)?;
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for v in col.iter() {
            if seen.insert(v.clone()) {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// New frame with every column key re-labelled under `group`
    /// (used when composing thickets along the column axis).
    pub fn with_column_group(&self, group: &str) -> DataFrame {
        let mut df = DataFrame::new(self.index.clone());
        for (k, c) in &self.cols {
            df.insert(k.under(group), c.clone()).expect("unique keys");
        }
        df
    }

    /// New frame with one column renamed.
    pub fn rename(&self, from: &ColKey, to: impl Into<ColKey>) -> Result<DataFrame> {
        let to = to.into();
        if !self.has_column(from) {
            return Err(DfError::MissingColumn(from.clone()));
        }
        let mut df = DataFrame::new(self.index.clone());
        for (k, c) in &self.cols {
            let nk = if k == from { to.clone() } else { k.clone() };
            df.insert(nk, c.clone())?;
        }
        Ok(df)
    }

    /// Vertically concatenate frames sharing identical level names and
    /// column keys (columns are matched by key; dtypes promote).
    pub fn concat_rows(frames: &[&DataFrame]) -> Result<DataFrame> {
        let first = frames.first().ok_or(DfError::Empty("concat_rows"))?;
        let names = first.index.names().to_vec();
        let keys = first.column_keys();
        let mut index = Index::empty(names.clone());
        for f in frames {
            if f.index.names() != names.as_slice() {
                return Err(DfError::IndexMismatch(format!(
                    "level names {:?} vs {:?}",
                    f.index.names(),
                    names
                )));
            }
            for k in f.index.keys() {
                index.push(k.clone())?;
            }
        }
        let mut df = DataFrame::new(index);
        for key in &keys {
            let mut col = first.column(key)?.clone();
            for f in &frames[1..] {
                col.append(f.column(key)?)?;
            }
            df.insert(key.clone(), col)?;
        }
        Ok(df)
    }

    /// Collect one column per key-group of the index: for each distinct
    /// index key (in first-seen order) return the rows carrying it.
    pub fn rows_by_index_key(&self) -> (Vec<Key>, Vec<Vec<usize>>) {
        self.index.group_positions()
    }

}

/// Read-only view of one dataframe row, used by filter predicates.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    df: &'a DataFrame,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// Position of this row in the frame.
    pub fn position(&self) -> usize {
        self.row
    }

    /// Value of an index level (`Null` if the level does not exist).
    pub fn level(&self, name: &str) -> Value {
        self.df.index.get(self.row, name).unwrap_or(Value::Null)
    }

    /// Cell value (`Null` if the column does not exist).
    pub fn get(&self, key: impl Into<ColKey>) -> Value {
        let key = key.into();
        self.df
            .column(&key)
            .map(|c| c.get(self.row))
            .unwrap_or(Value::Null)
    }

    /// Numeric cell value.
    pub fn f64(&self, key: impl Into<ColKey>) -> Option<f64> {
        self.get(key).as_f64()
    }

    /// String cell value.
    pub fn str(&self, key: impl Into<ColKey>) -> Option<String> {
        self.get(key).as_str().map(str::to_owned)
    }
}

/// Build a [`DataFrame`] row by row when the shape isn't known up front.
pub struct FrameBuilder {
    names: Vec<String>,
    keys: Vec<Key>,
    col_order: Vec<ColKey>,
    builders: HashMap<ColKey, ColumnBuilder>,
}

impl FrameBuilder {
    /// New builder over the given index level names.
    pub fn new(level_names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        FrameBuilder {
            names: level_names.into_iter().map(Into::into).collect(),
            keys: Vec::new(),
            col_order: Vec::new(),
            builders: HashMap::new(),
        }
    }

    /// Append one row: an index key plus `(column, value)` cells. Columns
    /// unseen so far are created and back-filled with nulls; columns absent
    /// from this row get null.
    pub fn push_row(
        &mut self,
        key: Key,
        cells: impl IntoIterator<Item = (ColKey, Value)>,
    ) -> Result<()> {
        if key.len() != self.names.len() {
            return Err(DfError::IndexMismatch(format!(
                "key has {} values but the index has {} levels",
                key.len(),
                self.names.len()
            )));
        }
        let row = self.keys.len();
        self.keys.push(key);
        let mut filled: std::collections::HashSet<ColKey> = std::collections::HashSet::new();
        for (ck, v) in cells {
            if !self.builders.contains_key(&ck) {
                let mut b = ColumnBuilder::new();
                for _ in 0..row {
                    b.push(Value::Null).expect("null always accepted");
                }
                self.builders.insert(ck.clone(), b);
                self.col_order.push(ck.clone());
            }
            self.builders
                .get_mut(&ck)
                .expect("just inserted")
                .push(v)?;
            filled.insert(ck);
        }
        // Null-pad columns this row did not mention.
        for ck in &self.col_order {
            if !filled.contains(ck) {
                let b = self.builders.get_mut(ck).unwrap();
                if b.len() == row {
                    b.push(Value::Null).expect("null always accepted");
                }
            }
        }
        Ok(())
    }

    /// Materialize the frame.
    pub fn finish(self) -> Result<DataFrame> {
        let index = Index::new(self.names, self.keys)?;
        let mut builders = self.builders;
        let mut df = DataFrame::new(index);
        for ck in self.col_order {
            let b = builders.remove(&ck).expect("builder exists");
            df.insert(ck, b.finish())?;
        }
        Ok(df)
    }

    /// Materialize a [`ColumnFragments`] batch instead of a frame — the
    /// worker-side half of the columnar ingest merge.
    pub fn finish_fragments(self) -> ColumnFragments {
        let mut cols = HashMap::with_capacity(self.builders.len());
        let mut builders = self.builders;
        for ck in &self.col_order {
            let b = builders.remove(ck).expect("builder exists");
            cols.insert(ck.clone(), b.finish());
        }
        ColumnFragments {
            names: self.names,
            keys: self.keys,
            order: self.col_order,
            cols,
        }
    }
}

/// One worker's typed output batch during a columnar ingest merge: an
/// index fragment (row keys) plus per-column typed fragments. Workers
/// build these independently; [`merge_fragments`] concatenates them
/// per column behind a single schema-union pass — no per-cell re-hashing
/// through a row builder.
#[derive(Debug, Clone)]
pub struct ColumnFragments {
    names: Vec<String>,
    keys: Vec<Key>,
    order: Vec<ColKey>,
    cols: HashMap<ColKey, Column>,
}

impl ColumnFragments {
    /// New empty fragment batch over the given index level names.
    pub fn new(level_names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        ColumnFragments {
            names: level_names.into_iter().map(Into::into).collect(),
            keys: Vec::new(),
            order: Vec::new(),
            cols: HashMap::new(),
        }
    }

    /// Fragment batch with its index fragment fixed up front (the shape
    /// row-concat workers produce: re-keyed index + whole typed columns).
    pub fn with_keys(
        level_names: impl IntoIterator<Item = impl Into<String>>,
        keys: Vec<Key>,
    ) -> Result<Self> {
        let mut f = ColumnFragments::new(level_names);
        for (i, k) in keys.iter().enumerate() {
            if k.len() != f.names.len() {
                return Err(DfError::IndexMismatch(format!(
                    "key {i} has {} values but the index has {} levels",
                    k.len(),
                    f.names.len()
                )));
            }
        }
        f.keys = keys;
        Ok(f)
    }

    /// Build a fragment batch from row-oriented cells, with the same
    /// column-creation order and null backfill as [`FrameBuilder`] — the
    /// bridge for callers whose natural unit is still a row.
    pub fn from_rows(
        level_names: impl IntoIterator<Item = impl Into<String>>,
        rows: impl IntoIterator<Item = (Key, Vec<(ColKey, Value)>)>,
    ) -> Result<Self> {
        let mut fb = FrameBuilder::new(level_names);
        for (key, cells) in rows {
            fb.push_row(key, cells)?;
        }
        Ok(fb.finish_fragments())
    }

    /// Append one index key.
    pub fn push_key(&mut self, key: Key) -> Result<()> {
        if key.len() != self.names.len() {
            return Err(DfError::IndexMismatch(format!(
                "key has {} values but the index has {} levels",
                key.len(),
                self.names.len()
            )));
        }
        self.keys.push(key);
        Ok(())
    }

    /// Append one whole column fragment; its length must match the index
    /// fragment pushed so far.
    pub fn push_column(&mut self, key: impl Into<ColKey>, col: Column) -> Result<()> {
        let key = key.into();
        if self.cols.contains_key(&key) {
            return Err(DfError::DuplicateColumn(key));
        }
        if col.len() != self.keys.len() {
            return Err(DfError::LengthMismatch {
                expected: self.keys.len(),
                actual: col.len(),
            });
        }
        self.order.push(key.clone());
        self.cols.insert(key, col);
        Ok(())
    }

    /// Move a frame's columns into this batch **without cloning the
    /// cell data** — the chunked-extend reuse path: an existing table
    /// rides into a [`merge_fragments`] merge as one pre-typed batch.
    /// The frame's own index is discarded (the batch already carries
    /// its index fragment, typically a re-keyed copy); its row count
    /// must match the keys pushed so far. Equivalent to
    /// [`ColumnFragments::push_column`] over cloned columns, minus the
    /// copies.
    pub fn absorb(&mut self, frame: DataFrame) -> Result<()> {
        let (_, cols) = frame.into_parts();
        for (key, col) in cols {
            self.push_column(key, col)?;
        }
        Ok(())
    }

    /// Number of rows in this fragment batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the fragment batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Column keys in creation order.
    pub fn column_keys(&self) -> &[ColKey] {
        &self.order
    }
}

/// Merge worker fragment batches into one frame: one schema-union pass
/// over the column keys (first-seen order across batches, matching what
/// a serial [`FrameBuilder`] over the same rows would produce), then a
/// typed per-column `Vec` concatenation with null runs for batches that
/// never saw a column. Output is byte-identical to pushing every row
/// through one `FrameBuilder` in batch order.
pub fn merge_fragments(frags: &[ColumnFragments]) -> Result<DataFrame> {
    let first = frags.first().ok_or(DfError::Empty("merge_fragments"))?;
    for f in &frags[1..] {
        if f.names != first.names {
            return Err(DfError::IndexMismatch(format!(
                "level names {:?} vs {:?}",
                f.names, first.names
            )));
        }
    }

    let total: usize = frags.iter().map(|f| f.keys.len()).sum();
    let mut keys: Vec<Key> = Vec::with_capacity(total);
    for f in frags {
        keys.extend(f.keys.iter().cloned());
    }
    let index = Index::new(first.names.clone(), keys)?;

    // Schema union: first-seen column order across batches.
    let mut order: Vec<ColKey> = Vec::new();
    {
        let mut seen: std::collections::HashSet<&ColKey> = std::collections::HashSet::new();
        for f in frags {
            for k in &f.order {
                if seen.insert(k) {
                    order.push(k.clone());
                }
            }
        }
    }

    let mut df = DataFrame::new(index);
    for key in order {
        let parts: Vec<ConcatPart<'_>> = frags
            .iter()
            .map(|f| match f.cols.get(&key) {
                Some(c) => ConcatPart::Col(c),
                None => ConcatPart::Nulls(f.keys.len()),
            })
            .collect();
        // Cell-level dtype resolution: all-null fragments are neutral,
        // mirroring how a row builder only sees their cells as nulls.
        let mut target = DType::Null;
        for p in &parts {
            if let ConcatPart::Col(c) = p {
                let eff = c.effective_dtype();
                target = target
                    .promote(eff)
                    .ok_or_else(|| DfError::type_error(target, eff))?;
            }
        }
        df.insert(key, Column::concat_parts(target, &parts))?;
    }
    Ok(df)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        let index = Index::pairs(
            ("node", "profile"),
            vec![(1i64, 10i64), (1, 20), (2, 10), (2, 20)],
        );
        let mut df = DataFrame::new(index);
        df.insert("time", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        df.insert("reps", Column::from_i64(vec![100, 100, 200, 200]))
            .unwrap();
        df.insert("variant", Column::from_strs(["seq", "omp", "seq", "omp"]))
            .unwrap();
        df
    }

    #[test]
    fn absorb_matches_cloned_push_column() {
        let df = sample();
        // Reference: clone every column into the batch.
        let mut cloned = ColumnFragments::with_keys(
            ["node", "profile"],
            df.index().keys().to_vec(),
        )
        .unwrap();
        for (k, c) in df.columns() {
            cloned.push_column(k.clone(), c.clone()).unwrap();
        }
        // Reuse path: move the columns in.
        let mut moved = ColumnFragments::with_keys(
            ["node", "profile"],
            df.index().keys().to_vec(),
        )
        .unwrap();
        moved.absorb(sample()).unwrap();
        let a = merge_fragments(&[cloned]).unwrap();
        let b = merge_fragments(&[moved]).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, sample());

        // Row-count mismatch is refused.
        let mut short = ColumnFragments::new(["node", "profile"]);
        assert!(matches!(
            short.absorb(sample()),
            Err(DfError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn insert_validates() {
        let mut df = sample();
        assert!(matches!(
            df.insert("time", Column::from_f64(vec![0.0; 4])),
            Err(DfError::DuplicateColumn(_))
        ));
        assert!(matches!(
            df.insert("short", Column::from_f64(vec![0.0])),
            Err(DfError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn select_and_drop() {
        let df = sample();
        let s = df.select(&[ColKey::new("reps")]).unwrap();
        assert_eq!(s.ncols(), 1);
        assert_eq!(s.len(), 4);
        let d = df.drop_columns(&[ColKey::new("reps")]);
        assert_eq!(d.ncols(), 2);
        assert!(df.select(&[ColKey::new("nope")]).is_err());
    }

    #[test]
    fn filter_by_row_view() {
        let df = sample();
        let f = df.filter(|r| r.str("variant").as_deref() == Some("omp"));
        assert_eq!(f.len(), 2);
        assert_eq!(f.index().key(0), &vec![Value::Int(1), Value::Int(20)]);
    }

    #[test]
    fn filter_on_index_level() {
        let df = sample();
        let f = df.filter(|r| r.level("node") == Value::Int(2));
        assert_eq!(f.len(), 2);
        assert_eq!(f.column(&ColKey::new("time")).unwrap().numeric_values(), vec![3.0, 4.0]);
    }

    #[test]
    fn sort_by_column_desc_nulls_last() {
        let index = Index::single("i", vec![0i64, 1, 2]);
        let mut df = DataFrame::new(index);
        df.insert_values(
            "x",
            vec![Value::Float(1.0), Value::Null, Value::Float(5.0)],
        )
        .unwrap();
        let sorted = df.sort_by(&ColKey::new("x"), false).unwrap();
        let vals: Vec<Value> = sorted.column(&ColKey::new("x")).unwrap().iter().collect();
        assert_eq!(vals, vec![Value::Float(5.0), Value::Float(1.0), Value::Null]);
    }

    #[test]
    fn unique_first_seen_order() {
        let df = sample();
        assert_eq!(
            df.unique(&ColKey::new("variant")).unwrap(),
            vec![Value::from("seq"), Value::from("omp")]
        );
    }

    #[test]
    fn column_group_relabel() {
        let df = sample().with_column_group("CPU");
        assert!(df.has_column(&ColKey::grouped("CPU", "time")));
        assert!(!df.has_column(&ColKey::new("time")));
    }

    #[test]
    fn concat_rows_matches_columns() {
        let a = sample();
        let b = sample();
        let c = DataFrame::concat_rows(&[&a, &b]).unwrap();
        assert_eq!(c.len(), 8);
        assert_eq!(c.ncols(), 3);
    }

    #[test]
    fn concat_rows_rejects_mismatched_levels() {
        let a = sample();
        let idx = Index::single("other", vec![1i64]);
        let mut b = DataFrame::new(idx);
        b.insert("time", Column::from_f64(vec![0.0])).unwrap();
        assert!(DataFrame::concat_rows(&[&a, &b]).is_err());
    }

    #[test]
    fn frame_builder_backfills_nulls() {
        let mut fb = FrameBuilder::new(["profile"]);
        fb.push_row(
            vec![Value::Int(1)],
            vec![(ColKey::new("a"), Value::Int(10))],
        )
        .unwrap();
        fb.push_row(
            vec![Value::Int(2)],
            vec![
                (ColKey::new("a"), Value::Int(20)),
                (ColKey::new("b"), Value::from("x")),
            ],
        )
        .unwrap();
        fb.push_row(vec![Value::Int(3)], vec![]).unwrap();
        let df = fb.finish().unwrap();
        assert_eq!(df.len(), 3);
        let b = df.column(&ColKey::new("b")).unwrap();
        assert!(b.is_null_at(0));
        assert_eq!(b.get(1), Value::from("x"));
        assert!(b.is_null_at(2));
    }

    #[test]
    fn rename_column() {
        let df = sample();
        let r = df.rename(&ColKey::new("time"), "time (exc)").unwrap();
        assert!(r.has_column(&ColKey::new("time (exc)")));
        assert!(df.rename(&ColKey::new("zzz"), "w").is_err());
    }

    #[test]
    fn head_truncates() {
        let df = sample();
        assert_eq!(df.head(2).len(), 2);
        assert_eq!(df.head(10).len(), 4);
    }

    #[test]
    fn column_named_resolves_unambiguous() {
        let df = sample().with_column_group("CPU");
        assert!(df.column_named("time").is_ok());
        let mut both = df.clone();
        both.insert(ColKey::grouped("GPU", "time"), Column::from_f64(vec![0.0; 4]))
            .unwrap();
        assert!(both.column_named("time").is_err());
    }

    #[test]
    fn sort_by_column_asc_nulls_last() {
        let index = Index::single("i", vec![0i64, 1, 2, 3]);
        let mut df = DataFrame::new(index);
        df.insert_values(
            "x",
            vec![Value::Null, Value::Float(5.0), Value::Float(1.0), Value::Null],
        )
        .unwrap();
        let sorted = df.sort_by(&ColKey::new("x"), true).unwrap();
        let vals: Vec<Value> = sorted.column(&ColKey::new("x")).unwrap().iter().collect();
        assert_eq!(
            vals,
            vec![Value::Float(1.0), Value::Float(5.0), Value::Null, Value::Null]
        );
    }

    #[test]
    fn name_cache_built_once_and_invalidated_on_insert() {
        let mut df = sample();
        // First lookup builds the cache; the second must reuse the same map
        // allocation (no O(columns) rescan).
        let first = df.name_positions() as *const _;
        assert!(df.column_named("time").is_ok());
        let second = df.name_positions() as *const _;
        assert_eq!(first, second);
        // Mutating the column set discards the cache...
        df.insert("extra", Column::from_i64(vec![0; 4])).unwrap();
        assert!(df.name_cache.get().is_none());
        // ...and the rebuilt cache sees the new column.
        assert!(df.column_named("extra").is_ok());
        // Clones start cold but still resolve.
        let cl = df.clone();
        assert!(cl.name_cache.get().is_none());
        assert!(cl.column_named("extra").is_ok());
    }

    /// Rows from `sample()` split into two worker-style fragment batches.
    fn sample_fragments() -> Vec<ColumnFragments> {
        let rows = |range: std::ops::Range<usize>| {
            let src = sample();
            range
                .map(|i| {
                    let key = src.index().key(i).clone();
                    let cells = src
                        .column_keys()
                        .into_iter()
                        .map(|k| {
                            let v = src.column(&k).unwrap().get(i);
                            (k, v)
                        })
                        .collect();
                    (key, cells)
                })
                .collect::<Vec<_>>()
        };
        vec![
            ColumnFragments::from_rows(["node", "profile"], rows(0..2)).unwrap(),
            ColumnFragments::from_rows(["node", "profile"], rows(2..4)).unwrap(),
        ]
    }

    #[test]
    fn merge_fragments_matches_frame_builder() {
        let merged = merge_fragments(&sample_fragments()).unwrap();
        assert_eq!(merged, sample());
    }

    #[test]
    fn merge_fragments_schema_union_backfills_nulls() {
        // Fragment 1 only ever saw column `a`; fragment 2 only `b`. The
        // union must null-fill each side, in first-seen column order.
        let mut f1 = ColumnFragments::new(["profile"]);
        f1.push_key(vec![Value::Int(1)]).unwrap();
        f1.push_key(vec![Value::Int(2)]).unwrap();
        f1.push_column("a", Column::from_i64(vec![10, 20])).unwrap();
        let mut f2 = ColumnFragments::new(["profile"]);
        f2.push_key(vec![Value::Int(3)]).unwrap();
        f2.push_column("b", Column::from_strs(["x"])).unwrap();

        let merged = merge_fragments(&[f1, f2]).unwrap();

        let mut fb = FrameBuilder::new(["profile"]);
        fb.push_row(vec![Value::Int(1)], vec![(ColKey::new("a"), Value::Int(10))])
            .unwrap();
        fb.push_row(vec![Value::Int(2)], vec![(ColKey::new("a"), Value::Int(20))])
            .unwrap();
        fb.push_row(
            vec![Value::Int(3)],
            vec![(ColKey::new("b"), Value::from("x"))],
        )
        .unwrap();
        let serial = fb.finish().unwrap();

        assert_eq!(merged, serial);
        assert_eq!(merged.column_keys(), serial.column_keys());
        assert_eq!(
            merged.column(&ColKey::new("a")).unwrap().dtype(),
            DType::Int
        );
        assert!(merged.column(&ColKey::new("b")).unwrap().is_null_at(0));
    }

    #[test]
    fn merge_fragments_promotes_int_to_float() {
        let mut f1 = ColumnFragments::new(["i"]);
        f1.push_key(vec![Value::Int(0)]).unwrap();
        f1.push_column("m", Column::from_i64(vec![3])).unwrap();
        let mut f2 = ColumnFragments::new(["i"]);
        f2.push_key(vec![Value::Int(1)]).unwrap();
        f2.push_column("m", Column::from_f64(vec![0.5])).unwrap();
        let merged = merge_fragments(&[f1, f2]).unwrap();
        let m = merged.column(&ColKey::new("m")).unwrap();
        assert_eq!(m.dtype(), DType::Float);
        assert_eq!(m.numeric_values(), vec![3.0, 0.5]);
    }

    #[test]
    fn merge_fragments_rejects_incompatible_dtypes() {
        let mut f1 = ColumnFragments::new(["i"]);
        f1.push_key(vec![Value::Int(0)]).unwrap();
        f1.push_column("m", Column::from_i64(vec![3])).unwrap();
        let mut f2 = ColumnFragments::new(["i"]);
        f2.push_key(vec![Value::Int(1)]).unwrap();
        f2.push_column("m", Column::from_strs(["oops"])).unwrap();
        assert!(matches!(
            merge_fragments(&[f1, f2]),
            Err(DfError::TypeError { .. })
        ));
    }

    #[test]
    fn merge_fragments_validates_inputs() {
        assert!(matches!(merge_fragments(&[]), Err(DfError::Empty(_))));
        let f1 = ColumnFragments::new(["a"]);
        let f2 = ColumnFragments::new(["b"]);
        assert!(matches!(
            merge_fragments(&[f1, f2]),
            Err(DfError::IndexMismatch(_))
        ));
        // push_column length must match the index fragment.
        let mut f = ColumnFragments::new(["i"]);
        f.push_key(vec![Value::Int(0)]).unwrap();
        assert!(matches!(
            f.push_column("m", Column::from_i64(vec![1, 2])),
            Err(DfError::LengthMismatch { .. })
        ));
        f.push_column("m", Column::from_i64(vec![1])).unwrap();
        assert!(matches!(
            f.push_column("m", Column::from_i64(vec![2])),
            Err(DfError::DuplicateColumn(_))
        ));
        // with_keys validates key arity.
        assert!(ColumnFragments::with_keys(["i"], vec![vec![Value::Int(0), Value::Int(1)]]).is_err());
    }
}
