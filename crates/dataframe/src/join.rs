//! Index-aligned joins between frames — the primitive behind composing
//! multiple thicket objects along the column axis (paper §3.2.2).

use crate::column::{Column, ColumnBuilder};
use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::index::{Index, Key};
use std::collections::HashSet;

/// Join strategy over row-index keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinHow {
    /// Keep only keys present in *both* frames (the paper's hierarchical
    /// composition keeps `(node, profile)` pairs present in all inputs).
    Inner,
    /// Keep keys from either frame, null-filling the missing side.
    Outer,
    /// Keep the left frame's keys.
    Left,
}

/// Join two frames on their (identically named) row indices.
///
/// Both indices must be unique; colliding column keys are an error (label
/// the sides with [`DataFrame::with_column_group`] first, as thicket's
/// column-axis composition does).
pub fn join(left: &DataFrame, right: &DataFrame, how: JoinHow) -> Result<DataFrame> {
    if left.index().names() != right.index().names() {
        return Err(DfError::IndexMismatch(format!(
            "level names {:?} vs {:?}",
            left.index().names(),
            right.index().names()
        )));
    }
    if !left.index().is_unique() || !right.index().is_unique() {
        return Err(DfError::IndexMismatch(
            "join requires unique indices on both sides".into(),
        ));
    }
    let lkeys: HashSet<&Key> = left.index().keys().iter().collect();
    let rpos = right.index().positions_by_key();

    // Decide the output key order: left order first, then (for Outer)
    // right-only keys in right order.
    let mut out_keys: Vec<Key> = Vec::new();
    match how {
        JoinHow::Inner => {
            for k in left.index().keys() {
                if rpos.contains_key(k) {
                    out_keys.push(k.clone());
                }
            }
        }
        JoinHow::Left => out_keys = left.index().keys().to_vec(),
        JoinHow::Outer => {
            out_keys = left.index().keys().to_vec();
            for k in right.index().keys() {
                if !lkeys.contains(k) {
                    out_keys.push(k.clone());
                }
            }
        }
    }

    let lpos = left.index().positions_by_key();
    let index = Index::new(left.index().names().to_vec(), out_keys.clone())?;
    let mut out = DataFrame::new(index);

    let gather = |src: &DataFrame,
                  pos: &std::collections::HashMap<Key, Vec<usize>>,
                  col: &Column|
     -> Result<Column> {
        let mut b = ColumnBuilder::with_capacity(out_keys.len());
        for k in &out_keys {
            match pos.get(k) {
                Some(rows) => b.push(col.get(rows[0]))?,
                None => b.push(crate::value::Value::Null)?,
            }
        }
        let mut c = b.finish();
        if c.dtype() == crate::value::DType::Null && col.dtype() != crate::value::DType::Null {
            c = Column::nulls_of(col.dtype(), out_keys.len());
        }
        let _ = src;
        Ok(c)
    };

    for (k, c) in left.columns() {
        if right.has_column(k) {
            return Err(DfError::DuplicateColumn(k.clone()));
        }
        out.insert(k.clone(), gather(left, &lpos, c)?)?;
    }
    for (k, c) in right.columns() {
        out.insert(k.clone(), gather(right, &rpos, c)?)?;
    }
    Ok(out)
}

/// Join many frames left-to-right with the same strategy.
pub fn join_many(frames: &[&DataFrame], how: JoinHow) -> Result<DataFrame> {
    let mut it = frames.iter();
    let first = it.next().ok_or(DfError::Empty("join_many"))?;
    let mut acc = (*first).clone();
    for f in it {
        acc = join(&acc, f, how)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colkey::ColKey;
    use crate::value::Value;

    fn frame(keys: Vec<i64>, col: &str, vals: Vec<f64>) -> DataFrame {
        let index = Index::single("k", keys);
        let mut df = DataFrame::new(index);
        df.insert(col, Column::from_f64(vals)).unwrap();
        df
    }

    #[test]
    fn inner_join_intersects() {
        let a = frame(vec![1, 2, 3], "x", vec![1.0, 2.0, 3.0]);
        let b = frame(vec![2, 3, 4], "y", vec![20.0, 30.0, 40.0]);
        let j = join(&a, &b, JoinHow::Inner).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.column(&ColKey::new("x")).unwrap().numeric_values(), vec![2.0, 3.0]);
        assert_eq!(j.column(&ColKey::new("y")).unwrap().numeric_values(), vec![20.0, 30.0]);
    }

    #[test]
    fn outer_join_null_fills() {
        let a = frame(vec![1, 2], "x", vec![1.0, 2.0]);
        let b = frame(vec![2, 3], "y", vec![20.0, 30.0]);
        let j = join(&a, &b, JoinHow::Outer).unwrap();
        assert_eq!(j.len(), 3);
        let y = j.column(&ColKey::new("y")).unwrap();
        assert!(y.is_null_at(0));
        assert_eq!(y.get(1), Value::Float(20.0));
        let x = j.column(&ColKey::new("x")).unwrap();
        assert!(x.is_null_at(2));
    }

    #[test]
    fn left_join_keeps_left_keys() {
        let a = frame(vec![1, 2], "x", vec![1.0, 2.0]);
        let b = frame(vec![2], "y", vec![20.0]);
        let j = join(&a, &b, JoinHow::Left).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.column(&ColKey::new("y")).unwrap().is_null_at(0));
    }

    #[test]
    fn column_collision_rejected() {
        let a = frame(vec![1], "x", vec![1.0]);
        let b = frame(vec![1], "x", vec![2.0]);
        assert!(matches!(
            join(&a, &b, JoinHow::Inner),
            Err(DfError::DuplicateColumn(_))
        ));
        // Grouping the sides resolves the collision.
        let j = join(
            &a.with_column_group("CPU"),
            &b.with_column_group("GPU"),
            JoinHow::Inner,
        )
        .unwrap();
        assert!(j.has_column(&ColKey::grouped("CPU", "x")));
        assert!(j.has_column(&ColKey::grouped("GPU", "x")));
    }

    #[test]
    fn duplicate_index_rejected() {
        let a = frame(vec![1, 1], "x", vec![1.0, 2.0]);
        let b = frame(vec![1], "y", vec![3.0]);
        assert!(join(&a, &b, JoinHow::Inner).is_err());
    }

    #[test]
    fn mismatched_level_names_rejected() {
        let a = frame(vec![1], "x", vec![1.0]);
        let mut b = DataFrame::new(Index::single("other", vec![1i64]));
        b.insert("y", Column::from_f64(vec![2.0])).unwrap();
        assert!(join(&a, &b, JoinHow::Inner).is_err());
    }

    #[test]
    fn join_many_chains() {
        let a = frame(vec![1, 2, 3], "x", vec![1.0, 2.0, 3.0]);
        let b = frame(vec![2, 3], "y", vec![20.0, 30.0]);
        let c = frame(vec![3], "z", vec![300.0]);
        let j = join_many(&[&a, &b, &c], JoinHow::Inner).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.ncols(), 3);
        assert!(join_many(&[], JoinHow::Inner).is_err());
    }
}
