//! Index-aligned joins between frames — the primitive behind composing
//! multiple thicket objects along the column axis (paper §3.2.2).
//!
//! [`join_many`] is a single-pass k-way hash join: the output key set is
//! computed once over all inputs, then every input's columns are gathered
//! directly into the result through one precomputed row map per frame.
//! The older pairwise formulation survives as [`join_many_pairwise`] — it
//! materializes (and re-hashes, and re-copies) an intermediate frame per
//! input, which is what the k-way path exists to avoid.

use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::index::{Index, Key};
use std::collections::HashSet;

/// Join strategy over row-index keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinHow {
    /// Keep only keys present in *all* frames (the paper's hierarchical
    /// composition keeps `(node, profile)` pairs present in all inputs).
    Inner,
    /// Keep keys from any frame, null-filling the missing sides.
    Outer,
    /// Keep the first (left-most) frame's keys.
    Left,
}

/// Join two frames on their (identically named) row indices.
///
/// Both indices must be unique; colliding column keys are an error (label
/// the sides with [`DataFrame::with_column_group`] first, as thicket's
/// column-axis composition does).
pub fn join(left: &DataFrame, right: &DataFrame, how: JoinHow) -> Result<DataFrame> {
    join_many(&[left, right], how)
}

/// Join many frames on their row indices in one pass.
///
/// Equivalent to folding [`join`] left-to-right but without the
/// intermediate frames: the output key order matches the pairwise chain
/// exactly (first frame's order first; under [`JoinHow::Outer`] each
/// later frame appends its novel keys in its own order).
pub fn join_many(frames: &[&DataFrame], how: JoinHow) -> Result<DataFrame> {
    let first = *frames.first().ok_or(DfError::Empty("join_many"))?;
    let names = first.index().names();
    for f in &frames[1..] {
        if f.index().names() != names {
            return Err(DfError::IndexMismatch(format!(
                "level names {:?} vs {:?}",
                names,
                f.index().names()
            )));
        }
    }

    // One unique-position view per frame. Duplicate keys fail here, so
    // the gathers below never face an ambiguous source row.
    let pos = frames
        .iter()
        .map(|f| f.index().unique_positions())
        .collect::<Result<Vec<_>>>()?;

    let out_keys: Vec<Key> = match how {
        JoinHow::Inner => first
            .index()
            .keys()
            .iter()
            .filter(|k| pos[1..].iter().all(|p| p.contains(k)))
            .cloned()
            .collect(),
        JoinHow::Left => first.index().keys().to_vec(),
        JoinHow::Outer => {
            let mut keys = first.index().keys().to_vec();
            let mut seen: HashSet<&Key> = first.index().keys().iter().collect();
            for f in &frames[1..] {
                for k in f.index().keys() {
                    if seen.insert(k) {
                        keys.push(k.clone());
                    }
                }
            }
            keys
        }
    };

    let index = Index::new(names.to_vec(), out_keys.clone())?;
    let mut out = DataFrame::new(index);
    for (f, p) in frames.iter().zip(&pos) {
        // Output row → source row, computed once per frame and shared by
        // all of that frame's columns.
        let row_map: Vec<Option<usize>> = out_keys.iter().map(|k| p.get(k)).collect();
        for (key, col) in f.columns() {
            // `insert` rejects column-key collisions across inputs.
            out.insert(key.clone(), col.take_opt(&row_map))?;
        }
    }
    Ok(out)
}

/// The pre-k-way formulation: fold [`join`] left-to-right, cloning an
/// accumulator frame per input. Kept as the comparison baseline for the
/// benchmarks and the equivalence property tests.
pub fn join_many_pairwise(frames: &[&DataFrame], how: JoinHow) -> Result<DataFrame> {
    let mut it = frames.iter();
    let first = it.next().ok_or(DfError::Empty("join_many"))?;
    let mut acc = (*first).clone();
    for f in it {
        acc = join(&acc, f, how)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colkey::ColKey;
    use crate::column::Column;
    use crate::value::Value;

    fn frame(keys: Vec<i64>, col: &str, vals: Vec<f64>) -> DataFrame {
        let index = Index::single("k", keys);
        let mut df = DataFrame::new(index);
        df.insert(col, Column::from_f64(vals)).unwrap();
        df
    }

    #[test]
    fn inner_join_intersects() {
        let a = frame(vec![1, 2, 3], "x", vec![1.0, 2.0, 3.0]);
        let b = frame(vec![2, 3, 4], "y", vec![20.0, 30.0, 40.0]);
        let j = join(&a, &b, JoinHow::Inner).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.column(&ColKey::new("x")).unwrap().numeric_values(), vec![2.0, 3.0]);
        assert_eq!(j.column(&ColKey::new("y")).unwrap().numeric_values(), vec![20.0, 30.0]);
    }

    #[test]
    fn outer_join_null_fills() {
        let a = frame(vec![1, 2], "x", vec![1.0, 2.0]);
        let b = frame(vec![2, 3], "y", vec![20.0, 30.0]);
        let j = join(&a, &b, JoinHow::Outer).unwrap();
        assert_eq!(j.len(), 3);
        let y = j.column(&ColKey::new("y")).unwrap();
        assert!(y.is_null_at(0));
        assert_eq!(y.get(1), Value::Float(20.0));
        let x = j.column(&ColKey::new("x")).unwrap();
        assert!(x.is_null_at(2));
    }

    #[test]
    fn left_join_keeps_left_keys() {
        let a = frame(vec![1, 2], "x", vec![1.0, 2.0]);
        let b = frame(vec![2], "y", vec![20.0]);
        let j = join(&a, &b, JoinHow::Left).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.column(&ColKey::new("y")).unwrap().is_null_at(0));
    }

    #[test]
    fn column_collision_rejected() {
        let a = frame(vec![1], "x", vec![1.0]);
        let b = frame(vec![1], "x", vec![2.0]);
        assert!(matches!(
            join(&a, &b, JoinHow::Inner),
            Err(DfError::DuplicateColumn(_))
        ));
        // Grouping the sides resolves the collision.
        let j = join(
            &a.with_column_group("CPU"),
            &b.with_column_group("GPU"),
            JoinHow::Inner,
        )
        .unwrap();
        assert!(j.has_column(&ColKey::grouped("CPU", "x")));
        assert!(j.has_column(&ColKey::grouped("GPU", "x")));
    }

    #[test]
    fn duplicate_index_rejected() {
        let a = frame(vec![1, 1], "x", vec![1.0, 2.0]);
        let b = frame(vec![1], "y", vec![3.0]);
        assert!(join(&a, &b, JoinHow::Inner).is_err());
        // Either side being duplicated is an error.
        assert!(join(&b, &a, JoinHow::Inner).is_err());
    }

    #[test]
    fn mismatched_level_names_rejected() {
        let a = frame(vec![1], "x", vec![1.0]);
        let mut b = DataFrame::new(Index::single("other", vec![1i64]));
        b.insert("y", Column::from_f64(vec![2.0])).unwrap();
        assert!(join(&a, &b, JoinHow::Inner).is_err());
    }

    #[test]
    fn join_many_chains() {
        let a = frame(vec![1, 2, 3], "x", vec![1.0, 2.0, 3.0]);
        let b = frame(vec![2, 3], "y", vec![20.0, 30.0]);
        let c = frame(vec![3], "z", vec![300.0]);
        let j = join_many(&[&a, &b, &c], JoinHow::Inner).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.ncols(), 3);
        assert!(join_many(&[], JoinHow::Inner).is_err());
    }

    #[test]
    fn kway_matches_pairwise_on_every_strategy() {
        let a = frame(vec![1, 2, 3, 5], "x", vec![1.0, 2.0, 3.0, 5.0]);
        let b = frame(vec![5, 2, 7], "y", vec![50.0, 20.0, 70.0]);
        let c = frame(vec![2, 9, 5], "z", vec![200.0, 900.0, 500.0]);
        for how in [JoinHow::Inner, JoinHow::Left, JoinHow::Outer] {
            let kway = join_many(&[&a, &b, &c], how).unwrap();
            let pairwise = join_many_pairwise(&[&a, &b, &c], how).unwrap();
            assert_eq!(kway, pairwise, "mismatch under {how:?}");
        }
    }

    #[test]
    fn single_frame_join_is_identity() {
        let a = frame(vec![3, 1], "x", vec![3.0, 1.0]);
        let j = join_many(&[&a], JoinHow::Inner).unwrap();
        assert_eq!(j, a);
    }
}
