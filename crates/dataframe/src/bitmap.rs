//! Selection bitmaps: one bit per row, packed into `u64` words.
//!
//! The vectorized predicate evaluator ([`crate::PredExpr`]) produces and
//! combines these instead of `Vec<bool>` so `And`/`Or`/`Not` run 64 rows
//! per instruction, an all-dead word lets a leaf skip 64 rows without
//! touching column storage, and emptiness checks (`any`) short-circuit
//! whole subtrees.
//!
//! Invariant: bits at positions `>= len` are always zero, so word-wise
//! reductions (`count_ones`, `any`) need no trailing-bit masking.

use std::fmt;

/// A fixed-length bitmap over row positions.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap[{}/{} set]", self.count_ones(), self.len)
    }
}

impl Bitmap {
    /// All-clear bitmap of `len` rows.
    pub fn zeros(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-set bitmap of `len` rows (trailing bits clear).
    pub fn ones(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    /// Build from a row predicate.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Bitmap {
        let mut b = Bitmap::zeros(len);
        for i in 0..len {
            if f(i) {
                b.set(i);
            }
        }
        b
    }

    /// Build from a bool slice.
    pub fn from_bools(bits: &[bool]) -> Bitmap {
        Bitmap::from_fn(bits.len(), |i| bits[i])
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`. Panics if out of bounds.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bitmap index {i} out of bounds");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`. Panics if out of bounds.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of bounds");
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// `true` if every bit is set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Positions of the set bits, ascending.
    pub fn positions(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                bits &= bits - 1;
            }
        }
        out
    }

    /// `self &= other`. Panics on length mismatch.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`. Panics on length mismatch.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= !other`. Panics on length mismatch.
    pub fn and_not_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Flip every bit (trailing bits stay clear).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// The packed words (LSB-first within each word), for word-at-a-time
    /// consumers like the evaluator's dead-word skip.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let z = Bitmap::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        assert!(!z.any());
        let o = Bitmap::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.all());
        // Trailing bits are clear: NOT of all-ones is empty.
        let mut n = o.clone();
        n.not_assign();
        assert!(!n.any());
    }

    #[test]
    fn set_get_ones() {
        let mut b = Bitmap::zeros(130);
        for i in [0, 63, 64, 129] {
            b.set(i);
        }
        assert!(b.get(63) && b.get(64) && !b.get(65));
        assert_eq!(b.positions(), vec![0, 63, 64, 129]);
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmap::from_fn(100, |i| i % 2 == 0);
        let b = Bitmap::from_fn(100, |i| i % 3 == 0);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.positions(), (0..100).filter(|i| i % 6 == 0).collect::<Vec<_>>());
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(
            or.count_ones(),
            (0..100).filter(|i| i % 2 == 0 || i % 3 == 0).count()
        );
        let mut diff = a.clone();
        diff.and_not_assign(&b);
        assert_eq!(
            diff.count_ones(),
            (0..100).filter(|i| i % 2 == 0 && i % 3 != 0).count()
        );
        let mut not = a.clone();
        not.not_assign();
        assert_eq!(not.count_ones(), 50);
        assert!(not.get(1) && !not.get(0));
    }

    #[test]
    fn from_bools_round_trip() {
        let bits: Vec<bool> = (0..67).map(|i| i % 5 == 0).collect();
        let b = Bitmap::from_bools(&bits);
        assert_eq!(b.len(), 67);
        for (i, &want) in bits.iter().enumerate() {
            assert_eq!(b.get(i), want);
        }
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::zeros(0);
        assert!(b.is_empty());
        assert!(!b.any());
        assert!(b.all()); // vacuously
        assert!(b.positions().is_empty());
    }
}
