//! # thicket-dataframe
//!
//! A from-scratch, multi-indexed, column-oriented dataframe — the pandas
//! stand-in underneath the Thicket reproduction. It provides exactly the
//! primitives the thicket object needs (paper §3):
//!
//! * typed columns with null masks ([`Column`]),
//! * hierarchical row indices such as *(call-tree node, profile)*
//!   ([`Index`]),
//! * optionally grouped column keys for composed `CPU`/`GPU` tables
//!   ([`ColKey`]),
//! * filtering, sorting, selection ([`DataFrame`]),
//! * group-by with aggregation ([`GroupBy`], [`AggFn`]) for the aggregated
//!   statistics table,
//! * index-aligned joins ([`join`]) for column-axis composition,
//! * text-table and CSV rendering ([`render`], [`to_csv`]).
//!
//! ```
//! use thicket_dataframe::{DataFrame, Index, Column, ColKey, AggFn, GroupBy};
//!
//! let index = Index::pairs(("node", "profile"),
//!     vec![("MAIN", 1i64), ("MAIN", 2), ("FOO", 1), ("FOO", 2)]);
//! let mut df = DataFrame::new(index);
//! df.insert("time", Column::from_f64(vec![4.0, 4.4, 1.0, 1.2])).unwrap();
//!
//! let stats = thicket_dataframe::GroupBy::by_levels(&df, &["node"]).unwrap()
//!     .agg(AggFn::Mean).unwrap();
//! assert_eq!(stats.column(&ColKey::new("time_mean")).unwrap()
//!     .numeric_values(), vec![4.2, 1.1]);
//! ```

#![warn(missing_docs)]

mod agg;
mod arith;
mod bitmap;
mod colkey;
mod csv;
mod column;
mod display;
mod error;
mod expr;
mod frame;
mod groupby;
mod index;
mod intern;
mod summary;
mod join;
mod value;

pub use agg::AggFn;
pub use bitmap::Bitmap;
pub use colkey::ColKey;
pub use expr::{BoundSource, FieldView, PredExpr, PredOp, PredSource, StrMatch};
pub use column::{Column, ColumnBuilder, ColumnData};
pub use csv::from_csv;
pub use display::{render, to_csv};
pub use error::{DfError, Result};
pub use frame::{merge_fragments, ColumnFragments, DataFrame, FrameBuilder, RowRef};
pub use groupby::GroupBy;
pub use index::{Index, Key, UniquePositions};
pub use intern::{intern, Interner};
pub use join::{join, join_many, join_many_pairwise, JoinHow};
pub use value::{DType, Value};
