//! Typed column storage with a validity mask.
//!
//! Bulk data stays in monomorphic `Vec`s (`Vec<f64>`, `Vec<i64>`, ...) so
//! numeric reductions run over contiguous memory; [`Value`] only appears at
//! the cell-access boundary. Missing cells are tracked by an optional
//! validity mask — `None` means "all valid", which keeps fully-dense columns
//! (the common case for performance metrics) mask-free.

use crate::error::{DfError, Result};
use crate::value::{DType, Value};
use std::sync::Arc;

/// Typed backing storage for a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All-null column of a given length.
    Null(usize),
    /// Boolean column.
    Bool(Vec<bool>),
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<Arc<str>>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Null(n) => *n,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    fn dtype(&self) -> DType {
        match self {
            ColumnData::Null(_) => DType::Null,
            ColumnData::Bool(_) => DType::Bool,
            ColumnData::Int(_) => DType::Int,
            ColumnData::Float(_) => DType::Float,
            ColumnData::Str(_) => DType::Str,
        }
    }
}

/// A single dataframe column: typed data plus an optional validity mask.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    /// `None` = every cell valid; otherwise `valid[i]` says cell `i` is
    /// non-null. Always the same length as `data`.
    valid: Option<Vec<bool>>,
}

impl PartialEq for Column {
    /// Mask-aware, total equality. Cells compare through [`Column::get`],
    /// so masked cells are equal regardless of the storage beneath them
    /// (masked float cells hold `NaN`, which would poison a raw storage
    /// compare), and valid floats follow `Value`'s total order, where
    /// `NaN == NaN`.
    fn eq(&self, other: &Self) -> bool {
        self.dtype() == other.dtype()
            && self.len() == other.len()
            && (0..self.len()).all(|i| self.get(i) == other.get(i))
    }
}

impl Eq for Column {}

impl Column {
    /// Build a dense float column.
    pub fn from_f64(values: Vec<f64>) -> Self {
        Column {
            data: ColumnData::Float(values),
            valid: None,
        }
    }

    /// Build a dense integer column.
    pub fn from_i64(values: Vec<i64>) -> Self {
        Column {
            data: ColumnData::Int(values),
            valid: None,
        }
    }

    /// Build a dense boolean column.
    pub fn from_bool(values: Vec<bool>) -> Self {
        Column {
            data: ColumnData::Bool(values),
            valid: None,
        }
    }

    /// Build a dense string column.
    pub fn from_strs<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Self {
        Column {
            data: ColumnData::Str(values.into_iter().map(|s| Arc::from(s.as_ref())).collect()),
            valid: None,
        }
    }

    /// Build a float column from optional values (`None` = null) without
    /// per-cell [`Value`] boxing — the fast path for assembling metric
    /// column fragments during ingest.
    pub fn from_opt_f64(values: &[Option<f64>]) -> Self {
        let data: Vec<f64> = values.iter().map(|v| v.unwrap_or(f64::NAN)).collect();
        let valid: Option<Vec<bool>> = if values.iter().any(|v| v.is_none()) {
            Some(values.iter().map(|v| v.is_some()).collect())
        } else {
            None
        };
        Column {
            data: ColumnData::Float(data),
            valid,
        }
    }

    /// Build a column from dynamic values, inferring the narrowest common
    /// dtype (`Int` + `Float` promotes to `Float`; incompatible mixes fail).
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Result<Self> {
        let mut b = ColumnBuilder::new();
        for v in values {
            b.push(v)?;
        }
        Ok(b.finish())
    }

    /// Number of cells (including nulls).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's dtype.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Count of non-null cells.
    pub fn count_valid(&self) -> usize {
        match &self.valid {
            None => self.len(),
            Some(mask) => mask.iter().filter(|v| **v).count(),
        }
    }

    /// `true` if cell `i` is null. Panics if out of bounds.
    pub fn is_null_at(&self, i: usize) -> bool {
        assert!(i < self.len(), "column index {i} out of bounds");
        match &self.valid {
            None => matches!(self.data, ColumnData::Null(_)),
            Some(mask) => !mask[i],
        }
    }

    /// Cell access as a dynamic [`Value`]. Panics if out of bounds.
    pub fn get(&self, i: usize) -> Value {
        if self.is_null_at(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Null(_) => Value::Null,
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Numeric view of cell `i` (`None` for null or non-numeric).
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        if self.is_null_at(i) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[i] as f64),
            ColumnData::Float(v) => Some(v[i]),
            _ => None,
        }
    }

    /// Borrow the raw float storage if this is a dense float column.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match (&self.data, &self.valid) {
            (ColumnData::Float(v), None) => Some(v),
            _ => None,
        }
    }

    /// Collect the non-null numeric values of the column.
    pub fn numeric_values(&self) -> Vec<f64> {
        (0..self.len()).filter_map(|i| self.get_f64(i)).collect()
    }

    /// Iterate cells as dynamic values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// New column containing `rows` (in order, duplicates allowed).
    /// Dtype is preserved and the typed storage is gathered directly —
    /// no per-cell [`Value`] boxing — so reordering a whole frame (e.g.
    /// `sort_by_index` after an ingest merge) is a set of `Vec` gathers.
    pub fn take(&self, rows: &[usize]) -> Column {
        let any_null = match &self.valid {
            None => matches!(self.data, ColumnData::Null(_)) && !rows.is_empty(),
            Some(mask) => rows.iter().any(|&r| !mask[r]),
        };
        let valid = if any_null {
            Some(rows.iter().map(|&r| !self.is_null_at(r)).collect())
        } else {
            None
        };
        let data = match &self.data {
            ColumnData::Null(_) => ColumnData::Null(rows.len()),
            ColumnData::Bool(v) => ColumnData::Bool(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::Int(v) => ColumnData::Int(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::Float(v) => ColumnData::Float(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(rows.iter().map(|&r| v[r].clone()).collect())
            }
        };
        Column { data, valid }
    }

    /// Gather with gaps: cell `i` of the result is the source cell at
    /// `rows[i]`, or null where `rows[i]` is `None`. Dtype is preserved
    /// and the typed storage is copied directly — no per-cell [`Value`]
    /// boxing — which is what makes single-pass joins cheap.
    pub fn take_opt(&self, rows: &[Option<usize>]) -> Column {
        let n = rows.len();
        let valid: Vec<bool> = rows
            .iter()
            .map(|r| match r {
                Some(i) => !self.is_null_at(*i),
                None => false,
            })
            .collect();
        let data = match &self.data {
            ColumnData::Null(_) => ColumnData::Null(n),
            ColumnData::Bool(v) => ColumnData::Bool(
                rows.iter().map(|r| r.map(|i| v[i]).unwrap_or(false)).collect(),
            ),
            ColumnData::Int(v) => ColumnData::Int(
                rows.iter().map(|r| r.map(|i| v[i]).unwrap_or(0)).collect(),
            ),
            ColumnData::Float(v) => ColumnData::Float(
                rows.iter()
                    .map(|r| r.map(|i| v[i]).unwrap_or(f64::NAN))
                    .collect(),
            ),
            ColumnData::Str(v) => ColumnData::Str(
                rows.iter()
                    .map(|r| match r {
                        Some(i) => v[*i].clone(),
                        None => Arc::from(""),
                    })
                    .collect(),
            ),
        };
        let valid = if valid.iter().all(|&b| b) {
            None
        } else {
            Some(valid)
        };
        Column { data, valid }
    }

    /// An all-null column of dtype `dt` and length `n`.
    pub fn nulls_of(dt: DType, n: usize) -> Column {
        let data = match dt {
            DType::Null => ColumnData::Null(n),
            DType::Bool => ColumnData::Bool(vec![false; n]),
            DType::Int => ColumnData::Int(vec![0; n]),
            DType::Float => ColumnData::Float(vec![f64::NAN; n]),
            DType::Str => ColumnData::Str(vec![Arc::from(""); n]),
        };
        Column {
            data,
            valid: Some(vec![false; n]),
        }
    }

    /// The dtype this column contributes to a concatenation: an all-null
    /// column is dtype-neutral (`Null`) regardless of its storage, exactly
    /// as its cells would read back through [`Column::get`]. This is what
    /// keeps the typed concat kernels below byte-identical to the
    /// cell-by-cell [`ColumnBuilder`] path they replaced.
    pub(crate) fn effective_dtype(&self) -> DType {
        if self.count_valid() == 0 {
            DType::Null
        } else {
            self.dtype()
        }
    }

    /// Append `n` nulls, keeping the dtype.
    pub fn push_nulls(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let old_len = self.len();
        match &mut self.data {
            ColumnData::Null(k) => *k += n,
            ColumnData::Bool(v) => v.extend(std::iter::repeat_n(false, n)),
            ColumnData::Int(v) => v.extend(std::iter::repeat_n(0, n)),
            ColumnData::Float(v) => v.extend(std::iter::repeat_n(f64::NAN, n)),
            ColumnData::Str(v) => v.extend(std::iter::repeat_n(Arc::from(""), n)),
        }
        if !matches!(self.data, ColumnData::Null(_)) {
            let valid = self.valid.get_or_insert_with(|| vec![true; old_len]);
            valid.extend(std::iter::repeat_n(false, n));
        }
    }

    /// Append the cells of `other`, promoting dtypes when needed.
    ///
    /// Runs as a typed `Vec` concatenation (`Int` casts to `Float` when
    /// promoting) rather than re-boxing every cell through [`Value`];
    /// the result is cell-for-cell identical to the old builder path.
    pub fn append(&mut self, other: &Column) -> Result<()> {
        let combined = self
            .dtype()
            .promote(other.dtype())
            .ok_or_else(|| DfError::type_error(self.dtype(), other.dtype()))?;
        // Cell-level dtype: all-null sides are neutral, so e.g. a masked-out
        // Float column + an Int column concatenates to Int (what a builder
        // over the cells would infer), not the column-level Float.
        let target = match self
            .effective_dtype()
            .promote(other.effective_dtype())
        {
            Some(DType::Null) | None => combined,
            Some(t) => t,
        };
        *self = Column::concat_parts(target, &[ConcatPart::Col(self), ConcatPart::Col(other)]);
        Ok(())
    }

    /// Concatenate `parts` into one column of dtype `target` in a single
    /// allocation per buffer — the merge kernel behind
    /// [`crate::merge_fragments`] and [`Column::append`].
    ///
    /// Every `Col` part must either be all-null (any storage dtype; it
    /// contributes a null run) or have a dtype that promotes into
    /// `target` (`Int` casts into a `Float` target). Callers resolve
    /// `target` from the parts' [`Column::effective_dtype`]s first.
    pub(crate) fn concat_parts(target: DType, parts: &[ConcatPart<'_>]) -> Column {
        use std::iter::repeat_n;
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let n_valid: usize = parts.iter().map(|p| p.count_valid()).sum();

        let valid: Option<Vec<bool>> = if target == DType::Null || n_valid == total {
            // All-null columns keep the builder convention: an explicit
            // all-false mask when non-empty, no mask when empty.
            (target == DType::Null && total > 0).then(|| vec![false; total])
        } else {
            let mut mask = Vec::with_capacity(total);
            for p in parts {
                match p {
                    ConcatPart::Nulls(n) => mask.extend(repeat_n(false, *n)),
                    ConcatPart::Col(c) => match &c.valid {
                        Some(v) => mask.extend_from_slice(v),
                        None => mask.extend(repeat_n(
                            !matches!(c.data, ColumnData::Null(_)),
                            c.len(),
                        )),
                    },
                }
            }
            Some(mask)
        };

        macro_rules! gather {
            ($variant:ident, $ty:ty, $default:expr, $cast:expr) => {{
                let mut v: Vec<$ty> = Vec::with_capacity(total);
                for p in parts {
                    match p {
                        ConcatPart::Nulls(n) => v.extend(repeat_n($default, *n)),
                        ConcatPart::Col(c) => {
                            if c.effective_dtype() == DType::Null {
                                v.extend(repeat_n($default, c.len()));
                            } else {
                                #[allow(clippy::redundant_closure_call)]
                                ($cast)(&mut v, &c.data);
                            }
                        }
                    }
                }
                ColumnData::$variant(v)
            }};
        }

        let data = match target {
            DType::Null => ColumnData::Null(total),
            DType::Bool => gather!(Bool, bool, false, |v: &mut Vec<bool>,
                                                       d: &ColumnData| {
                match d {
                    ColumnData::Bool(s) => v.extend_from_slice(s),
                    _ => unreachable!("part dtype checked against target"),
                }
            }),
            DType::Int => gather!(Int, i64, 0, |v: &mut Vec<i64>, d: &ColumnData| {
                match d {
                    ColumnData::Int(s) => v.extend_from_slice(s),
                    _ => unreachable!("part dtype checked against target"),
                }
            }),
            DType::Float => gather!(Float, f64, f64::NAN, |v: &mut Vec<f64>,
                                                           d: &ColumnData| {
                match d {
                    ColumnData::Float(s) => v.extend_from_slice(s),
                    // Int promotes into a Float target.
                    ColumnData::Int(s) => v.extend(s.iter().map(|&i| i as f64)),
                    _ => unreachable!("part dtype checked against target"),
                }
            }),
            DType::Str => gather!(Str, Arc<str>, Arc::from(""), |v: &mut Vec<
                Arc<str>,
            >,
                                                                 d: &ColumnData| {
                match d {
                    ColumnData::Str(s) => v.extend_from_slice(s),
                    _ => unreachable!("part dtype checked against target"),
                }
            }),
        };
        Column { data, valid }
    }

    /// Borrow the typed backing storage (for the vectorized predicate
    /// evaluator, which loops over the monomorphic `Vec`s directly).
    pub(crate) fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Borrow the validity mask (`None` = every cell valid).
    pub(crate) fn valid_mask(&self) -> Option<&[bool]> {
        self.valid.as_deref()
    }

    /// Cast a numeric column to float (no-op for float columns).
    pub fn cast_float(&self) -> Result<Column> {
        match self.dtype() {
            DType::Float => Ok(self.clone()),
            DType::Int | DType::Null => {
                let vals: Vec<Value> = self
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) => Value::Float(i as f64),
                        other => other,
                    })
                    .collect();
                let mut c = Column::from_values(vals)?;
                if c.dtype() == DType::Null {
                    c = Column::nulls_of(DType::Float, self.len());
                }
                Ok(c)
            }
            other => Err(DfError::type_error(DType::Float, other)),
        }
    }
}

/// One input to [`Column::concat_parts`]: either a borrowed source column
/// or a run of nulls (a fragment that never saw the column).
#[derive(Debug, Clone, Copy)]
pub(crate) enum ConcatPart<'a> {
    /// A source column, appended cell-for-cell.
    Col(&'a Column),
    /// `n` nulls.
    Nulls(usize),
}

impl ConcatPart<'_> {
    fn len(&self) -> usize {
        match self {
            ConcatPart::Col(c) => c.len(),
            ConcatPart::Nulls(n) => *n,
        }
    }

    fn count_valid(&self) -> usize {
        match self {
            ConcatPart::Col(c) => c.count_valid(),
            ConcatPart::Nulls(_) => 0,
        }
    }
}

/// Incremental builder that infers and promotes dtypes as values arrive.
#[derive(Debug)]
pub struct ColumnBuilder {
    values: Vec<Value>,
    dtype: DType,
    has_null: bool,
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        ColumnBuilder {
            values: Vec::new(),
            dtype: DType::Null,
            has_null: false,
        }
    }

    /// New empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ColumnBuilder {
            values: Vec::with_capacity(cap),
            dtype: DType::Null,
            has_null: false,
        }
    }

    /// Append one value, promoting the running dtype.
    pub fn push(&mut self, v: Value) -> Result<()> {
        let dt = v.dtype();
        if dt == DType::Null {
            self.has_null = true;
        } else {
            self.dtype = self
                .dtype
                .promote(dt)
                .ok_or_else(|| DfError::type_error(self.dtype, dt))?;
        }
        self.values.push(v);
        Ok(())
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Materialize the typed column.
    pub fn finish(self) -> Column {
        let n = self.values.len();
        let valid: Option<Vec<bool>> = if self.has_null {
            Some(self.values.iter().map(|v| !v.is_null()).collect())
        } else {
            None
        };
        let data = match self.dtype {
            DType::Null => ColumnData::Null(n),
            DType::Bool => ColumnData::Bool(
                self.values
                    .iter()
                    .map(|v| v.as_bool().unwrap_or(false))
                    .collect(),
            ),
            DType::Int => ColumnData::Int(
                self.values
                    .iter()
                    .map(|v| v.as_i64().unwrap_or(0))
                    .collect(),
            ),
            DType::Float => ColumnData::Float(
                self.values
                    .iter()
                    .map(|v| v.as_f64().unwrap_or(f64::NAN))
                    .collect(),
            ),
            DType::Str => ColumnData::Str(
                self.values
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => s.clone(),
                        _ => Arc::from(""),
                    })
                    .collect(),
            ),
        };
        Column { data, valid }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_constructors() {
        let c = Column::from_f64(vec![1.0, 2.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.count_valid(), 2);
        assert_eq!(c.get(1), Value::Float(2.0));
        assert_eq!(c.as_f64_slice(), Some(&[1.0, 2.0][..]));
    }

    #[test]
    fn builder_promotes_int_to_float() {
        let c = Column::from_values(vec![Value::Int(1), Value::Float(2.5)]).unwrap();
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.get(0), Value::Float(1.0));
    }

    #[test]
    fn builder_rejects_mixed_str_num() {
        let err = Column::from_values(vec![Value::Int(1), Value::from("x")]).unwrap_err();
        assert!(err.to_string().contains("type"));
    }

    #[test]
    fn nulls_tracked_by_mask() {
        let c = Column::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]).unwrap();
        assert_eq!(c.dtype(), DType::Int);
        assert_eq!(c.count_valid(), 2);
        assert!(c.is_null_at(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.numeric_values(), vec![1.0, 3.0]);
    }

    #[test]
    fn take_reorders_and_duplicates() {
        let c = Column::from_i64(vec![10, 20, 30]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![
            Value::Int(30),
            Value::Int(10),
            Value::Int(10)
        ]);
    }

    #[test]
    fn take_opt_gathers_with_gaps() {
        let c = Column::from_i64(vec![10, 20, 30]);
        let t = c.take_opt(&[Some(2), None, Some(0)]);
        assert_eq!(t.dtype(), DType::Int);
        assert_eq!(t.get(0), Value::Int(30));
        assert!(t.is_null_at(1));
        assert_eq!(t.get(2), Value::Int(10));
        // Source nulls stay null through the gather.
        let m = Column::from_values(vec![Value::Int(1), Value::Null]).unwrap();
        let g = m.take_opt(&[Some(1), Some(0)]);
        assert!(g.is_null_at(0));
        assert_eq!(g.get(1), Value::Int(1));
        // Gap-free gathers of dense columns stay mask-free.
        let d = c.take_opt(&[Some(0), Some(1)]);
        assert_eq!(d.count_valid(), 2);
        assert_eq!(d.as_f64_slice(), None); // int column
        // All-gap gather of a typed column keeps the dtype.
        let all_null = c.take_opt(&[None, None]);
        assert_eq!(all_null.dtype(), DType::Int);
        assert_eq!(all_null.count_valid(), 0);
    }

    #[test]
    fn equality_ignores_storage_under_mask() {
        // Masked float cells hold NaN in raw storage; equality must not
        // compare that garbage (and NaN != NaN would reject even a column
        // compared against itself).
        let a = Column::from_values(vec![Value::Float(1.0), Value::Null]).unwrap();
        let b = Column::from_values(vec![Value::Float(1.0), Value::Null]).unwrap();
        assert_eq!(a, a);
        assert_eq!(a, b);
        // Valid NaN cells compare equal under Value's total order.
        let n = Column::from_f64(vec![f64::NAN]);
        assert_eq!(n, Column::from_f64(vec![f64::NAN]));
        assert_ne!(n, Column::from_f64(vec![0.0]));
        // Dtype still distinguishes: all-null Int vs all-null Float.
        let ni = Column::from_i64(vec![7]).take_opt(&[None]);
        let nf = Column::from_f64(vec![7.0]).take_opt(&[None]);
        assert_ne!(ni, nf);
    }

    #[test]
    fn take_all_nulls_keeps_dtype() {
        let c = Column::from_values(vec![Value::Null, Value::Int(5)]).unwrap();
        let t = c.take(&[0, 0]);
        assert_eq!(t.dtype(), DType::Int);
        assert_eq!(t.count_valid(), 0);
    }

    #[test]
    fn append_promotes() {
        let mut a = Column::from_i64(vec![1, 2]);
        let b = Column::from_f64(vec![0.5]);
        a.append(&b).unwrap();
        assert_eq!(a.dtype(), DType::Float);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(2), Value::Float(0.5));
    }

    #[test]
    fn append_incompatible_fails() {
        let mut a = Column::from_i64(vec![1]);
        let b = Column::from_strs(["x"]);
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn cast_float() {
        let c = Column::from_i64(vec![1, 2]).cast_float().unwrap();
        assert_eq!(c.dtype(), DType::Float);
        assert!(Column::from_strs(["a"]).cast_float().is_err());
        let n = Column::nulls_of(DType::Null, 2).cast_float().unwrap();
        assert_eq!(n.dtype(), DType::Float);
        assert_eq!(n.count_valid(), 0);
    }

    #[test]
    fn from_opt_f64_matches_builder() {
        let dense = Column::from_opt_f64(&[Some(1.0), Some(2.0)]);
        assert_eq!(dense, Column::from_f64(vec![1.0, 2.0]));
        assert_eq!(dense.as_f64_slice(), Some(&[1.0, 2.0][..]));
        let gappy = Column::from_opt_f64(&[Some(1.0), None, Some(3.0)]);
        assert_eq!(
            gappy,
            Column::from_values(vec![Value::Float(1.0), Value::Null, Value::Float(3.0)])
                .unwrap()
        );
        assert!(gappy.is_null_at(1));
    }

    #[test]
    fn push_nulls_extends_with_mask() {
        let mut c = Column::from_i64(vec![1, 2]);
        c.push_nulls(0);
        assert_eq!(c.count_valid(), 2);
        c.push_nulls(2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.dtype(), DType::Int);
        assert_eq!(c.count_valid(), 2);
        assert!(c.is_null_at(2) && c.is_null_at(3));
        assert_eq!(c.get(1), Value::Int(2));
        // All-null storage stays dtype-less.
        let mut n = Column::nulls_of(DType::Null, 1);
        n.push_nulls(3);
        assert_eq!(n.len(), 4);
        assert_eq!(n.dtype(), DType::Null);
    }

    #[test]
    fn append_uses_cell_level_dtype_like_builder() {
        // A fully masked Float column is dtype-neutral cell-wise: the old
        // builder path inferred Int here, and the typed path must agree.
        let mut masked_float = Column::from_f64(vec![7.0]).take_opt(&[None]);
        assert_eq!(masked_float.dtype(), DType::Float);
        masked_float.append(&Column::from_i64(vec![5])).unwrap();
        assert_eq!(masked_float.dtype(), DType::Int);
        assert!(masked_float.is_null_at(0));
        assert_eq!(masked_float.get(1), Value::Int(5));
        // Both sides all-null: dtype falls back to the column-level promote.
        let mut a = Column::from_i64(vec![1]).take_opt(&[None]);
        a.append(&Column::from_f64(vec![1.0]).take_opt(&[None])).unwrap();
        assert_eq!(a.dtype(), DType::Float);
        assert_eq!(a.count_valid(), 0);
    }

    #[test]
    fn append_preserves_masks_and_values() {
        let mut a = Column::from_values(vec![Value::Int(1), Value::Null]).unwrap();
        let b = Column::from_values(vec![Value::Null, Value::Int(4)]).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![Value::Int(1), Value::Null, Value::Null, Value::Int(4)]
        );
        // Dense + dense stays mask-free.
        let mut d = Column::from_strs(["x"]);
        d.append(&Column::from_strs(["y"])).unwrap();
        assert_eq!(d.count_valid(), 2);
    }

    #[test]
    fn all_null_column() {
        let c = Column::nulls_of(DType::Float, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.count_valid(), 0);
        assert!(c.numeric_values().is_empty());
    }
}
