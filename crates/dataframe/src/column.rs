//! Typed column storage with a validity mask.
//!
//! Bulk data stays in monomorphic `Vec`s (`Vec<f64>`, `Vec<i64>`, ...) so
//! numeric reductions run over contiguous memory; [`Value`] only appears at
//! the cell-access boundary. Missing cells are tracked by an optional
//! validity mask — `None` means "all valid", which keeps fully-dense columns
//! (the common case for performance metrics) mask-free.

use crate::error::{DfError, Result};
use crate::value::{DType, Value};
use std::sync::Arc;

/// Typed backing storage for a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All-null column of a given length.
    Null(usize),
    /// Boolean column.
    Bool(Vec<bool>),
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<Arc<str>>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Null(n) => *n,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    fn dtype(&self) -> DType {
        match self {
            ColumnData::Null(_) => DType::Null,
            ColumnData::Bool(_) => DType::Bool,
            ColumnData::Int(_) => DType::Int,
            ColumnData::Float(_) => DType::Float,
            ColumnData::Str(_) => DType::Str,
        }
    }
}

/// A single dataframe column: typed data plus an optional validity mask.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    /// `None` = every cell valid; otherwise `valid[i]` says cell `i` is
    /// non-null. Always the same length as `data`.
    valid: Option<Vec<bool>>,
}

impl PartialEq for Column {
    /// Mask-aware, total equality. Cells compare through [`Column::get`],
    /// so masked cells are equal regardless of the storage beneath them
    /// (masked float cells hold `NaN`, which would poison a raw storage
    /// compare), and valid floats follow `Value`'s total order, where
    /// `NaN == NaN`.
    fn eq(&self, other: &Self) -> bool {
        self.dtype() == other.dtype()
            && self.len() == other.len()
            && (0..self.len()).all(|i| self.get(i) == other.get(i))
    }
}

impl Eq for Column {}

impl Column {
    /// Build a dense float column.
    pub fn from_f64(values: Vec<f64>) -> Self {
        Column {
            data: ColumnData::Float(values),
            valid: None,
        }
    }

    /// Build a dense integer column.
    pub fn from_i64(values: Vec<i64>) -> Self {
        Column {
            data: ColumnData::Int(values),
            valid: None,
        }
    }

    /// Build a dense boolean column.
    pub fn from_bool(values: Vec<bool>) -> Self {
        Column {
            data: ColumnData::Bool(values),
            valid: None,
        }
    }

    /// Build a dense string column.
    pub fn from_strs<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Self {
        Column {
            data: ColumnData::Str(values.into_iter().map(|s| Arc::from(s.as_ref())).collect()),
            valid: None,
        }
    }

    /// Build a column from dynamic values, inferring the narrowest common
    /// dtype (`Int` + `Float` promotes to `Float`; incompatible mixes fail).
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Result<Self> {
        let mut b = ColumnBuilder::new();
        for v in values {
            b.push(v)?;
        }
        Ok(b.finish())
    }

    /// Number of cells (including nulls).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's dtype.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Count of non-null cells.
    pub fn count_valid(&self) -> usize {
        match &self.valid {
            None => self.len(),
            Some(mask) => mask.iter().filter(|v| **v).count(),
        }
    }

    /// `true` if cell `i` is null. Panics if out of bounds.
    pub fn is_null_at(&self, i: usize) -> bool {
        assert!(i < self.len(), "column index {i} out of bounds");
        match &self.valid {
            None => matches!(self.data, ColumnData::Null(_)),
            Some(mask) => !mask[i],
        }
    }

    /// Cell access as a dynamic [`Value`]. Panics if out of bounds.
    pub fn get(&self, i: usize) -> Value {
        if self.is_null_at(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Null(_) => Value::Null,
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Numeric view of cell `i` (`None` for null or non-numeric).
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        if self.is_null_at(i) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[i] as f64),
            ColumnData::Float(v) => Some(v[i]),
            _ => None,
        }
    }

    /// Borrow the raw float storage if this is a dense float column.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match (&self.data, &self.valid) {
            (ColumnData::Float(v), None) => Some(v),
            _ => None,
        }
    }

    /// Collect the non-null numeric values of the column.
    pub fn numeric_values(&self) -> Vec<f64> {
        (0..self.len()).filter_map(|i| self.get_f64(i)).collect()
    }

    /// Iterate cells as dynamic values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// New column containing `rows` (in order, duplicates allowed).
    pub fn take(&self, rows: &[usize]) -> Column {
        let mut b = ColumnBuilder::new();
        for &r in rows {
            b.push(self.get(r)).expect("take preserves dtype");
        }
        let mut out = b.finish();
        // An all-null selection from a typed column keeps the dtype.
        if out.dtype() == DType::Null && self.dtype() != DType::Null {
            out = Column::nulls_of(self.dtype(), rows.len());
        }
        out
    }

    /// Gather with gaps: cell `i` of the result is the source cell at
    /// `rows[i]`, or null where `rows[i]` is `None`. Dtype is preserved
    /// and the typed storage is copied directly — no per-cell [`Value`]
    /// boxing — which is what makes single-pass joins cheap.
    pub fn take_opt(&self, rows: &[Option<usize>]) -> Column {
        let n = rows.len();
        let valid: Vec<bool> = rows
            .iter()
            .map(|r| match r {
                Some(i) => !self.is_null_at(*i),
                None => false,
            })
            .collect();
        let data = match &self.data {
            ColumnData::Null(_) => ColumnData::Null(n),
            ColumnData::Bool(v) => ColumnData::Bool(
                rows.iter().map(|r| r.map(|i| v[i]).unwrap_or(false)).collect(),
            ),
            ColumnData::Int(v) => ColumnData::Int(
                rows.iter().map(|r| r.map(|i| v[i]).unwrap_or(0)).collect(),
            ),
            ColumnData::Float(v) => ColumnData::Float(
                rows.iter()
                    .map(|r| r.map(|i| v[i]).unwrap_or(f64::NAN))
                    .collect(),
            ),
            ColumnData::Str(v) => ColumnData::Str(
                rows.iter()
                    .map(|r| match r {
                        Some(i) => v[*i].clone(),
                        None => Arc::from(""),
                    })
                    .collect(),
            ),
        };
        let valid = if valid.iter().all(|&b| b) {
            None
        } else {
            Some(valid)
        };
        Column { data, valid }
    }

    /// An all-null column of dtype `dt` and length `n`.
    pub fn nulls_of(dt: DType, n: usize) -> Column {
        let data = match dt {
            DType::Null => ColumnData::Null(n),
            DType::Bool => ColumnData::Bool(vec![false; n]),
            DType::Int => ColumnData::Int(vec![0; n]),
            DType::Float => ColumnData::Float(vec![f64::NAN; n]),
            DType::Str => ColumnData::Str(vec![Arc::from(""); n]),
        };
        Column {
            data,
            valid: Some(vec![false; n]),
        }
    }

    /// Append the cells of `other`, promoting dtypes when needed.
    pub fn append(&mut self, other: &Column) -> Result<()> {
        let combined = self
            .dtype()
            .promote(other.dtype())
            .ok_or_else(|| DfError::type_error(self.dtype(), other.dtype()))?;
        let mut b = ColumnBuilder::new();
        for v in self.iter().chain(other.iter()) {
            b.push(v)?;
        }
        let mut out = b.finish();
        if out.dtype() == DType::Null && combined != DType::Null {
            out = Column::nulls_of(combined, self.len() + other.len());
        }
        *self = out;
        Ok(())
    }

    /// Cast a numeric column to float (no-op for float columns).
    pub fn cast_float(&self) -> Result<Column> {
        match self.dtype() {
            DType::Float => Ok(self.clone()),
            DType::Int | DType::Null => {
                let vals: Vec<Value> = self
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) => Value::Float(i as f64),
                        other => other,
                    })
                    .collect();
                let mut c = Column::from_values(vals)?;
                if c.dtype() == DType::Null {
                    c = Column::nulls_of(DType::Float, self.len());
                }
                Ok(c)
            }
            other => Err(DfError::type_error(DType::Float, other)),
        }
    }
}

/// Incremental builder that infers and promotes dtypes as values arrive.
#[derive(Debug)]
pub struct ColumnBuilder {
    values: Vec<Value>,
    dtype: DType,
    has_null: bool,
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        ColumnBuilder {
            values: Vec::new(),
            dtype: DType::Null,
            has_null: false,
        }
    }

    /// New empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ColumnBuilder {
            values: Vec::with_capacity(cap),
            dtype: DType::Null,
            has_null: false,
        }
    }

    /// Append one value, promoting the running dtype.
    pub fn push(&mut self, v: Value) -> Result<()> {
        let dt = v.dtype();
        if dt == DType::Null {
            self.has_null = true;
        } else {
            self.dtype = self
                .dtype
                .promote(dt)
                .ok_or_else(|| DfError::type_error(self.dtype, dt))?;
        }
        self.values.push(v);
        Ok(())
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Materialize the typed column.
    pub fn finish(self) -> Column {
        let n = self.values.len();
        let valid: Option<Vec<bool>> = if self.has_null {
            Some(self.values.iter().map(|v| !v.is_null()).collect())
        } else {
            None
        };
        let data = match self.dtype {
            DType::Null => ColumnData::Null(n),
            DType::Bool => ColumnData::Bool(
                self.values
                    .iter()
                    .map(|v| v.as_bool().unwrap_or(false))
                    .collect(),
            ),
            DType::Int => ColumnData::Int(
                self.values
                    .iter()
                    .map(|v| v.as_i64().unwrap_or(0))
                    .collect(),
            ),
            DType::Float => ColumnData::Float(
                self.values
                    .iter()
                    .map(|v| v.as_f64().unwrap_or(f64::NAN))
                    .collect(),
            ),
            DType::Str => ColumnData::Str(
                self.values
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => s.clone(),
                        _ => Arc::from(""),
                    })
                    .collect(),
            ),
        };
        Column { data, valid }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_constructors() {
        let c = Column::from_f64(vec![1.0, 2.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.count_valid(), 2);
        assert_eq!(c.get(1), Value::Float(2.0));
        assert_eq!(c.as_f64_slice(), Some(&[1.0, 2.0][..]));
    }

    #[test]
    fn builder_promotes_int_to_float() {
        let c = Column::from_values(vec![Value::Int(1), Value::Float(2.5)]).unwrap();
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.get(0), Value::Float(1.0));
    }

    #[test]
    fn builder_rejects_mixed_str_num() {
        let err = Column::from_values(vec![Value::Int(1), Value::from("x")]).unwrap_err();
        assert!(err.to_string().contains("type"));
    }

    #[test]
    fn nulls_tracked_by_mask() {
        let c = Column::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]).unwrap();
        assert_eq!(c.dtype(), DType::Int);
        assert_eq!(c.count_valid(), 2);
        assert!(c.is_null_at(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.numeric_values(), vec![1.0, 3.0]);
    }

    #[test]
    fn take_reorders_and_duplicates() {
        let c = Column::from_i64(vec![10, 20, 30]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![
            Value::Int(30),
            Value::Int(10),
            Value::Int(10)
        ]);
    }

    #[test]
    fn take_opt_gathers_with_gaps() {
        let c = Column::from_i64(vec![10, 20, 30]);
        let t = c.take_opt(&[Some(2), None, Some(0)]);
        assert_eq!(t.dtype(), DType::Int);
        assert_eq!(t.get(0), Value::Int(30));
        assert!(t.is_null_at(1));
        assert_eq!(t.get(2), Value::Int(10));
        // Source nulls stay null through the gather.
        let m = Column::from_values(vec![Value::Int(1), Value::Null]).unwrap();
        let g = m.take_opt(&[Some(1), Some(0)]);
        assert!(g.is_null_at(0));
        assert_eq!(g.get(1), Value::Int(1));
        // Gap-free gathers of dense columns stay mask-free.
        let d = c.take_opt(&[Some(0), Some(1)]);
        assert_eq!(d.count_valid(), 2);
        assert_eq!(d.as_f64_slice(), None); // int column
        // All-gap gather of a typed column keeps the dtype.
        let all_null = c.take_opt(&[None, None]);
        assert_eq!(all_null.dtype(), DType::Int);
        assert_eq!(all_null.count_valid(), 0);
    }

    #[test]
    fn equality_ignores_storage_under_mask() {
        // Masked float cells hold NaN in raw storage; equality must not
        // compare that garbage (and NaN != NaN would reject even a column
        // compared against itself).
        let a = Column::from_values(vec![Value::Float(1.0), Value::Null]).unwrap();
        let b = Column::from_values(vec![Value::Float(1.0), Value::Null]).unwrap();
        assert_eq!(a, a);
        assert_eq!(a, b);
        // Valid NaN cells compare equal under Value's total order.
        let n = Column::from_f64(vec![f64::NAN]);
        assert_eq!(n, Column::from_f64(vec![f64::NAN]));
        assert_ne!(n, Column::from_f64(vec![0.0]));
        // Dtype still distinguishes: all-null Int vs all-null Float.
        let ni = Column::from_i64(vec![7]).take_opt(&[None]);
        let nf = Column::from_f64(vec![7.0]).take_opt(&[None]);
        assert_ne!(ni, nf);
    }

    #[test]
    fn take_all_nulls_keeps_dtype() {
        let c = Column::from_values(vec![Value::Null, Value::Int(5)]).unwrap();
        let t = c.take(&[0, 0]);
        assert_eq!(t.dtype(), DType::Int);
        assert_eq!(t.count_valid(), 0);
    }

    #[test]
    fn append_promotes() {
        let mut a = Column::from_i64(vec![1, 2]);
        let b = Column::from_f64(vec![0.5]);
        a.append(&b).unwrap();
        assert_eq!(a.dtype(), DType::Float);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(2), Value::Float(0.5));
    }

    #[test]
    fn append_incompatible_fails() {
        let mut a = Column::from_i64(vec![1]);
        let b = Column::from_strs(["x"]);
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn cast_float() {
        let c = Column::from_i64(vec![1, 2]).cast_float().unwrap();
        assert_eq!(c.dtype(), DType::Float);
        assert!(Column::from_strs(["a"]).cast_float().is_err());
        let n = Column::nulls_of(DType::Null, 2).cast_float().unwrap();
        assert_eq!(n.dtype(), DType::Float);
        assert_eq!(n.count_valid(), 0);
    }

    #[test]
    fn all_null_column() {
        let c = Column::nulls_of(DType::Float, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.count_valid(), 0);
        assert!(c.numeric_values().is_empty());
    }
}
