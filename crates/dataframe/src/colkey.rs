//! Hierarchical column keys.
//!
//! The paper's composed thickets carry a two-level column index (Figure 4:
//! a `CPU` / `GPU` top level over metric names). A [`ColKey`] is a metric
//! name plus an optional group label; ungrouped frames simply leave the
//! group empty.

use crate::intern::intern;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A (group, name) column identifier.
///
/// Construction goes through the global [`crate::intern`] table, so every
/// spelling of a name shares one `Arc<str>`; equality and ordering between
/// interned keys short-circuit on pointer identity before falling back to
/// a character compare (which keeps keys built around foreign, uninterned
/// arcs fully interoperable).
#[derive(Debug, Clone, Eq, Hash)]
// The manual `PartialEq` below is the derived content equality plus a
// pointer-identity shortcut, so it stays consistent with derived `Hash`.
#[allow(clippy::derived_hash_with_manual_eq)]
pub struct ColKey {
    /// Optional top-level label (e.g. `"CPU"` after column-axis composition).
    pub group: Option<Arc<str>>,
    /// Column (metric) name.
    pub name: Arc<str>,
}

/// Pointer-identity fast path: interned strings of equal spelling share
/// one allocation, so the common case never touches the characters.
fn arc_str_eq(a: &Arc<str>, b: &Arc<str>) -> bool {
    Arc::ptr_eq(a, b) || a == b
}

fn arc_str_cmp(a: &Arc<str>, b: &Arc<str>) -> Ordering {
    if Arc::ptr_eq(a, b) {
        Ordering::Equal
    } else {
        a.cmp(b)
    }
}

// Manual `PartialEq`/`Ord` to exploit the interner's pointer sharing.
// `Hash` stays derived (it hashes the string contents), so the manual
// equality is consistent with it: pointer-equal ⇒ content-equal.
impl PartialEq for ColKey {
    fn eq(&self, other: &Self) -> bool {
        (match (&self.group, &other.group) {
            (None, None) => true,
            (Some(a), Some(b)) => arc_str_eq(a, b),
            _ => false,
        }) && arc_str_eq(&self.name, &other.name)
    }
}

impl Ord for ColKey {
    fn cmp(&self, other: &Self) -> Ordering {
        let by_group = match (&self.group, &other.group) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
            (Some(a), Some(b)) => arc_str_cmp(a, b),
        };
        by_group.then_with(|| arc_str_cmp(&self.name, &other.name))
    }
}

impl PartialOrd for ColKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl ColKey {
    /// Ungrouped column key.
    pub fn new(name: impl AsRef<str>) -> Self {
        ColKey {
            group: None,
            name: intern(name.as_ref()),
        }
    }

    /// Grouped column key (`group` is the top index level).
    pub fn grouped(group: impl AsRef<str>, name: impl AsRef<str>) -> Self {
        ColKey {
            group: Some(intern(group.as_ref())),
            name: intern(name.as_ref()),
        }
    }

    /// This key re-labelled under `group`.
    pub fn under(&self, group: impl AsRef<str>) -> Self {
        ColKey {
            group: Some(intern(group.as_ref())),
            name: self.name.clone(),
        }
    }

    /// This key with the group label removed.
    pub fn ungrouped(&self) -> Self {
        ColKey {
            group: None,
            name: self.name.clone(),
        }
    }

    /// The group label, if any.
    pub fn group_str(&self) -> Option<&str> {
        self.group.as_deref()
    }
}

impl fmt::Display for ColKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.group {
            Some(g) => write!(f, "({g}, {})", self.name),
            None => f.write_str(&self.name),
        }
    }
}

impl From<&str> for ColKey {
    fn from(name: &str) -> Self {
        ColKey::new(name)
    }
}

impl From<String> for ColKey {
    fn from(name: String) -> Self {
        ColKey::new(name)
    }
}

impl From<(&str, &str)> for ColKey {
    fn from((group, name): (&str, &str)) -> Self {
        ColKey::grouped(group, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let k = ColKey::new("time (exc)");
        assert_eq!(k.to_string(), "time (exc)");
        let g = k.under("CPU");
        assert_eq!(g.to_string(), "(CPU, time (exc))");
        assert_eq!(g.group_str(), Some("CPU"));
        assert_eq!(g.ungrouped(), k);
    }

    #[test]
    fn conversions() {
        assert_eq!(ColKey::from("x"), ColKey::new("x"));
        assert_eq!(ColKey::from(("GPU", "time")), ColKey::grouped("GPU", "time"));
    }

    #[test]
    fn ordering_groups_first() {
        let a = ColKey::new("z");
        let b = ColKey::grouped("CPU", "a");
        // Ungrouped (None) sorts before grouped (Some).
        assert!(a < b);
        assert!(ColKey::grouped("CPU", "a") < ColKey::grouped("CPU", "b"));
        assert!(ColKey::grouped("CPU", "x") < ColKey::grouped("GPU", "a"));
        assert_eq!(
            ColKey::grouped("CPU", "a").cmp(&ColKey::grouped("CPU", "a")),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn construction_interns_names() {
        let a = ColKey::new("interned-metric");
        let b = ColKey::new("interned-metric");
        assert!(Arc::ptr_eq(&a.name, &b.name));
        assert_eq!(a, b);
        // Keys around foreign (uninterned) arcs still compare by content.
        let foreign = ColKey {
            group: None,
            name: Arc::from("interned-metric"),
        };
        assert!(!Arc::ptr_eq(&a.name, &foreign.name));
        assert_eq!(a, foreign);
        assert_eq!(a.cmp(&foreign), std::cmp::Ordering::Equal);
        // Hash consistency: equal keys land in the same bucket.
        let mut set = std::collections::HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&foreign));
    }
}
