//! Hierarchical column keys.
//!
//! The paper's composed thickets carry a two-level column index (Figure 4:
//! a `CPU` / `GPU` top level over metric names). A [`ColKey`] is a metric
//! name plus an optional group label; ungrouped frames simply leave the
//! group empty.

use std::fmt;
use std::sync::Arc;

/// A (group, name) column identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColKey {
    /// Optional top-level label (e.g. `"CPU"` after column-axis composition).
    pub group: Option<Arc<str>>,
    /// Column (metric) name.
    pub name: Arc<str>,
}

impl ColKey {
    /// Ungrouped column key.
    pub fn new(name: impl AsRef<str>) -> Self {
        ColKey {
            group: None,
            name: Arc::from(name.as_ref()),
        }
    }

    /// Grouped column key (`group` is the top index level).
    pub fn grouped(group: impl AsRef<str>, name: impl AsRef<str>) -> Self {
        ColKey {
            group: Some(Arc::from(group.as_ref())),
            name: Arc::from(name.as_ref()),
        }
    }

    /// This key re-labelled under `group`.
    pub fn under(&self, group: impl AsRef<str>) -> Self {
        ColKey {
            group: Some(Arc::from(group.as_ref())),
            name: self.name.clone(),
        }
    }

    /// This key with the group label removed.
    pub fn ungrouped(&self) -> Self {
        ColKey {
            group: None,
            name: self.name.clone(),
        }
    }

    /// The group label, if any.
    pub fn group_str(&self) -> Option<&str> {
        self.group.as_deref()
    }
}

impl fmt::Display for ColKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.group {
            Some(g) => write!(f, "({g}, {})", self.name),
            None => f.write_str(&self.name),
        }
    }
}

impl From<&str> for ColKey {
    fn from(name: &str) -> Self {
        ColKey::new(name)
    }
}

impl From<String> for ColKey {
    fn from(name: String) -> Self {
        ColKey::new(name)
    }
}

impl From<(&str, &str)> for ColKey {
    fn from((group, name): (&str, &str)) -> Self {
        ColKey::grouped(group, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let k = ColKey::new("time (exc)");
        assert_eq!(k.to_string(), "time (exc)");
        let g = k.under("CPU");
        assert_eq!(g.to_string(), "(CPU, time (exc))");
        assert_eq!(g.group_str(), Some("CPU"));
        assert_eq!(g.ungrouped(), k);
    }

    #[test]
    fn conversions() {
        assert_eq!(ColKey::from("x"), ColKey::new("x"));
        assert_eq!(ColKey::from(("GPU", "time")), ColKey::grouped("GPU", "time"));
    }

    #[test]
    fn ordering_groups_first() {
        let a = ColKey::new("z");
        let b = ColKey::grouped("CPU", "a");
        // Ungrouped (None) sorts before grouped (Some).
        assert!(a < b);
    }
}
