//! The unified predicate engine: a typed expression AST plus a vectorized
//! evaluator producing selection [`Bitmap`]s straight from [`Column`]
//! storage.
//!
//! Every filter surface in the workspace compiles into [`PredExpr`]:
//! `MetaPred` (store metadata pushdown), the query crate's string dialect,
//! and the core `filter_*` ops. One AST means one set of semantics:
//!
//! * **Missing key is false.** A field the source doesn't provide (or a
//!   null cell) satisfies no leaf — not even `!=`. `Not` still sees the
//!   leaf's `false`, so `!(x == 1)` *does* match rows without `x`.
//! * **Equality is [`Value`] equality**: `Int`/`Float` compare numerically,
//!   `NaN == NaN`, different kinds are simply unequal.
//! * **Ordering is kind-guarded**: `<`/`<=`/`>`/`>=` only hold between two
//!   numerics, two strings, or two bools; any other pairing is `false`
//!   (no cross-kind rank ordering).
//! * `And([]) == true`, `Or([]) == false`.
//!
//! Three evaluators share those semantics:
//!
//! * [`PredExpr::eval`] — the vectorized engine. Leaves run monomorphic
//!   loops over the typed column `Vec`s (no per-row [`Value`]
//!   materialization); `And`/`Or` thread a *mask* bitmap down so later
//!   conjuncts only test still-live rows, skip all-dead 64-row words, and
//!   stop entirely once the mask empties.
//! * [`PredExpr::eval_rowwise`] / [`PredExpr::eval_row`] — an independent
//!   row-at-a-time reference implementation (field lookup + `Value`
//!   boxing per row) kept for equivalence testing and as the honest
//!   baseline in benchmarks.
//! * [`PredExpr::eval_lookup`] — the same scalar semantics over any
//!   `name -> Option<Value>` lookup, for non-columnar hosts (graph nodes,
//!   profile metadata maps).
//!
//! The mask invariant throughout: every bitmap an evaluator returns has
//! bits set only where the incoming mask had them set, so `And` chains
//! stay monotonically shrinking and `Or` never double-counts.

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnData};
use crate::value::{cmp_f64, Value};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Comparison operator for [`PredExpr::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredOp {
    /// `==` — [`Value`] equality (numeric across `Int`/`Float`, `NaN == NaN`).
    Eq,
    /// `!=` — present and not `Value`-equal (cross-kind values *are* unequal).
    Ne,
    /// `<` — kind-guarded ordering.
    Lt,
    /// `<=` — kind-guarded ordering.
    Le,
    /// `>` — kind-guarded ordering.
    Gt,
    /// `>=` — kind-guarded ordering.
    Ge,
}

impl PredOp {
    /// Does an `Ordering` between two *comparable* values satisfy this op?
    #[inline]
    fn ord_matches(self, ord: Ordering) -> bool {
        match self {
            PredOp::Eq => ord == Ordering::Equal,
            PredOp::Ne => ord != Ordering::Equal,
            PredOp::Lt => ord == Ordering::Less,
            PredOp::Le => ord != Ordering::Greater,
            PredOp::Gt => ord == Ordering::Greater,
            PredOp::Ge => ord != Ordering::Less,
        }
    }

    /// `true` for the four ordering operators (which need the kind guard).
    fn is_ordering(self) -> bool {
        !matches!(self, PredOp::Eq | PredOp::Ne)
    }

    /// Source-dialect spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            PredOp::Eq => "==",
            PredOp::Ne => "!=",
            PredOp::Lt => "<",
            PredOp::Le => "<=",
            PredOp::Gt => ">",
            PredOp::Ge => ">=",
        }
    }
}

/// String-matching operator for [`PredExpr::Str`]. Only matches `Str`
/// values; any other kind (or a missing field) is `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrMatch {
    /// Value starts with the needle.
    StartsWith,
    /// Value ends with the needle.
    EndsWith,
    /// Value contains the needle.
    Contains,
}

impl StrMatch {
    #[inline]
    fn matches(self, hay: &str, needle: &str) -> bool {
        match self {
            StrMatch::StartsWith => hay.starts_with(needle),
            StrMatch::EndsWith => hay.ends_with(needle),
            StrMatch::Contains => hay.contains(needle),
        }
    }

    /// Source-dialect spelling.
    pub fn keyword(self) -> &'static str {
        match self {
            StrMatch::StartsWith => "startswith",
            StrMatch::EndsWith => "endswith",
            StrMatch::Contains => "contains",
        }
    }
}

/// A typed predicate over named fields — the one AST every filter surface
/// compiles into. See the module docs for the exact semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum PredExpr {
    /// Matches every row.
    True,
    /// `field <op> value`.
    Cmp {
        /// Field (column, index level, or metadata key) name.
        field: String,
        /// Comparison operator.
        op: PredOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `field startswith/endswith/contains "needle"`.
    Str {
        /// Field name.
        field: String,
        /// Which string match.
        op: StrMatch,
        /// Substring to look for.
        needle: String,
    },
    /// Field's value is `Value`-equal to any of the listed values.
    In {
        /// Field name.
        field: String,
        /// Candidate values (`Value` equality, so `Int(4)` matches `Float(4.0)`).
        values: Vec<Value>,
    },
    /// Every branch matches (`And([]) == true`).
    And(Vec<PredExpr>),
    /// Any branch matches (`Or([]) == false`).
    Or(Vec<PredExpr>),
    /// Branch does not match.
    Not(Box<PredExpr>),
}

impl PredExpr {
    /// `field == value`.
    pub fn eq(field: impl Into<String>, value: impl Into<Value>) -> PredExpr {
        PredExpr::Cmp {
            field: field.into(),
            op: PredOp::Eq,
            value: value.into(),
        }
    }

    /// `field != value` (present and not equal).
    pub fn ne(field: impl Into<String>, value: impl Into<Value>) -> PredExpr {
        PredExpr::Cmp {
            field: field.into(),
            op: PredOp::Ne,
            value: value.into(),
        }
    }

    /// `field < value`.
    pub fn lt(field: impl Into<String>, value: impl Into<Value>) -> PredExpr {
        PredExpr::Cmp {
            field: field.into(),
            op: PredOp::Lt,
            value: value.into(),
        }
    }

    /// `field <= value`.
    pub fn le(field: impl Into<String>, value: impl Into<Value>) -> PredExpr {
        PredExpr::Cmp {
            field: field.into(),
            op: PredOp::Le,
            value: value.into(),
        }
    }

    /// `field > value`.
    pub fn gt(field: impl Into<String>, value: impl Into<Value>) -> PredExpr {
        PredExpr::Cmp {
            field: field.into(),
            op: PredOp::Gt,
            value: value.into(),
        }
    }

    /// `field >= value`.
    pub fn ge(field: impl Into<String>, value: impl Into<Value>) -> PredExpr {
        PredExpr::Cmp {
            field: field.into(),
            op: PredOp::Ge,
            value: value.into(),
        }
    }

    /// `field in values`.
    pub fn is_in(
        field: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> PredExpr {
        PredExpr::In {
            field: field.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// `field startswith needle`.
    pub fn starts_with(field: impl Into<String>, needle: impl Into<String>) -> PredExpr {
        PredExpr::Str {
            field: field.into(),
            op: StrMatch::StartsWith,
            needle: needle.into(),
        }
    }

    /// `field endswith needle`.
    pub fn ends_with(field: impl Into<String>, needle: impl Into<String>) -> PredExpr {
        PredExpr::Str {
            field: field.into(),
            op: StrMatch::EndsWith,
            needle: needle.into(),
        }
    }

    /// `field contains needle`.
    pub fn contains(field: impl Into<String>, needle: impl Into<String>) -> PredExpr {
        PredExpr::Str {
            field: field.into(),
            op: StrMatch::Contains,
            needle: needle.into(),
        }
    }

    /// Conjunction; flattens nested `And`s and absorbs `True`.
    pub fn and(branches: impl IntoIterator<Item = PredExpr>) -> PredExpr {
        let mut out = Vec::new();
        for b in branches {
            match b {
                PredExpr::True => {}
                PredExpr::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PredExpr::True,
            1 => out.pop().unwrap(),
            _ => PredExpr::And(out),
        }
    }

    /// Disjunction; flattens nested `Or`s.
    pub fn or(branches: impl IntoIterator<Item = PredExpr>) -> PredExpr {
        let mut out = Vec::new();
        for b in branches {
            match b {
                PredExpr::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            1 => out.pop().unwrap(),
            _ => PredExpr::Or(out),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(branch: PredExpr) -> PredExpr {
        PredExpr::Not(Box::new(branch))
    }

    /// Every field name the expression reads, deduplicated.
    pub fn fields(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_fields(&mut out);
        out
    }

    fn collect_fields<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            PredExpr::True => {}
            PredExpr::Cmp { field, .. }
            | PredExpr::Str { field, .. }
            | PredExpr::In { field, .. } => {
                out.insert(field.as_str());
            }
            PredExpr::And(bs) | PredExpr::Or(bs) => {
                for b in bs {
                    b.collect_fields(out);
                }
            }
            PredExpr::Not(b) => b.collect_fields(out),
        }
    }

    /// The top-level conjuncts: `And`'s branches (recursively flattened),
    /// or `[self]` for anything else. `True` contributes nothing. This is
    /// what the loader's planner classifies for pushdown.
    pub fn conjuncts(&self) -> Vec<&PredExpr> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a PredExpr>) {
        match self {
            PredExpr::True => {}
            PredExpr::And(bs) => {
                for b in bs {
                    b.collect_conjuncts(out);
                }
            }
            other => out.push(other),
        }
    }

    // ------------------------------------------------------------------
    // Vectorized evaluation
    // ------------------------------------------------------------------

    /// Evaluate vectorized against a source, returning the selection
    /// bitmap over all `src.rows()` rows.
    pub fn eval(&self, src: &dyn PredSource) -> Bitmap {
        self.eval_masked(src, None)
    }

    /// Masked evaluation. Postcondition: bit `i` is set iff `mask` (when
    /// given) has bit `i` set *and* the expression holds at row `i`.
    fn eval_masked(&self, src: &dyn PredSource, mask: Option<&Bitmap>) -> Bitmap {
        let n = src.rows();
        let base = |m: Option<&Bitmap>| m.cloned().unwrap_or_else(|| Bitmap::ones(n));
        match self {
            PredExpr::True => base(mask),
            PredExpr::Cmp { field, op, value } => match src.field(field) {
                Some(FieldView::Col(col)) => eval_cmp_col(col, *op, value, mask, n),
                Some(FieldView::Values { values, present }) => {
                    fill(n, mask, |i| {
                        present.is_none_or(|p| p[i]) && scalar_cmp(&values[i], *op, value)
                    })
                }
                None => Bitmap::zeros(n),
            },
            PredExpr::Str { field, op, needle } => match src.field(field) {
                Some(FieldView::Col(col)) => eval_str_col(col, *op, needle, mask, n),
                Some(FieldView::Values { values, present }) => fill(n, mask, |i| {
                    present.is_none_or(|p| p[i])
                        && values[i].as_str().is_some_and(|s| op.matches(s, needle))
                }),
                None => Bitmap::zeros(n),
            },
            PredExpr::In { field, values } => match src.field(field) {
                Some(view) => eval_in(view, values, mask, n),
                None => Bitmap::zeros(n),
            },
            PredExpr::And(branches) => {
                // Thread the shrinking mask through: each conjunct only
                // tests rows every earlier conjunct passed.
                let mut acc = base(mask);
                for b in branches {
                    if !acc.any() {
                        break;
                    }
                    acc = b.eval_masked(src, Some(&acc));
                }
                acc
            }
            PredExpr::Or(branches) => {
                // Each disjunct only tests rows no earlier disjunct matched.
                let mut acc = Bitmap::zeros(n);
                let mut remaining = base(mask);
                for b in branches {
                    if !remaining.any() {
                        break;
                    }
                    let hit = b.eval_masked(src, Some(&remaining));
                    acc.or_assign(&hit);
                    remaining.and_not_assign(&hit);
                }
                acc
            }
            PredExpr::Not(inner) => {
                let hit = inner.eval_masked(src, mask);
                let mut out = base(mask);
                out.and_not_assign(&hit);
                out
            }
        }
    }

    // ------------------------------------------------------------------
    // Row-wise reference evaluation
    // ------------------------------------------------------------------

    /// Row-at-a-time reference evaluation over a whole source. This is the
    /// *baseline* the vectorized engine is benchmarked and proptested
    /// against — it deliberately resolves fields and boxes [`Value`]s per
    /// row, the way the pre-engine filters did.
    pub fn eval_rowwise(&self, src: &dyn PredSource) -> Bitmap {
        Bitmap::from_fn(src.rows(), |i| self.eval_row(src, i))
    }

    /// Does the expression hold at `row`? (Reference semantics.)
    pub fn eval_row(&self, src: &dyn PredSource, row: usize) -> bool {
        self.eval_lookup(&mut |name| src.field(name).and_then(|f| f.value_at(row)))
    }

    /// Scalar evaluation against any `name -> Option<Value>` lookup
    /// (`None` = field absent; note a *stored* `Value::Null` is a present
    /// null and only `== null` matches it).
    pub fn eval_lookup(&self, lookup: &mut dyn FnMut(&str) -> Option<Value>) -> bool {
        match self {
            PredExpr::True => true,
            PredExpr::Cmp { field, op, value } => {
                lookup(field).is_some_and(|v| scalar_cmp(&v, *op, value))
            }
            PredExpr::Str { field, op, needle } => lookup(field)
                .is_some_and(|v| v.as_str().is_some_and(|s| op.matches(s, needle))),
            PredExpr::In { field, values } => {
                lookup(field).is_some_and(|v| values.contains(&v))
            }
            PredExpr::And(bs) => bs.iter().all(|b| b.eval_lookup(lookup)),
            PredExpr::Or(bs) => bs.iter().any(|b| b.eval_lookup(lookup)),
            PredExpr::Not(b) => !b.eval_lookup(lookup),
        }
    }
}

/// Scalar leaf comparison: the single definition of `Cmp` semantics, used
/// by the reference evaluators and the `Values`-view vector path.
#[inline]
fn scalar_cmp(v: &Value, op: PredOp, want: &Value) -> bool {
    if op.is_ordering() {
        comparable_kinds(v, want) && op.ord_matches(v.cmp(want))
    } else {
        op.ord_matches(if v == want {
            Ordering::Equal
        } else {
            Ordering::Less
        })
    }
}

/// Kind guard for ordering comparisons: numerics with numerics, strings
/// with strings, bools with bools; everything else is not ordered.
#[inline]
fn comparable_kinds(a: &Value, b: &Value) -> bool {
    matches!(
        (a, b),
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_))
            | (Value::Str(_), Value::Str(_))
            | (Value::Bool(_), Value::Bool(_))
    )
}

/// How a [`PredSource`] exposes one field to the vectorized evaluator.
pub enum FieldView<'a> {
    /// A typed dataframe column (fast monomorphic leaf loops).
    Col(&'a Column),
    /// A pre-decoded `Value` slice plus an optional presence mask (the
    /// store's columnar metadata index). `present[i] == false` means the
    /// key is absent for row `i`; a *stored* `Value::Null` has
    /// `present[i] == true` and matches only a `null` literal.
    Values {
        /// One value per row.
        values: &'a [Value],
        /// `None` = present everywhere.
        present: Option<&'a [bool]>,
    },
}

impl FieldView<'_> {
    /// The field's value at `row`: `None` when absent/null (columns can't
    /// distinguish the two; `Values` views can and report stored nulls as
    /// `Some(Value::Null)`).
    pub fn value_at(&self, row: usize) -> Option<Value> {
        match self {
            FieldView::Col(col) => {
                if col.is_null_at(row) {
                    None
                } else {
                    Some(col.get(row))
                }
            }
            FieldView::Values { values, present } => {
                if present.is_none_or(|p| p[row]) {
                    Some(values[row].clone())
                } else {
                    None
                }
            }
        }
    }
}

/// A row-aligned collection of named fields a [`PredExpr`] can evaluate
/// against. Unknown fields return `None` (missing-key-is-false).
pub trait PredSource {
    /// Number of rows.
    fn rows(&self) -> usize;
    /// Look up a field by name.
    fn field(&self, name: &str) -> Option<FieldView<'_>>;
}

/// A [`PredSource`] assembled by hand: borrowed columns, borrowed `Value`
/// slices, or owned bindings (e.g. materialized index levels, metadata
/// gathered to row granularity).
pub struct BoundSource<'a> {
    rows: usize,
    fields: HashMap<String, BoundField<'a>>,
}

enum BoundField<'a> {
    Col(&'a Column),
    Slice {
        values: &'a [Value],
        present: Option<&'a [bool]>,
    },
    Owned {
        values: Vec<Value>,
        present: Option<Vec<bool>>,
    },
}

impl<'a> BoundSource<'a> {
    /// New source over `rows` rows with no fields bound.
    pub fn new(rows: usize) -> BoundSource<'a> {
        BoundSource {
            rows,
            fields: HashMap::new(),
        }
    }

    /// Bind a borrowed column. Panics on row-count mismatch.
    pub fn bind_column(&mut self, name: impl Into<String>, col: &'a Column) {
        assert_eq!(col.len(), self.rows, "bound column length mismatch");
        self.fields.insert(name.into(), BoundField::Col(col));
    }

    /// Bind a borrowed `Value` slice with an optional presence mask.
    /// Panics on row-count mismatch.
    pub fn bind_slice(
        &mut self,
        name: impl Into<String>,
        values: &'a [Value],
        present: Option<&'a [bool]>,
    ) {
        assert_eq!(values.len(), self.rows, "bound slice length mismatch");
        if let Some(p) = present {
            assert_eq!(p.len(), self.rows, "presence mask length mismatch");
        }
        self.fields
            .insert(name.into(), BoundField::Slice { values, present });
    }

    /// Bind owned values (all present). Panics on row-count mismatch.
    pub fn bind_values(&mut self, name: impl Into<String>, values: Vec<Value>) {
        assert_eq!(values.len(), self.rows, "bound values length mismatch");
        self.fields.insert(
            name.into(),
            BoundField::Owned {
                values,
                present: None,
            },
        );
    }

    /// Bind owned values with a presence mask. Panics on length mismatch.
    pub fn bind_masked(&mut self, name: impl Into<String>, values: Vec<Value>, present: Vec<bool>) {
        assert_eq!(values.len(), self.rows, "bound values length mismatch");
        assert_eq!(present.len(), self.rows, "presence mask length mismatch");
        self.fields.insert(
            name.into(),
            BoundField::Owned {
                values,
                present: Some(present),
            },
        );
    }

    /// `true` if `name` has a binding.
    pub fn is_bound(&self, name: &str) -> bool {
        self.fields.contains_key(name)
    }
}

impl PredSource for BoundSource<'_> {
    fn rows(&self) -> usize {
        self.rows
    }

    fn field(&self, name: &str) -> Option<FieldView<'_>> {
        self.fields.get(name).map(|f| match f {
            BoundField::Col(c) => FieldView::Col(c),
            BoundField::Slice { values, present } => FieldView::Values {
                values,
                present: *present,
            },
            BoundField::Owned { values, present } => FieldView::Values {
                values,
                present: present.as_deref(),
            },
        })
    }
}

// ----------------------------------------------------------------------
// Vectorized leaf kernels
// ----------------------------------------------------------------------

/// Build a bitmap from a row predicate, restricted to `mask`. With a mask,
/// iterates only its set bits — an all-dead 64-row word costs one branch.
fn fill(n: usize, mask: Option<&Bitmap>, mut f: impl FnMut(usize) -> bool) -> Bitmap {
    let mut out = Bitmap::zeros(n);
    match mask {
        None => {
            for i in 0..n {
                if f(i) {
                    out.set(i);
                }
            }
        }
        Some(m) => {
            for (wi, &w) in m.words().iter().enumerate() {
                if w == 0 {
                    continue;
                }
                let base = wi * 64;
                let mut bits = w;
                while bits != 0 {
                    let i = base + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if f(i) {
                        out.set(i);
                    }
                }
            }
        }
    }
    out
}

/// `Cmp` over a typed column: one monomorphic loop per (dtype, literal
/// kind) pairing, no `Value` per row.
fn eval_cmp_col(col: &Column, op: PredOp, want: &Value, mask: Option<&Bitmap>, n: usize) -> Bitmap {
    let valid = col.valid_mask();
    // Cell presence; all-null columns have no valid cells at all.
    let pres = |i: usize| valid.is_none_or(|m| m[i]);
    match (col.data(), want) {
        (ColumnData::Int(vs), Value::Int(x)) => {
            fill(n, mask, |i| pres(i) && op.ord_matches(vs[i].cmp(x)))
        }
        (ColumnData::Int(vs), Value::Float(f)) => fill(n, mask, |i| {
            pres(i) && op.ord_matches(cmp_f64(vs[i] as f64, *f))
        }),
        (ColumnData::Float(vs), Value::Int(x)) => {
            let w = *x as f64;
            fill(n, mask, |i| pres(i) && op.ord_matches(cmp_f64(vs[i], w)))
        }
        (ColumnData::Float(vs), Value::Float(f)) => {
            fill(n, mask, |i| pres(i) && op.ord_matches(cmp_f64(vs[i], *f)))
        }
        (ColumnData::Str(vs), Value::Str(s)) => {
            let s: &str = s;
            fill(n, mask, |i| {
                pres(i) && op.ord_matches(vs[i].as_ref().cmp(s))
            })
        }
        (ColumnData::Bool(vs), Value::Bool(b)) => {
            fill(n, mask, |i| pres(i) && op.ord_matches(vs[i].cmp(b)))
        }
        // Kind mismatch (incl. all-null columns and `null` literals):
        // `!=` matches every *present* cell, everything else matches none.
        _ => {
            if op == PredOp::Ne && !matches!(col.data(), ColumnData::Null(_)) {
                fill(n, mask, pres)
            } else {
                Bitmap::zeros(n)
            }
        }
    }
}

/// String ops over a typed column: only `Str` columns can match.
fn eval_str_col(
    col: &Column,
    op: StrMatch,
    needle: &str,
    mask: Option<&Bitmap>,
    n: usize,
) -> Bitmap {
    let valid = col.valid_mask();
    match col.data() {
        ColumnData::Str(vs) => fill(n, mask, |i| {
            valid.is_none_or(|m| m[i]) && op.matches(vs[i].as_ref(), needle)
        }),
        _ => Bitmap::zeros(n),
    }
}

/// `In` over either view. Large lists go through a `HashSet<Value>` (the
/// loader's profile-selection path binds thousands of profile hashes);
/// small lists scan linearly.
fn eval_in(view: FieldView<'_>, values: &[Value], mask: Option<&Bitmap>, n: usize) -> Bitmap {
    const LINEAR_MAX: usize = 8;
    let set: Option<HashSet<&Value>> = if values.len() > LINEAR_MAX {
        Some(values.iter().collect())
    } else {
        None
    };
    let hit = |v: &Value| match &set {
        Some(s) => s.contains(v),
        None => values.iter().any(|w| w == v),
    };
    match view {
        FieldView::Col(col) => {
            let valid = col.valid_mask();
            match col.data() {
                ColumnData::Int(vs) => fill(n, mask, |i| {
                    valid.is_none_or(|m| m[i]) && hit(&Value::Int(vs[i]))
                }),
                ColumnData::Float(vs) => fill(n, mask, |i| {
                    valid.is_none_or(|m| m[i]) && hit(&Value::Float(vs[i]))
                }),
                ColumnData::Str(vs) => fill(n, mask, |i| {
                    valid.is_none_or(|m| m[i]) && hit(&Value::Str(vs[i].clone()))
                }),
                ColumnData::Bool(vs) => fill(n, mask, |i| {
                    valid.is_none_or(|m| m[i]) && hit(&Value::Bool(vs[i]))
                }),
                ColumnData::Null(_) => Bitmap::zeros(n),
            }
        }
        FieldView::Values { values: vs, present } => fill(n, mask, |i| {
            present.is_none_or(|p| p[i]) && hit(&vs[i])
        }),
    }
}

impl fmt::Display for PredExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredExpr::True => f.write_str("true"),
            PredExpr::Cmp { field, op, value } => {
                write!(f, "{field} {} {value}", op.symbol())
            }
            PredExpr::Str { field, op, needle } => {
                write!(f, "{field} {} \"{needle}\"", op.keyword())
            }
            PredExpr::In { field, values } => {
                write!(f, "{field} in [")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            PredExpr::And(bs) => {
                f.write_str("(")?;
                for (i, b) in bs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" && ")?;
                    }
                    write!(f, "{b}")?;
                }
                f.write_str(")")
            }
            PredExpr::Or(bs) => {
                f.write_str("(")?;
                for (i, b) in bs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" || ")?;
                    }
                    write!(f, "{b}")?;
                }
                f.write_str(")")
            }
            PredExpr::Not(b) => write!(f, "!({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;

    fn src() -> (Vec<Column>, Vec<&'static str>) {
        let mut time = ColumnBuilder::new();
        for v in [1.0, 2.5, f64::NAN, 4.0] {
            time.push(Value::Float(v)).unwrap();
        }
        time.push(Value::Null).unwrap();
        let mut rank = ColumnBuilder::new();
        for v in [0i64, 1, 2, 3, 4] {
            rank.push(Value::Int(v)).unwrap();
        }
        let mut name = ColumnBuilder::new();
        for v in ["MPI_Send", "MPI_Recv", "lulesh", "main", "MPI_Wait"] {
            name.push(Value::from(v)).unwrap();
        }
        (
            vec![time.finish(), rank.finish(), name.finish()],
            vec!["time", "rank", "name"],
        )
    }

    fn bound(cols: &[Column], names: &[&'static str]) -> BoundSource<'static> {
        // Leak for test convenience; fine in unit tests.
        let rows = cols[0].len();
        let mut b = BoundSource::new(rows);
        for (c, n) in cols.iter().zip(names) {
            let c: &'static Column = Box::leak(Box::new(c.clone()));
            b.bind_column(*n, c);
        }
        b
    }

    fn check_both(expr: &PredExpr, src: &BoundSource<'_>, want: &[usize]) {
        assert_eq!(expr.eval(src).positions(), want, "vectorized: {expr}");
        assert_eq!(expr.eval_rowwise(src).positions(), want, "row-wise: {expr}");
    }

    #[test]
    fn leaf_semantics() {
        let (cols, names) = src();
        let s = bound(&cols, &names);
        check_both(&PredExpr::ge("time", 2.5), &s, &[1, 2, 3]); // NaN sorts greatest
        check_both(&PredExpr::eq("time", f64::NAN), &s, &[2]);
        check_both(&PredExpr::ne("time", 2.5), &s, &[0, 2, 3]); // null row absent
        check_both(&PredExpr::lt("rank", 2i64), &s, &[0, 1]);
        check_both(&PredExpr::eq("rank", 3.0), &s, &[3]); // cross-kind numeric eq
        check_both(&PredExpr::starts_with("name", "MPI_"), &s, &[0, 1, 4]);
        check_both(&PredExpr::contains("name", "ul"), &s, &[2]);
        check_both(&PredExpr::is_in("rank", [0i64, 4]), &s, &[0, 4]);
        // Kind guard: string field vs number is false for ordering...
        check_both(&PredExpr::gt("name", 5i64), &s, &[]);
        // ...but != is "present and not equal".
        check_both(&PredExpr::ne("name", 5i64), &s, &[0, 1, 2, 3, 4]);
        // Missing field is false, even negated leaves see it.
        check_both(&PredExpr::eq("nope", 1i64), &s, &[]);
        check_both(&PredExpr::not(PredExpr::eq("nope", 1i64)), &s, &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn boolean_structure() {
        let (cols, names) = src();
        let s = bound(&cols, &names);
        let e = PredExpr::and([
            PredExpr::starts_with("name", "MPI_"),
            PredExpr::lt("rank", 4i64),
        ]);
        check_both(&e, &s, &[0, 1]);
        let e = PredExpr::or([PredExpr::eq("rank", 0i64), PredExpr::eq("name", "main")]);
        check_both(&e, &s, &[0, 3]);
        let e = PredExpr::not(PredExpr::starts_with("name", "MPI_"));
        check_both(&e, &s, &[2, 3]);
        check_both(&PredExpr::and([]), &s, &[0, 1, 2, 3, 4]);
        check_both(&PredExpr::or([]), &s, &[]);
        check_both(&PredExpr::True, &s, &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn values_view_with_presence_and_stored_null() {
        let vals = vec![
            Value::from("quartz"),
            Value::Null,
            Value::from("lassen"),
            Value::from("quartz"),
        ];
        let present = vec![true, true, true, false];
        let mut s = BoundSource::new(4);
        s.bind_masked("cluster", vals, present);
        // Stored null is present: only `== null` matches it; absent row 3
        // matches nothing.
        let e = PredExpr::eq("cluster", Value::Null);
        assert_eq!(e.eval(&s).positions(), vec![1]);
        assert_eq!(e.eval_rowwise(&s).positions(), vec![1]);
        let e = PredExpr::eq("cluster", "quartz");
        assert_eq!(e.eval(&s).positions(), vec![0]);
        let e = PredExpr::ne("cluster", "quartz");
        assert_eq!(e.eval(&s).positions(), vec![1, 2]);
    }

    #[test]
    fn builders_flatten() {
        let e = PredExpr::and([
            PredExpr::True,
            PredExpr::and([PredExpr::eq("a", 1i64), PredExpr::eq("b", 2i64)]),
            PredExpr::eq("c", 3i64),
        ]);
        assert_eq!(e.conjuncts().len(), 3);
        assert_eq!(
            e.fields().into_iter().collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        assert_eq!(PredExpr::and([]), PredExpr::True);
    }

    #[test]
    fn display_round_trips_visually() {
        let e = PredExpr::and([
            PredExpr::eq("cluster", "quartz"),
            PredExpr::not(PredExpr::gt("problem_size", 30i64)),
        ]);
        assert_eq!(
            e.to_string(),
            "(cluster == quartz && !(problem_size > 30))"
        );
    }
}
