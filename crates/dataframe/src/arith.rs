//! Element-wise column arithmetic — the primitive behind derived metrics
//! such as the Figure 15 speedup column (`CPU time / GPU time`).
//!
//! Operations are null-propagating (any null operand yields a null cell)
//! and defined for numeric columns only; results are always float
//! columns. Binary ops require equal lengths.

use crate::column::Column;
use crate::error::{DfError, Result};
use crate::value::{DType, Value};

/// Element-wise binary operation between numeric columns.
fn zip_with(a: &Column, b: &Column, f: impl Fn(f64, f64) -> f64) -> Result<Column> {
    if a.len() != b.len() {
        return Err(DfError::LengthMismatch {
            expected: a.len(),
            actual: b.len(),
        });
    }
    for c in [a, b] {
        if !c.dtype().is_numeric() && c.dtype() != DType::Null {
            return Err(DfError::type_error(DType::Float, c.dtype()));
        }
    }
    let vals: Vec<Value> = (0..a.len())
        .map(|i| match (a.get_f64(i), b.get_f64(i)) {
            (Some(x), Some(y)) => Value::Float(f(x, y)),
            _ => Value::Null,
        })
        .collect();
    let mut out = Column::from_values(vals)?;
    if out.dtype() == DType::Null {
        out = Column::nulls_of(DType::Float, a.len());
    }
    Ok(out)
}

/// Element-wise unary map over a numeric column.
fn map_with(a: &Column, f: impl Fn(f64) -> f64) -> Result<Column> {
    if !a.dtype().is_numeric() && a.dtype() != DType::Null {
        return Err(DfError::type_error(DType::Float, a.dtype()));
    }
    let vals: Vec<Value> = (0..a.len())
        .map(|i| match a.get_f64(i) {
            Some(x) => Value::Float(f(x)),
            None => Value::Null,
        })
        .collect();
    let mut out = Column::from_values(vals)?;
    if out.dtype() == DType::Null {
        out = Column::nulls_of(DType::Float, a.len());
    }
    Ok(out)
}

impl Column {
    /// `self + other`, element-wise.
    pub fn add(&self, other: &Column) -> Result<Column> {
        zip_with(self, other, |a, b| a + b)
    }

    /// `self - other`, element-wise.
    pub fn sub(&self, other: &Column) -> Result<Column> {
        zip_with(self, other, |a, b| a - b)
    }

    /// `self * other`, element-wise.
    pub fn mul(&self, other: &Column) -> Result<Column> {
        zip_with(self, other, |a, b| a * b)
    }

    /// `self / other`, element-wise; division by zero yields null
    /// (pandas would produce ±inf — null keeps derived ratios clean).
    pub fn div(&self, other: &Column) -> Result<Column> {
        if self.len() != other.len() {
            return Err(DfError::LengthMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        let vals: Vec<Value> = (0..self.len())
            .map(|i| match (self.get_f64(i), other.get_f64(i)) {
                (Some(x), Some(y)) if y != 0.0 => Value::Float(x / y),
                _ => Value::Null,
            })
            .collect();
        let mut out = Column::from_values(vals)?;
        if out.dtype() == DType::Null {
            out = Column::nulls_of(DType::Float, self.len());
        }
        Ok(out)
    }

    /// `self op scalar`, element-wise.
    pub fn scale(&self, factor: f64) -> Result<Column> {
        map_with(self, |v| v * factor)
    }

    /// `self + scalar`, element-wise.
    pub fn offset(&self, delta: f64) -> Result<Column> {
        map_with(self, |v| v + delta)
    }

    /// Arbitrary numeric map, element-wise (nulls pass through).
    pub fn map_f64(&self, f: impl Fn(f64) -> f64) -> Result<Column> {
        map_with(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[f64]) -> Column {
        Column::from_f64(vals.to_vec())
    }

    #[test]
    fn basic_arithmetic() {
        let a = col(&[1.0, 2.0, 3.0]);
        let b = col(&[10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).unwrap().numeric_values(), vec![11.0, 22.0, 33.0]);
        assert_eq!(b.sub(&a).unwrap().numeric_values(), vec![9.0, 18.0, 27.0]);
        assert_eq!(a.mul(&b).unwrap().numeric_values(), vec![10.0, 40.0, 90.0]);
        assert_eq!(b.div(&a).unwrap().numeric_values(), vec![10.0, 10.0, 10.0]);
    }

    #[test]
    fn scalar_ops_and_map() {
        let a = col(&[1.0, 2.0]);
        assert_eq!(a.scale(3.0).unwrap().numeric_values(), vec![3.0, 6.0]);
        assert_eq!(a.offset(-1.0).unwrap().numeric_values(), vec![0.0, 1.0]);
        assert_eq!(
            a.map_f64(|v| v * v).unwrap().numeric_values(),
            vec![1.0, 4.0]
        );
    }

    #[test]
    fn nulls_propagate() {
        let a = Column::from_values(vec![Value::Float(1.0), Value::Null]).unwrap();
        let b = col(&[2.0, 3.0]);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.get(0), Value::Float(3.0));
        assert!(sum.is_null_at(1));
    }

    #[test]
    fn division_by_zero_is_null() {
        let a = col(&[1.0, 2.0]);
        let b = col(&[0.0, 4.0]);
        let q = a.div(&b).unwrap();
        assert!(q.is_null_at(0));
        assert_eq!(q.get(1), Value::Float(0.5));
    }

    #[test]
    fn int_columns_promote_to_float() {
        let a = Column::from_i64(vec![1, 2]);
        let b = Column::from_i64(vec![3, 4]);
        let s = a.add(&b).unwrap();
        assert_eq!(s.dtype(), DType::Float);
        assert_eq!(s.numeric_values(), vec![4.0, 6.0]);
    }

    #[test]
    fn error_cases() {
        let a = col(&[1.0]);
        let b = col(&[1.0, 2.0]);
        assert!(matches!(a.add(&b), Err(DfError::LengthMismatch { .. })));
        let s = Column::from_strs(["x"]);
        assert!(a.add(&s).is_err());
        assert!(s.scale(2.0).is_err());
    }

    #[test]
    fn all_null_columns() {
        let a = Column::nulls_of(DType::Float, 2);
        let b = col(&[1.0, 2.0]);
        let s = a.add(&b).unwrap();
        assert_eq!(s.count_valid(), 0);
        assert_eq!(s.dtype(), DType::Float);
    }
}
