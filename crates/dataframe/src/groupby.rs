//! Group-by: split a frame into groups by column values or index levels,
//! then aggregate each group (the engine behind `Thicket::groupby` and the
//! aggregated-statistics table).

use crate::agg::AggFn;
use crate::colkey::ColKey;
use crate::column::ColumnBuilder;
use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::index::Index;
use crate::value::Value;
use std::collections::HashMap;

/// The result of splitting a frame: group keys (first-seen order) and the
/// member row positions of each group.
#[derive(Debug, Clone)]
pub struct GroupBy<'a> {
    frame: &'a DataFrame,
    /// Names of the grouping dimensions (column names or level names).
    by: Vec<String>,
    keys: Vec<Vec<Value>>,
    groups: Vec<Vec<usize>>,
}

impl<'a> GroupBy<'a> {
    /// Split by one or more *columns*.
    pub fn by_columns(frame: &'a DataFrame, cols: &[ColKey]) -> Result<Self> {
        let columns: Vec<_> = cols
            .iter()
            .map(|k| frame.column(k))
            .collect::<Result<_>>()?;
        let key_of = |row: usize| -> Vec<Value> { columns.iter().map(|c| c.get(row)).collect() };
        Ok(Self::split(
            frame,
            cols.iter().map(|k| k.name.to_string()).collect(),
            key_of,
        ))
    }

    /// Split by one or more *index levels*.
    pub fn by_levels(frame: &'a DataFrame, levels: &[&str]) -> Result<Self> {
        let pos: Vec<usize> = levels
            .iter()
            .map(|l| frame.index().level_pos(l))
            .collect::<Result<_>>()?;
        let key_of =
            |row: usize| -> Vec<Value> { pos.iter().map(|&p| frame.index().key(row)[p].clone()).collect() };
        Ok(Self::split(
            frame,
            levels.iter().map(|s| s.to_string()).collect(),
            key_of,
        ))
    }

    fn split(
        frame: &'a DataFrame,
        by: Vec<String>,
        key_of: impl Fn(usize) -> Vec<Value>,
    ) -> Self {
        let mut seen: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut keys = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for row in 0..frame.len() {
            let k = key_of(row);
            match seen.get(&k) {
                Some(&g) => groups[g].push(row),
                None => {
                    seen.insert(k.clone(), keys.len());
                    keys.push(k);
                    groups.push(vec![row]);
                }
            }
        }
        GroupBy {
            frame,
            by,
            keys,
            groups,
        }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the input had no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Group keys in first-seen order.
    pub fn keys(&self) -> &[Vec<Value>] {
        &self.keys
    }

    /// The grouping dimension names.
    pub fn by(&self) -> &[String] {
        &self.by
    }

    /// Iterate `(key, sub-frame)` pairs; each sub-frame keeps the original
    /// index and columns of its member rows.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, DataFrame)> + '_ {
        self.keys
            .iter()
            .zip(self.groups.iter())
            .map(|(k, rows)| (k, self.frame.take(rows)))
    }

    /// Member row positions per group, aligned with [`GroupBy::keys`].
    pub fn group_rows(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Reduce every numeric column with `func`, producing one row per group
    /// indexed by the group key. Non-numeric columns are dropped.
    pub fn agg(&self, func: AggFn) -> Result<DataFrame> {
        self.agg_columns(
            &self
                .frame
                .columns()
                .filter(|(_, c)| c.dtype().is_numeric())
                .map(|(k, _)| (k.clone(), vec![func]))
                .collect::<Vec<_>>(),
        )
    }

    /// Reduce selected columns, each with its own list of aggregations.
    /// Output columns are named `<name>_<agg>` (paper style: `time (exc)_std`)
    /// unless only one aggregation is requested for that column set with
    /// `rename: false` semantics — here we always suffix for predictability.
    pub fn agg_columns(&self, specs: &[(ColKey, Vec<AggFn>)]) -> Result<DataFrame> {
        let index = Index::new(
            self.by.clone(),
            self.keys.clone(),
        )?;
        let mut out = DataFrame::new(index);
        for (ck, funcs) in specs {
            let col = self.frame.column(ck)?;
            if !col.dtype().is_numeric() && col.dtype() != crate::value::DType::Null {
                return Err(DfError::type_error(crate::value::DType::Float, col.dtype()));
            }
            for func in funcs {
                let mut b = ColumnBuilder::with_capacity(self.groups.len());
                for rows in &self.groups {
                    let vals: Vec<f64> = rows.iter().filter_map(|&r| col.get_f64(r)).collect();
                    b.push(func.apply(&vals).map(Value::Float).unwrap_or(Value::Null))?;
                }
                let name = format!("{}_{}", ck.name, func.suffix());
                let key = match &ck.group {
                    Some(g) => ColKey::grouped(g.as_ref(), &name),
                    None => ColKey::new(&name),
                };
                out.insert(key, b.finish())?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn sample() -> DataFrame {
        let index = Index::pairs(
            ("node", "profile"),
            vec![(1i64, 10i64), (1, 20), (2, 10), (2, 20), (2, 30)],
        );
        let mut df = DataFrame::new(index);
        df.insert("time", Column::from_f64(vec![1.0, 3.0, 10.0, 20.0, 30.0]))
            .unwrap();
        df.insert(
            "compiler",
            Column::from_strs(["clang", "gcc", "clang", "gcc", "gcc"]),
        )
        .unwrap();
        df
    }

    #[test]
    fn groupby_column_splits() {
        let df = sample();
        let g = GroupBy::by_columns(&df, &[ColKey::new("compiler")]).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.keys()[0], vec![Value::from("clang")]);
        let subframes: Vec<_> = g.iter().map(|(_, f)| f.len()).collect();
        assert_eq!(subframes, vec![2, 3]);
    }

    #[test]
    fn groupby_level_aggregates() {
        let df = sample();
        let g = GroupBy::by_levels(&df, &["node"]).unwrap();
        let agg = g.agg(AggFn::Mean).unwrap();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg.index().names(), &["node".to_string()]);
        let col = agg.column(&ColKey::new("time_mean")).unwrap();
        assert_eq!(col.numeric_values(), vec![2.0, 20.0]);
    }

    #[test]
    fn agg_columns_multiple_functions() {
        let df = sample();
        let g = GroupBy::by_levels(&df, &["node"]).unwrap();
        let agg = g
            .agg_columns(&[(ColKey::new("time"), vec![AggFn::Min, AggFn::Max, AggFn::Std])])
            .unwrap();
        assert_eq!(agg.ncols(), 3);
        assert_eq!(
            agg.column(&ColKey::new("time_min")).unwrap().numeric_values(),
            vec![1.0, 10.0]
        );
        assert_eq!(
            agg.column(&ColKey::new("time_max")).unwrap().numeric_values(),
            vec![3.0, 30.0]
        );
    }

    #[test]
    fn agg_rejects_string_columns() {
        let df = sample();
        let g = GroupBy::by_levels(&df, &["node"]).unwrap();
        assert!(g
            .agg_columns(&[(ColKey::new("compiler"), vec![AggFn::Mean])])
            .is_err());
    }

    #[test]
    fn agg_skips_string_columns_in_blanket_mode() {
        let df = sample();
        let g = GroupBy::by_levels(&df, &["node"]).unwrap();
        let agg = g.agg(AggFn::Mean).unwrap();
        assert_eq!(agg.ncols(), 1); // only "time"
    }

    #[test]
    fn multi_key_grouping() {
        let df = sample();
        let g = GroupBy::by_levels(&df, &["node", "profile"]).unwrap();
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn missing_level_errors() {
        let df = sample();
        assert!(GroupBy::by_levels(&df, &["nope"]).is_err());
        assert!(GroupBy::by_columns(&df, &[ColKey::new("nope")]).is_err());
    }

    #[test]
    fn empty_frame_groups_to_nothing() {
        let df = DataFrame::new(Index::empty(["k"]));
        let g = GroupBy::by_levels(&df, &["k"]).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.agg(AggFn::Mean).unwrap().len(), 0);
    }
}
