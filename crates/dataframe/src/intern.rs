//! Global string interning for column and metric names.
//!
//! Ensemble ingest builds one [`crate::ColKey`] per *cell*, and a
//! 560-profile thicket re-spells the same handful of metric names tens of
//! thousands of times. Interning hands every spelling of a name the same
//! shared `Arc<str>`, so (1) repeated key construction is a hash lookup +
//! refcount bump instead of a fresh allocation, and (2) equality checks
//! between interned keys can short-circuit on pointer identity (see the
//! fast paths in `colkey.rs`).
//!
//! The table is append-only for the process lifetime: names are tiny and
//! few (metric names, metadata attribute names, group labels), so there
//! is no eviction. Callers that want an isolated table (tests, tools
//! ingesting untrusted schemas) can hold their own [`Interner`].

use std::collections::HashSet;
use std::sync::{Arc, OnceLock, RwLock};

/// A thread-safe symbol table handing out shared `Arc<str>`s.
///
/// Lookups of already-interned names take only the read lock, so the
/// steady state of ingest (every metric name seen long ago) is
/// contention-free on the write path.
#[derive(Debug, Default)]
pub struct Interner {
    table: RwLock<HashSet<Arc<str>>>,
}

impl Interner {
    /// New empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared `Arc<str>` for `s`, allocating it on first sight.
    pub fn intern(&self, s: &str) -> Arc<str> {
        if let Some(hit) = self.table.read().expect("interner poisoned").get(s) {
            return hit.clone();
        }
        let mut table = self.table.write().expect("interner poisoned");
        // Re-check under the write lock: another thread may have won the
        // race between our read unlock and write lock.
        if let Some(hit) = table.get(s) {
            return hit.clone();
        }
        let arc: Arc<str> = Arc::from(s);
        table.insert(arc.clone());
        arc
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.table.read().expect("interner poisoned").len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide interner used by [`crate::ColKey`] construction.
fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new)
}

/// Intern `s` in the process-wide table.
pub fn intern(s: &str) -> Arc<str> {
    global().intern(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_pointer() {
        let a = intern("time (exc)");
        let b = intern("time (exc)");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, "time (exc)");
    }

    #[test]
    fn distinct_names_distinct_pointers() {
        let a = intern("alpha");
        let b = intern("beta");
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn local_interner_is_isolated() {
        let local = Interner::new();
        assert!(local.is_empty());
        let a = local.intern("gamma");
        let b = local.intern("gamma");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(local.len(), 1);
        // The global table hands out its own arc for the same spelling.
        let g = intern("gamma");
        assert!(!Arc::ptr_eq(&a, &g));
        assert_eq!(&*a, &*g);
    }

    #[test]
    fn concurrent_interning_converges() {
        let local = std::sync::Arc::new(Interner::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = local.clone();
            handles.push(std::thread::spawn(move || l.intern("contended")));
        }
        let arcs: Vec<Arc<str>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(arcs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        assert_eq!(local.len(), 1);
    }
}
