//! Scalar values and data types used throughout the dataframe.
//!
//! A [`Value`] is the dynamically-typed scalar that crosses API boundaries
//! (index keys, predicates, cell access); bulk storage inside a column stays
//! typed (see [`crate::column`]). `Value` implements a *total* order and a
//! consistent `Hash`, so it can serve as a grouping/join key even when it
//! wraps a float (NaN is normalized to a single bit pattern and sorts after
//! every other float, mirroring pandas' `sort_values(na_position="last")`).

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The logical type of a column or scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Missing-only column (no non-null value seen yet).
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Null => "null",
            DType::Bool => "bool",
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
        };
        f.write_str(s)
    }
}

impl DType {
    /// `true` if values of this type can participate in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Int | DType::Float)
    }

    /// The common supertype two column types promote to when mixed, if any.
    ///
    /// Promotion mirrors pandas: `Int + Float -> Float`, anything with
    /// `Null` keeps the non-null type, all else is incompatible.
    pub fn promote(self, other: DType) -> Option<DType> {
        use DType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Null, b) => Some(b),
            (a, Null) => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }
}

/// A dynamically typed scalar cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A missing value (pandas `NaN`/`None`).
    Null,
    /// Boolean scalar.
    Bool(bool),
    /// Integer scalar.
    Int(i64),
    /// Float scalar. `NaN` is allowed and treated as a *value* (not null);
    /// it compares equal to itself so grouping on it is stable.
    Float(f64),
    /// String scalar; `Arc` so repeated values (node names, cluster names)
    /// are cheap to clone across tables.
    Str(Arc<str>),
}

impl Value {
    /// The [`DType`] of this value.
    pub fn dtype(&self) -> DType {
        match self {
            Value::Null => DType::Null,
            Value::Bool(_) => DType::Bool,
            Value::Int(_) => DType::Int,
            Value::Float(_) => DType::Float,
            Value::Str(_) => DType::Str,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value (`Int` and `Float` only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view of the value (`Int` only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String view of the value (`Str` only).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value (`Bool` only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render the value the way a table cell shows it (`Null` -> empty).
    pub fn display_cell(&self) -> Cow<'static, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Bool(b) => Cow::Owned(b.to_string()),
            Value::Int(v) => Cow::Owned(v.to_string()),
            Value::Float(v) => Cow::Owned(format_float(*v)),
            Value::Str(s) => Cow::Owned(s.to_string()),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats compare numerically
            Value::Str(_) => 3,
        }
    }
}

/// Format a float like pandas' default: up to six significant decimals,
/// trailing zeros trimmed, but always at least one decimal digit.
pub(crate) fn format_float(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{:.1}", v);
    }
    let s = format!("{:.6}", v);
    let trimmed = s.trim_end_matches('0');
    let trimmed = if trimmed.ends_with('.') {
        &s[..trimmed.len() + 1]
    } else {
        trimmed
    };
    trimmed.to_string()
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: `Null < Bool < numeric < Str`; numerics compare across
    /// `Int`/`Float`; float comparison uses `total_cmp` with NaN greatest.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

pub(crate) fn cmp_f64(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).unwrap(),
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and floats must hash consistently with their cross-type
            // equality: hash integral floats as the integer they equal.
            Value::Int(v) => {
                state.write_u8(2);
                state.write_i64(*v);
            }
            Value::Float(v) => {
                if v.is_nan() {
                    state.write_u8(3);
                } else if *v == v.trunc() && v.abs() < 9.0e18 {
                    state.write_u8(2);
                    state.write_i64(*v as i64);
                } else {
                    state.write_u8(4);
                    state.write_u64(v.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(5);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            other => f.write_str(&other.display_cell()),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn dtype_of_values() {
        assert_eq!(Value::Null.dtype(), DType::Null);
        assert_eq!(Value::Bool(true).dtype(), DType::Bool);
        assert_eq!(Value::Int(3).dtype(), DType::Int);
        assert_eq!(Value::Float(1.5).dtype(), DType::Float);
        assert_eq!(Value::from("x").dtype(), DType::Str);
    }

    #[test]
    fn promotion_rules() {
        assert_eq!(DType::Int.promote(DType::Float), Some(DType::Float));
        assert_eq!(DType::Null.promote(DType::Str), Some(DType::Str));
        assert_eq!(DType::Bool.promote(DType::Bool), Some(DType::Bool));
        assert_eq!(DType::Int.promote(DType::Str), None);
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(4), Value::Float(4.0));
        assert_ne!(Value::Int(4), Value::Float(4.5));
        assert_eq!(hash_of(&Value::Int(4)), hash_of(&Value::Float(4.0)));
    }

    #[test]
    fn nan_is_self_equal_and_sorts_last() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
        assert!(Value::Float(1e308) < nan);
    }

    #[test]
    fn total_order_across_types() {
        let mut vals = vec![
            Value::from("b"),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
            Value::from("a"),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(1.5),
                Value::Int(2),
                Value::from("a"),
                Value::from("b"),
            ]
        );
    }

    #[test]
    fn display_cells() {
        assert_eq!(Value::Null.display_cell(), "");
        assert_eq!(Value::Int(7).display_cell(), "7");
        assert_eq!(Value::Float(0.5).display_cell(), "0.5");
        assert_eq!(Value::Float(2.0).display_cell(), "2.0");
        assert_eq!(Value::Float(0.123456789).display_cell(), "0.123457");
        assert_eq!(Value::from("hi").display_cell(), "hi");
    }

    #[test]
    fn float_formatting_edge_cases() {
        assert_eq!(format_float(f64::NAN), "NaN");
        assert_eq!(format_float(f64::INFINITY), "inf");
        assert_eq!(format_float(f64::NEG_INFINITY), "-inf");
        assert_eq!(format_float(-0.25), "-0.25");
        assert_eq!(format_float(1e16), "10000000000000000.0");
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
    }
}
