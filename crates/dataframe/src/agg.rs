//! Aggregation functions used by group-by reductions and the thicket
//! aggregated-statistics table.

use std::fmt;

/// A reduction over the non-null numeric values of a column slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggFn {
    /// Arithmetic mean.
    Mean,
    /// Median (midpoint of the two middle values for even counts).
    Median,
    /// Sample variance (n−1 denominator, matching pandas).
    Var,
    /// Sample standard deviation.
    Std,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Count of non-null values.
    Count,
    /// Linear-interpolated percentile in `[0, 100]`.
    Percentile(f64),
}

impl AggFn {
    /// Column-name suffix used when materializing aggregated columns,
    /// matching the paper's `<metric>_std` style (Figure 9).
    pub fn suffix(&self) -> String {
        match self {
            AggFn::Mean => "mean".into(),
            AggFn::Median => "median".into(),
            AggFn::Var => "var".into(),
            AggFn::Std => "std".into(),
            AggFn::Min => "min".into(),
            AggFn::Max => "max".into(),
            AggFn::Sum => "sum".into(),
            AggFn::Count => "count".into(),
            AggFn::Percentile(p) => format!("p{}", crate::value::Value::Float(*p).display_cell()),
        }
    }

    /// Apply the reduction to already-collected non-null values.
    /// Returns `None` when undefined (empty input; variance of one value).
    pub fn apply(&self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return if *self == AggFn::Count { Some(0.0) } else { None };
        }
        match self {
            AggFn::Mean => Some(mean(values)),
            AggFn::Median => Some(percentile(values, 50.0)),
            AggFn::Var => variance(values),
            AggFn::Std => variance(values).map(f64::sqrt),
            AggFn::Min => values.iter().copied().reduce(f64::min),
            AggFn::Max => values.iter().copied().reduce(f64::max),
            AggFn::Sum => Some(values.iter().sum()),
            AggFn::Count => Some(values.len() as f64),
            AggFn::Percentile(p) => Some(percentile(values, *p)),
        }
    }
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.suffix())
    }
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

fn variance(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values);
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Some(ss / (values.len() - 1) as f64)
}

/// Linear-interpolated percentile of unsorted data; `p` in `[0, 100]`.
fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: [f64; 5] = [2.0, 4.0, 4.0, 4.0, 6.0];

    #[test]
    fn basic_reductions() {
        assert_eq!(AggFn::Mean.apply(&DATA), Some(4.0));
        assert_eq!(AggFn::Sum.apply(&DATA), Some(20.0));
        assert_eq!(AggFn::Min.apply(&DATA), Some(2.0));
        assert_eq!(AggFn::Max.apply(&DATA), Some(6.0));
        assert_eq!(AggFn::Count.apply(&DATA), Some(5.0));
        assert_eq!(AggFn::Median.apply(&DATA), Some(4.0));
    }

    #[test]
    fn sample_variance_matches_pandas() {
        // pandas: [2,4,4,4,6].var() == 2.0 (ddof=1)
        assert_eq!(AggFn::Var.apply(&DATA), Some(2.0));
        let std = AggFn::Std.apply(&DATA).unwrap();
        assert!((std - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn undefined_cases() {
        assert_eq!(AggFn::Mean.apply(&[]), None);
        assert_eq!(AggFn::Count.apply(&[]), Some(0.0));
        assert_eq!(AggFn::Var.apply(&[3.0]), None);
        assert_eq!(AggFn::Std.apply(&[3.0]), None);
        assert_eq!(AggFn::Min.apply(&[3.0]), Some(3.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(AggFn::Percentile(0.0).apply(&v), Some(1.0));
        assert_eq!(AggFn::Percentile(100.0).apply(&v), Some(4.0));
        assert_eq!(AggFn::Percentile(50.0).apply(&v), Some(2.5));
        assert_eq!(AggFn::Percentile(25.0).apply(&v), Some(1.75));
        assert_eq!(AggFn::Percentile(50.0).apply(&[7.0]), Some(7.0));
    }

    #[test]
    fn suffixes() {
        assert_eq!(AggFn::Std.suffix(), "std");
        assert_eq!(AggFn::Percentile(25.0).suffix(), "p25.0");
    }
}
