//! CSV parsing back into a [`DataFrame`] — the inverse of
//! [`crate::to_csv`], with RFC-4180 quoting and dtype inference
//! (int → float → string promotion per column; empty cells are null).

use crate::colkey::ColKey;
use crate::column::ColumnBuilder;
use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::index::Index;
use crate::value::Value;

/// Parse CSV text into a frame. The first `index_levels` header columns
/// become the (multi-)index; remaining headers become data columns.
/// Headers of the form `group.name` reconstruct grouped column keys.
pub fn from_csv(text: &str, index_levels: usize) -> Result<DataFrame> {
    if index_levels == 0 {
        return Err(DfError::Other("need at least one index level".into()));
    }
    let mut rows = parse_rows(text)?;
    if rows.is_empty() {
        return Err(DfError::Empty("from_csv"));
    }
    let header = rows.remove(0);
    if header.len() < index_levels + 1 {
        return Err(DfError::Other(format!(
            "header has {} fields; need {} index levels plus data",
            header.len(),
            index_levels
        )));
    }
    let level_names: Vec<String> = header[..index_levels].to_vec();
    let col_keys: Vec<ColKey> = header[index_levels..]
        .iter()
        .map(|h| match h.split_once('.') {
            // Only treat "a.b" as grouped when both halves are non-empty
            // and the name itself is not dotted further.
            Some((g, n)) if !g.is_empty() && !n.is_empty() && !n.contains('.') => {
                ColKey::grouped(g, n)
            }
            _ => ColKey::new(h),
        })
        .collect();

    let mut keys: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
    let mut builders: Vec<ColumnBuilder> =
        (0..col_keys.len()).map(|_| ColumnBuilder::new()).collect();
    for (lineno, row) in rows.iter().enumerate() {
        if row.len() != header.len() {
            return Err(DfError::Other(format!(
                "row {} has {} fields, expected {}",
                lineno + 2,
                row.len(),
                header.len()
            )));
        }
        keys.push(row[..index_levels].iter().map(|c| infer(c)).collect());
        for (b, cell) in builders.iter_mut().zip(row[index_levels..].iter()) {
            b.push(infer(cell))?;
        }
    }
    let index = Index::new(level_names, keys)?;
    let mut df = DataFrame::new(index);
    for (key, b) in col_keys.into_iter().zip(builders) {
        df.insert(key, b.finish())?;
    }
    Ok(df)
}

/// Infer a cell's value: empty → null, else int, else float, else string.
fn infer(cell: &str) -> Value {
    if cell.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = cell.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = cell.parse::<f64>() {
        return Value::Float(f);
    }
    match cell {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        other => Value::from(other),
    }
}

/// Split CSV text into rows of unescaped fields (RFC-4180 quoting).
fn parse_rows(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(DfError::Other(
                            "quote inside unquoted CSV field".into(),
                        ));
                    }
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                c => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DfError::Other("unterminated CSV quote".into()));
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::display::to_csv;
    use crate::value::DType;

    fn sample() -> DataFrame {
        let index = Index::pairs(("node", "profile"), vec![("MAIN", 1i64), ("FOO", 1)]);
        let mut df = DataFrame::new(index);
        df.insert("time", Column::from_f64(vec![1.5, 0.25])).unwrap();
        df.insert("label", Column::from_strs(["a,b", "plain"])).unwrap();
        df
    }

    #[test]
    fn roundtrip_through_csv() {
        let df = sample();
        let csv = to_csv(&df);
        let back = from_csv(&csv, 2).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.index().names(), df.index().names());
        assert_eq!(
            back.column(&ColKey::new("time")).unwrap().numeric_values(),
            vec![1.5, 0.25]
        );
        assert_eq!(
            back.column(&ColKey::new("label")).unwrap().get(0),
            Value::from("a,b")
        );
    }

    #[test]
    fn grouped_headers_reconstructed() {
        let df = sample()
            .select(&[ColKey::new("time")])
            .unwrap()
            .with_column_group("CPU");
        let back = from_csv(&to_csv(&df), 2).unwrap();
        assert!(back.has_column(&ColKey::grouped("CPU", "time")));
    }

    #[test]
    fn dtype_inference() {
        let csv = "k,i,f,s,b,n\n1,5,2.5,hello,true,\n2,6,3.5,world,false,\n";
        let df = from_csv(csv, 1).unwrap();
        assert_eq!(df.column(&ColKey::new("i")).unwrap().dtype(), DType::Int);
        assert_eq!(df.column(&ColKey::new("f")).unwrap().dtype(), DType::Float);
        assert_eq!(df.column(&ColKey::new("s")).unwrap().dtype(), DType::Str);
        assert_eq!(df.column(&ColKey::new("b")).unwrap().dtype(), DType::Bool);
        assert_eq!(df.column(&ColKey::new("n")).unwrap().count_valid(), 0);
    }

    #[test]
    fn quoted_fields_with_newlines() {
        let csv = "k,x\n1,\"line1\nline2\"\n";
        let df = from_csv(csv, 1).unwrap();
        assert_eq!(
            df.column(&ColKey::new("x")).unwrap().get(0),
            Value::from("line1\nline2")
        );
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_csv("", 1).is_err());
        assert!(from_csv("a,b\n1\n", 1).is_err()); // short row
        assert!(from_csv("a,b\n1,\"unterminated\n", 1).is_err());
        assert!(from_csv("only_index\n1\n", 1).is_err()); // no data column
        assert!(from_csv("a,b\n1,2\n", 0).is_err());
        assert!(from_csv("a,b\n1,x\"y\n", 1).is_err()); // stray quote
    }

    #[test]
    fn crlf_line_endings() {
        let df = from_csv("k,x\r\n1,2\r\n3,4\r\n", 1).unwrap();
        assert_eq!(df.len(), 2);
        assert_eq!(df.column(&ColKey::new("x")).unwrap().numeric_values(), vec![2.0, 4.0]);
    }
}
