//! Property tests for the statistics kernel.

use proptest::prelude::*;
use thicket_stats as ts;

fn data() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, 2..60)
}

proptest! {
    /// min ≤ p25 ≤ median ≤ p75 ≤ max, and mean lies within [min, max].
    #[test]
    fn summary_ordering(v in data()) {
        let s = ts::describe(&v).unwrap();
        prop_assert!(s.min <= s.p25 + 1e-12);
        prop_assert!(s.p25 <= s.median + 1e-12);
        prop_assert!(s.median <= s.p75 + 1e-12);
        prop_assert!(s.p75 <= s.max + 1e-12);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
    }

    /// Variance is non-negative and shift-invariant.
    #[test]
    fn variance_properties(v in data(), shift in -100.0f64..100.0) {
        let var = ts::variance(&v).unwrap();
        prop_assert!(var >= 0.0);
        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        let var2 = ts::variance(&shifted).unwrap();
        prop_assert!((var - var2).abs() < 1e-6 * (1.0 + var.abs()));
    }

    /// Scaling data by c scales std by |c|.
    #[test]
    fn std_scales(v in data(), c in -10.0f64..10.0) {
        prop_assume!(ts::std_dev(&v).unwrap() > 1e-9);
        let scaled: Vec<f64> = v.iter().map(|x| x * c).collect();
        let lhs = ts::std_dev(&scaled).unwrap();
        let rhs = c.abs() * ts::std_dev(&v).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs));
    }

    /// Pearson is bounded in [-1, 1] and symmetric.
    #[test]
    fn pearson_bounds(v in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..40)) {
        let x: Vec<f64> = v.iter().map(|(a, _)| *a).collect();
        let y: Vec<f64> = v.iter().map(|(_, b)| *b).collect();
        if let Some(r) = ts::pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = ts::pearson(&y, &x).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    /// Pearson is invariant under positive affine transforms of x.
    #[test]
    fn pearson_affine_invariant(v in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..40),
                                a in 0.1f64..10.0, b in -50.0f64..50.0) {
        let x: Vec<f64> = v.iter().map(|(p, _)| *p).collect();
        let y: Vec<f64> = v.iter().map(|(_, q)| *q).collect();
        if let Some(r) = ts::pearson(&x, &y) {
            let xt: Vec<f64> = x.iter().map(|p| a * p + b).collect();
            let rt = ts::pearson(&xt, &y).unwrap();
            prop_assert!((r - rt).abs() < 1e-6);
        }
    }

    /// Histogram counts all non-NaN samples exactly once.
    #[test]
    fn histogram_conserves_mass(v in data(), bins in 1usize..20) {
        let h = ts::histogram(&v, bins).unwrap();
        prop_assert_eq!(h.total(), v.len());
        prop_assert_eq!(h.edges.len(), h.counts.len() + 1);
    }

    /// Linear fit on exact lines recovers the coefficients.
    #[test]
    fn linear_fit_recovers(intercept in -100.0f64..100.0, slope in -10.0f64..10.0,
                           xs in proptest::collection::hash_set(-1000i32..1000, 3..30)) {
        let x: Vec<f64> = xs.iter().map(|v| *v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| intercept + slope * v).collect();
        let f = ts::linear_fit(&x, &y).unwrap();
        prop_assert!((f.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
        prop_assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
    }

    /// The OLS fit minimizes RSS: any perturbed line does no better.
    #[test]
    fn ols_is_optimal(v in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..30),
                      da in -1.0f64..1.0, db in -1.0f64..1.0) {
        let x: Vec<f64> = v.iter().map(|(a, _)| *a).collect();
        let y: Vec<f64> = v.iter().map(|(_, b)| *b).collect();
        if let Some(f) = ts::linear_fit(&x, &y) {
            let rss_perturbed: f64 = x.iter().zip(y.iter())
                .map(|(a, b)| {
                    let e = b - ((f.intercept + da) + (f.slope + db) * a);
                    e * e
                })
                .sum();
            prop_assert!(f.rss <= rss_perturbed + 1e-6);
        }
    }

    /// Percentile is monotone in p.
    #[test]
    fn percentile_monotone(v in data(), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = ts::percentile(&v, lo).unwrap();
        let b = ts::percentile(&v, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }
}
