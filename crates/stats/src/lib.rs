//! # thicket-stats
//!
//! Descriptive statistics, correlation, histogram binning, and simple
//! linear regression — the numerical kernel behind Thicket's aggregated
//! statistics table (paper §4.2.1: variance, standard deviation,
//! max/min, percentiles, correlation coefficient, mean, median) and the
//! least-squares fits inside the Extra-P-style modeler.
//!
//! All functions operate on plain `&[f64]` slices, are allocation-light,
//! and define their edge cases explicitly (empty input, single sample,
//! zero variance).

#![warn(missing_docs)]

mod corr;
mod describe;
mod hist;
mod outliers;
mod regress;

pub use corr::{pearson, spearman};
pub use describe::{describe, geomean, max, mean, median, min, percentile, std_dev, variance, Summary};
pub use hist::{histogram, Histogram};
pub use outliers::{iqr_outliers, zscore_outliers, zscores};
pub use regress::{linear_fit, weighted_linear_fit, LinearFit};
