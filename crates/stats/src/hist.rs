//! Histogram binning (the data side of the paper's histogram
//! visualization, Figure 12).

/// A binned histogram: `edges.len() == counts.len() + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bin edges, ascending; bin `i` covers `[edges[i], edges[i+1])`
    /// except the last bin, which is closed on the right.
    pub edges: Vec<f64>,
    /// Number of samples per bin.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Total number of binned samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The midpoint of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        (self.edges[i] + self.edges[i + 1]) / 2.0
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> Option<usize> {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
    }
}

/// Bin `values` into `bins` equal-width bins over `[min, max]` (numpy
/// semantics: rightmost bin closed). `None` for empty input or zero bins.
/// A zero-width range produces one bin holding everything.
pub fn histogram(values: &[f64], bins: usize) -> Option<Histogram> {
    if values.is_empty() || bins == 0 {
        return None;
    }
    let lo = crate::describe::min(values)?;
    let hi = crate::describe::max(values)?;
    if lo == hi {
        return Some(Histogram {
            edges: vec![lo, hi],
            counts: vec![values.len()],
        });
    }
    let width = (hi - lo) / bins as f64;
    let edges: Vec<f64> = (0..=bins).map(|i| lo + width * i as f64).collect();
    let mut counts = vec![0usize; bins];
    for &v in values {
        if v.is_nan() {
            continue;
        }
        let mut b = ((v - lo) / width) as usize;
        if b >= bins {
            b = bins - 1; // v == hi lands in the last (closed) bin
        }
        counts[b] += 1;
    }
    Some(Histogram { edges, counts })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_binning() {
        let v = [0.0, 1.0, 2.0, 3.0, 4.0];
        let h = histogram(&v, 4).unwrap();
        assert_eq!(h.counts, vec![1, 1, 1, 2]); // 4.0 joins the last bin
        assert_eq!(h.edges.len(), 5);
        assert_eq!(h.total(), 5);
        assert_eq!(h.center(0), 0.5);
    }

    #[test]
    fn empty_and_zero_bins() {
        assert!(histogram(&[], 4).is_none());
        assert!(histogram(&[1.0], 0).is_none());
    }

    #[test]
    fn constant_data_single_bin() {
        let h = histogram(&[2.0, 2.0, 2.0], 5).unwrap();
        assert_eq!(h.counts, vec![3]);
        assert_eq!(h.edges, vec![2.0, 2.0]);
    }

    #[test]
    fn nan_values_skipped() {
        let h = histogram(&[0.0, f64::NAN, 1.0], 2).unwrap();
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn mode_bin() {
        let v = [0.0, 0.1, 0.2, 0.9];
        let h = histogram(&v, 2).unwrap();
        assert_eq!(h.mode_bin(), Some(0));
    }
}
