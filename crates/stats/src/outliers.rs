//! Outlier detection helpers backing the paper's Figure 12 workflow
//! ("the heatmap identifies two nodes as outliers…").

use crate::describe::{mean, percentile, std_dev};

/// Z-scores of each sample: `(x − mean) / std`. `None` when the standard
/// deviation is undefined or zero.
pub fn zscores(values: &[f64]) -> Option<Vec<f64>> {
    let m = mean(values)?;
    let s = std_dev(values)?;
    if s == 0.0 {
        return None;
    }
    Some(values.iter().map(|v| (v - m) / s).collect())
}

/// Indices of samples outside the Tukey fences `[Q1 − k·IQR, Q3 + k·IQR]`
/// (`k = 1.5` is the conventional whisker). `None` on empty input.
pub fn iqr_outliers(values: &[f64], k: f64) -> Option<Vec<usize>> {
    let q1 = percentile(values, 25.0)?;
    let q3 = percentile(values, 75.0)?;
    let iqr = q3 - q1;
    let lo = q1 - k * iqr;
    let hi = q3 + k * iqr;
    Some(
        values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v < lo || **v > hi)
            .map(|(i, _)| i)
            .collect(),
    )
}

/// Indices whose |z-score| exceeds `threshold` (e.g. 3.0). `None` when
/// z-scores are undefined.
pub fn zscore_outliers(values: &[f64], threshold: f64) -> Option<Vec<usize>> {
    let z = zscores(values)?;
    Some(
        z.iter()
            .enumerate()
            .filter(|(_, z)| z.abs() > threshold)
            .map(|(i, _)| i)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscores_standardize() {
        let v = [10.0, 20.0, 30.0];
        let z = zscores(&v).unwrap();
        assert!((z[1]).abs() < 1e-12);
        assert!((z[0] + z[2]).abs() < 1e-12);
        assert_eq!(zscores(&[5.0, 5.0]), None); // zero std
        assert_eq!(zscores(&[1.0]), None);
    }

    #[test]
    fn iqr_flags_extremes() {
        let mut v = vec![1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02];
        v.push(10.0);
        let out = iqr_outliers(&v, 1.5).unwrap();
        assert_eq!(out, vec![7]);
        // Tight data with no extremes.
        assert!(iqr_outliers(&v[..7], 1.5).unwrap().is_empty());
        assert_eq!(iqr_outliers(&[], 1.5), None);
    }

    #[test]
    fn zscore_outliers_threshold() {
        let mut v = vec![0.0; 20];
        for (i, x) in v.iter_mut().enumerate() {
            *x = (i % 5) as f64 * 0.1;
        }
        v.push(50.0);
        let out = zscore_outliers(&v, 3.0).unwrap();
        assert_eq!(out, vec![20]);
    }

    #[test]
    fn wider_fence_flags_fewer() {
        let v = [1.0, 1.2, 0.8, 1.1, 0.9, 3.0];
        let strict = iqr_outliers(&v, 1.0).unwrap();
        let loose = iqr_outliers(&v, 5.0).unwrap();
        assert!(strict.len() >= loose.len());
    }
}
