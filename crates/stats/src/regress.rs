//! Simple linear least squares — the fitting kernel under the
//! Extra-P-style modeler (each PMNF hypothesis reduces to a linear fit on
//! a transformed predictor).

/// Result of fitting `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFit {
    /// Intercept (`c₀`).
    pub intercept: f64,
    /// Slope (`c₁`).
    pub slope: f64,
    /// Residual sum of squares.
    pub rss: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Sample size.
    pub n: usize,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Adjusted R² for a two-parameter model; NaN when n ≤ 2.
    pub fn adjusted_r2(&self) -> f64 {
        if self.n <= 2 {
            return f64::NAN;
        }
        1.0 - (1.0 - self.r2) * (self.n as f64 - 1.0) / (self.n as f64 - 2.0)
    }
}

/// Ordinary least squares for `y = intercept + slope · x`.
///
/// `None` for mismatched lengths, fewer than two points, or a degenerate
/// (constant-x) predictor. Constant `y` fits exactly with slope 0 and
/// `r2 = 1` by convention (the model explains all — zero — variance).
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let dx = a - mx;
        let dy = b - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let mut rss = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let e = b - (intercept + slope * a);
        rss += e * e;
    }
    let r2 = if syy == 0.0 { 1.0 } else { 1.0 - rss / syy };
    Some(LinearFit {
        intercept,
        slope,
        rss,
        r2,
        n: x.len(),
    })
}

/// Weighted least squares for `y = intercept + slope · x` with
/// non-negative observation weights (e.g. `1/σᵢ²` under heteroscedastic
/// noise). `rss` and `r2` are reported in the weighted metric, so they
/// reduce to [`linear_fit`]'s values when all weights are 1.
///
/// `None` under the same degeneracies as [`linear_fit`], or when weights
/// are negative, non-finite, or sum to zero.
pub fn weighted_linear_fit(x: &[f64], y: &[f64], w: &[f64]) -> Option<LinearFit> {
    if x.len() != y.len() || x.len() != w.len() || x.len() < 2 {
        return None;
    }
    if w.iter().any(|&wi| wi < 0.0 || !wi.is_finite()) {
        return None;
    }
    let sw: f64 = w.iter().sum();
    if sw <= 0.0 {
        return None;
    }
    let mx = x.iter().zip(w).map(|(a, wi)| a * wi).sum::<f64>() / sw;
    let my = y.iter().zip(w).map(|(b, wi)| b * wi).sum::<f64>() / sw;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for ((a, b), wi) in x.iter().zip(y.iter()).zip(w) {
        let dx = a - mx;
        let dy = b - my;
        sxx += wi * dx * dx;
        sxy += wi * dx * dy;
        syy += wi * dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let mut rss = 0.0;
    for ((a, b), wi) in x.iter().zip(y.iter()).zip(w) {
        let e = b - (intercept + slope * a);
        rss += wi * e * e;
    }
    let r2 = if syy == 0.0 { 1.0 } else { 1.0 - rss / syy };
    Some(LinearFit {
        intercept,
        slope,
        rss,
        r2,
        n: x.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 + 2.0 * v).collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!(f.rss < 1e-20);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 23.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_r2_below_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.1, 3.9, 6.2, 7.8, 10.1];
        let f = linear_fit(&x, &y).unwrap();
        assert!(f.r2 > 0.99 && f.r2 < 1.0);
        assert!(f.adjusted_r2() < f.r2);
        assert!((f.slope - 2.0).abs() < 0.1);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_none());
        assert!(linear_fit(&[3.0, 3.0], &[1.0, 2.0]).is_none()); // constant x
    }

    #[test]
    fn constant_y_fits_flat() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert!((f.slope).abs() < 1e-12);
        assert!((f.intercept - 5.0).abs() < 1e-12);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn weighted_matches_plain_under_unit_weights() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.1, 3.9, 6.2, 7.8, 10.1];
        let plain = linear_fit(&x, &y).unwrap();
        let weighted = weighted_linear_fit(&x, &y, &[1.0; 5]).unwrap();
        assert!((plain.intercept - weighted.intercept).abs() < 1e-12);
        assert!((plain.slope - weighted.slope).abs() < 1e-12);
        assert!((plain.rss - weighted.rss).abs() < 1e-12);
        assert!((plain.r2 - weighted.r2).abs() < 1e-12);
    }

    #[test]
    fn weights_pull_the_fit() {
        // Three colinear points plus an outlier; weighting the outlier to
        // zero recovers the exact line through the rest.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 100.0];
        let f = weighted_linear_fit(&x, &y, &[1.0, 1.0, 1.0, 0.0]).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-9);
        assert!((f.intercept - 1.0).abs() < 1e-9);
        assert!(f.rss < 1e-18);
    }

    #[test]
    fn weighted_degenerate_inputs() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0];
        assert!(weighted_linear_fit(&x, &y, &[1.0, 1.0]).is_none()); // length
        assert!(weighted_linear_fit(&x, &y, &[0.0, 0.0, 0.0]).is_none()); // zero mass
        assert!(weighted_linear_fit(&x, &y, &[1.0, -1.0, 1.0]).is_none()); // negative
        assert!(weighted_linear_fit(&x, &y, &[1.0, f64::NAN, 1.0]).is_none());
        // All weight on a single x: degenerate predictor.
        assert!(weighted_linear_fit(&[3.0, 3.0, 5.0], &y, &[1.0, 1.0, 0.0]).is_none());
    }
}
