//! Descriptive statistics over `&[f64]` slices.

/// Arithmetic mean; `None` on empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Geometric mean of strictly positive values; `None` on empty input or if
/// any value is non-positive.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Sample variance (n−1 denominator); `None` with fewer than two samples.
pub fn variance(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Some(ss / (values.len() - 1) as f64)
}

/// Sample standard deviation; `None` with fewer than two samples.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Minimum; `None` on empty input. NaNs are ignored.
pub fn min(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .reduce(f64::min)
}

/// Maximum; `None` on empty input. NaNs are ignored.
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .reduce(f64::max)
}

/// Median (linear interpolation); `None` on empty input.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Linear-interpolated percentile, `p` in `[0, 100]`; `None` on empty
/// input. Matches numpy's default (`linear`) interpolation.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    Some(if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    })
}

/// Five-number-plus summary of a sample (pandas `describe()` analogue).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation (NaN for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize a sample; `None` on empty input.
pub fn describe(values: &[f64]) -> Option<Summary> {
    Some(Summary {
        count: values.len(),
        mean: mean(values)?,
        std: std_dev(values).unwrap_or(f64::NAN),
        min: min(values)?,
        p25: percentile(values, 25.0)?,
        median: median(values)?,
        p75: percentile(values, 75.0)?,
        max: max(values)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: [f64; 6] = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];

    #[test]
    fn basic_moments() {
        assert_eq!(mean(&DATA), Some(23.0 / 6.0));
        // statistics.variance([3,1,4,1,5,9]) == 8.966666666666667
        let v = variance(&DATA).unwrap();
        assert!((v - 8.966666666666667).abs() < 1e-12);
        assert!((std_dev(&DATA).unwrap() - v.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn extrema_and_median() {
        assert_eq!(min(&DATA), Some(1.0));
        assert_eq!(max(&DATA), Some(9.0));
        assert_eq!(median(&DATA), Some(3.5));
        assert_eq!(median(&[2.0, 4.0, 6.0]), Some(4.0));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(median(&[7.0]), Some(7.0));
        assert!(describe(&[]).is_none());
    }

    #[test]
    fn percentiles_match_numpy() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 25.0), Some(1.75));
        assert_eq!(percentile(&v, 75.0), Some(3.25));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        // Out-of-range p clamps.
        assert_eq!(percentile(&v, 150.0), Some(4.0));
    }

    #[test]
    fn nan_ignored_by_extrema() {
        let v = [f64::NAN, 2.0, 5.0];
        assert_eq!(min(&v), Some(2.0));
        assert_eq!(max(&v), Some(5.0));
    }

    #[test]
    fn geometric_mean() {
        let g = geomean(&[1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, -2.0]), None);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn describe_summary() {
        let s = describe(&DATA).unwrap();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 3.5);
        let one = describe(&[5.0]).unwrap();
        assert!(one.std.is_nan());
    }
}
