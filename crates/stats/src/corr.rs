//! Correlation coefficients.

use crate::describe::mean;

/// Pearson product-moment correlation of two equal-length samples.
/// `None` for mismatched lengths, fewer than two points, or zero variance
/// on either side.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation (Pearson over mid-ranks; ties averaged).
/// Same `None` conditions as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    pearson(&ranks(x), &ranks(y))
}

/// Mid-ranks (1-based; ties share the average of their rank range).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j are tied; average rank is the midpoint.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_pearson_value() {
        // scipy.stats.pearsonr([1,2,3,4,5], [2,1,4,3,5]) == 0.8
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        assert!((pearson(&x, &y).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance
        assert_eq!(spearman(&[], &[]), None);
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // A monotone but non-linear relation has spearman == 1.
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let p = pearson(&x, &y).unwrap();
        assert!(p < 1.0);
    }

    #[test]
    fn spearman_with_ties() {
        // scipy.stats.spearmanr([1,2,2,3], [1,2,3,4]).statistic ≈ 0.9486832980505138
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        assert!((spearman(&x, &y).unwrap() - 0.9486832980505138).abs() < 1e-12);
    }

    #[test]
    fn mid_ranks() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0]), vec![1.0]);
    }
}
