//! The Call Path Query Language on a CUDA call tree (paper §4.1.3,
//! Figure 8): find the paths whose leaf names end in `block_128` and
//! show the call tree before and after.
//!
//! ```sh
//! cargo run --example query_language
//! ```

use thicket::prelude::*;

fn main() {
    // A Lassen CUDA run: the tree is Base_CUDA → group → kernel →
    // kernel.block_<N>.
    let mut b128 = GpuRunConfig::lassen_default();
    b128.block_size = 128;
    let mut b256 = GpuRunConfig::lassen_default();
    b256.block_size = 256;
    let profiles = vec![simulate_gpu_run(&b128), simulate_gpu_run(&b256)];
    let tk = Thicket::loader(&profiles)
        .profile_ids(&[Value::Int(128), Value::Int(256)])
        .load()
        .expect("compose")
        .0;

    println!("call tree before the query (time (gpu), block-128 profile):");
    print!("{}", tk.tree(&ColKey::new("time (gpu)"), &Value::Int(128)));

    // QueryMatcher().match(".", name == "Base_CUDA")
    //               .rel("*")
    //               .rel(".", name ends with "block_128")
    let query = Query::builder()
        .node(".", pred::name_eq("Base_CUDA"))
        .any("*")
        .node(".", pred::name_ends_with("block_128"))
        .build();

    let filtered = tk.query(&query).expect("apply query");
    println!("\ncall tree after querying for *.block_128 leaves:");
    print!("{}", filtered.tree(&ColKey::new("time (gpu)"), &Value::Int(128)));

    println!(
        "\nnodes: {} -> {}; perf rows: {} -> {}",
        tk.graph().len(),
        filtered.graph().len(),
        tk.perf_data().len(),
        filtered.perf_data().len(),
    );

    // Every kept leaf really ends in block_128.
    let leaves: Vec<String> = filtered
        .graph()
        .ids()
        .filter(|&id| filtered.graph().node(id).children().is_empty())
        .map(|id| filtered.graph().node(id).name().to_string())
        .collect();
    println!("kept leaves: {leaves:?}");
    assert!(leaves.iter().all(|l| l.ends_with("block_128")));
}
