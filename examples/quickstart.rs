//! Quickstart: collect an ensemble, compose a thicket, and run the three
//! basic EDA moves — inspect metadata, filter, and aggregate statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use thicket::prelude::*;
use thicket_perfsim::Compiler;

fn main() {
    // --- Step 1+2 of the paper's Figure 1 workflow: run the application
    // under a measurement tool, producing call-tree profiles. Here: the
    // simulated RAJA Performance Suite on two compilers × two problem
    // sizes (the Figure 5 ensemble).
    let mut profiles = Vec::new();
    for compiler in [Compiler::clang9(), Compiler::xl16()] {
        for size in [1_048_576u64, 4_194_304] {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.compiler = compiler.clone();
            cfg.problem_size = size;
            cfg.seed = size ^ compiler.name.len() as u64;
            profiles.push(simulate_cpu_run(&cfg));
        }
    }

    // --- Step 3: load the ensemble into a thicket object.
    let mut tk = Thicket::loader(&profiles).load().expect("compose profiles").0;
    println!("{tk}");

    // --- Step 4: EDA. Start from the metadata overview…
    println!("metadata table:");
    println!(
        "{}",
        tk.metadata()
            .select(&[
                ColKey::new("problem size"),
                ColKey::new("compiler"),
                ColKey::new("cluster"),
                ColKey::new("user"),
            ])
            .expect("metadata columns")
    );

    // …filter to the clang runs (Figure 6)…
    let clang = tk.filter_metadata(|r| r.str("compiler").as_deref() == Some("clang-9.0.0"));
    println!(
        "after filter_metadata(compiler == clang-9.0.0): {} profiles",
        clang.profiles().len()
    );

    // …group by (compiler, problem size) (Figure 7)…
    let groups = tk
        .groupby(&[ColKey::new("compiler"), ColKey::new("problem size")])
        .expect("groupby");
    println!("{} thickets created...", groups.len());
    for (key, sub) in &groups {
        println!(
            "  ({}, {}) -> {} profile(s)",
            key[0], key[1],
            sub.profiles().len()
        );
    }

    // …and aggregate statistics across the ensemble (Figure 9).
    tk.compute_stats(&[
        (ColKey::new("time (exc)"), vec![AggFn::Mean, AggFn::Std]),
        (ColKey::new("Backend bound"), vec![AggFn::Std]),
    ])
    .expect("compute stats");
    println!("aggregated statistics (first rows):");
    println!("{}", tk.statsframe_named().head(8));

    // The tree+table view: every profile's metric aligned with its node.
    println!("tree + table (time (exc) across the ensemble):");
    println!("{}", tk.tree_table(&ColKey::new("time (exc)")).expect("tree table"));

    // Bonus: the annotated call tree of one profile.
    let first = tk.profiles()[0].clone();
    println!("call tree (time (exc), profile {first}):");
    print!("{}", tk.tree(&ColKey::new("time (exc)"), &first));
}
