//! The paper's second case study (§5.2): MARBL strong scaling on an HPC
//! cluster (RZTopaz / CTS-1) vs AWS ParallelCluster, with Extra-P-style
//! scaling models (Figures 11, 16, 17).
//!
//! ```sh
//! cargo run --example marbl_scaling
//! ```

use thicket::prelude::*;
use thicket_dataframe::AggFn;

fn main() {
    // Figure 16's configurations: both clusters, 1..32 nodes, 5 runs each.
    let nodes = [1u32, 2, 4, 8, 16, 32];
    let profiles = marbl_ensemble(&nodes, 5);
    let tk = Thicket::loader(&profiles).load().expect("compose ensemble").0;
    println!("{tk}");

    // ---- Figure 17: node-to-node strong scaling of timeStepLoop --------
    println!("strong scaling, time per cycle (s):");
    println!("{:<16} {:>6} {:>12} {:>12}", "arch", "nodes", "mean", "std");
    for arch in ["CTS1", "C5n.18xlarge"] {
        let sub = tk.filter_metadata(|r| r.str("arch").as_deref() == Some(arch));
        let step = sub.find_node("timeStepLoop").expect("timeStepLoop");
        let hosts = sub.metadata_column(&ColKey::new("numhosts")).unwrap();
        for &n in &nodes {
            let samples: Vec<f64> = sub
                .metric_series(step, &ColKey::new("time per cycle"))
                .into_iter()
                .filter(|(p, _)| hosts.get(p).and_then(|v| v.as_i64()) == Some(n as i64))
                .map(|(_, v)| v)
                .collect();
            let mean = thicket_stats::mean(&samples).unwrap();
            let std = thicket_stats::std_dev(&samples).unwrap_or(0.0);
            println!("{arch:<16} {n:>6} {mean:>12.4} {std:>12.4}");
        }
    }

    // Scaling efficiency at 16 nodes (the paper: "both scale well up to
    // 16 nodes").
    for arch in ["CTS1", "C5n.18xlarge"] {
        let sub = tk.filter_metadata(|r| r.str("arch").as_deref() == Some(arch));
        let step = sub.find_node("timeStepLoop").unwrap();
        let hosts = sub.metadata_column(&ColKey::new("numhosts")).unwrap();
        let mean_at = |n: i64| -> f64 {
            let v: Vec<f64> = sub
                .metric_series(step, &ColKey::new("time per cycle"))
                .into_iter()
                .filter(|(p, _)| hosts.get(p).and_then(|x| x.as_i64()) == Some(n))
                .map(|(_, v)| v)
                .collect();
            thicket_stats::mean(&v).unwrap()
        };
        let eff = mean_at(1) / (16.0 * mean_at(16));
        println!("{arch}: 16-node strong-scaling efficiency = {:.0}%", eff * 100.0);
    }

    // ---- Figure 11: Extra-P models of M_solver->Mult --------------------
    println!("\nExtra-P models (avg time/rank of M_solver->Mult):");
    for arch in ["CTS1", "C5n.18xlarge"] {
        let sub = tk.filter_metadata(|r| r.str("arch").as_deref() == Some(arch));
        let models = model_metric(
            &sub,
            &ColKey::new("avg#inclusive#sum#time.duration"),
            &ColKey::new("mpi.world.size"),
        )
        .expect("bulk modeling");
        let solver = models
            .iter()
            .find(|m| m.name == "M_solver->Mult")
            .expect("solver model");
        println!(
            "  {arch:<14} {}   (SMAPE {:.2}%, adj. R² {:.4})",
            solver.model.formula(),
            solver.model.smape,
            solver.model.adjusted_r2
        );
        println!(
            "    extrapolated to 2304 ranks: {:.1} s",
            solver.model.eval(2304.0)
        );
    }

    // ---- Figure 18's metadata relationships ------------------------------
    // Walltime vs ranks: inverse correlation (criss-crossing PCP lines).
    let walltime: Vec<f64> = (0..tk.metadata().len())
        .filter_map(|i| tk.metadata().row(i).f64("walltime"))
        .collect();
    let ranks: Vec<f64> = (0..tk.metadata().len())
        .filter_map(|i| tk.metadata().row(i).f64("mpi.world.size"))
        .collect();
    let corr = thicket_stats::spearman(&ranks, &walltime).unwrap();
    println!("\nspearman(mpi.world.size, walltime) = {corr:.3} (inverse, as in the PCP)");

    // Per-node aggregated stats across the whole ensemble.
    let mut both = tk.clone();
    both.compute_stats(&[(
        ColKey::new("avg#inclusive#sum#time.duration"),
        vec![AggFn::Mean, AggFn::Min, AggFn::Max],
    )])
    .expect("stats");
    println!("\nper-function time/rank statistics across the ensemble:");
    println!("{}", both.statsframe_named());
}
