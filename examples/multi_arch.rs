//! Multi-architecture analysis (paper §5.1.2, Figures 4 and 15): compose
//! a CPU thicket and a GPU thicket along the column axis and derive the
//! CPU→GPU speedup per kernel.
//!
//! ```sh
//! cargo run --example multi_arch
//! ```

use thicket::prelude::*;

fn main() {
    let sizes = [1_048_576u64, 4_194_304, 8_388_608];

    // One CPU profile (Quartz) and one GPU profile (Lassen) per size.
    let cpu_profiles: Vec<_> = sizes
        .iter()
        .map(|&s| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.problem_size = s;
            cfg.seed = s;
            simulate_cpu_run(&cfg)
        })
        .collect();
    let gpu_profiles: Vec<_> = sizes
        .iter()
        .map(|&s| {
            let mut cfg = GpuRunConfig::lassen_default();
            cfg.problem_size = s;
            cfg.seed = s;
            simulate_gpu_run(&cfg)
        })
        .collect();

    // Build one thicket per architecture and re-index profiles by the
    // problem size so the two ensembles share a secondary index.
    let cpu = Thicket::loader(&cpu_profiles).load()
        .unwrap()
        .0
        .reindex_profiles_by(&ColKey::new("problem size"))
        .unwrap();
    let gpu = Thicket::loader(&gpu_profiles).load()
        .unwrap()
        .0
        .reindex_profiles_by(&ColKey::new("problem size"))
        .unwrap();

    // Hierarchical composition with a (CPU, GPU) column index; the CPU
    // tree (Base_Seq) and GPU tree (Base_CUDA) differ in shape, so nodes
    // match by kernel name, as the paper's cross-tool table does.
    let mut composed = concat_thickets(&[("CPU", &cpu), ("GPU", &gpu)], NodeMatch::Name)
        .expect("column-axis composition");

    // The derived speedup column of Figure 15: CPU time (exc) / GPU time.
    composed
        .add_derived_column(ColKey::grouped("Derived", "speedup"), |r| {
            match (
                r.f64(ColKey::grouped("CPU", "time (exc)")),
                r.f64(ColKey::grouped("GPU", "time (gpu)")),
            ) {
                (Some(c), Some(g)) if g > 0.0 => Value::Float(c / g),
                _ => Value::Null,
            }
        })
        .expect("derived column");

    // Print the Figure 15 table for the two featured kernels.
    let view = composed
        .perf_data()
        .select(&[
            ColKey::grouped("CPU", "time (exc)"),
            ColKey::grouped("CPU", "Retiring"),
            ColKey::grouped("CPU", "Backend bound"),
            ColKey::grouped("GPU", "time (gpu)"),
            ColKey::grouped("GPU", "gpu__dram_throughput"),
            ColKey::grouped("GPU", "sm__throughput"),
            ColKey::grouped("Derived", "speedup"),
        ])
        .unwrap()
        .filter(|r| {
            matches!(
                r.level("node").as_str(),
                Some("Apps_VOL3D") | Some("Lcals_HYDRO_1D")
            )
        });
    println!("{view}");

    // The paper's finding: VOL3D (compute-heavy, high retiring) gains
    // more from the GPU than HYDRO_1D (backend bound, bandwidth-limited).
    let speedup_at = |kernel: &str, size: i64| -> f64 {
        for row in 0..composed.perf_data().len() {
            let key = composed.perf_data().index().key(row);
            if key[0] == Value::from(kernel) && key[1] == Value::Int(size) {
                return composed
                    .perf_data()
                    .column(&ColKey::grouped("Derived", "speedup"))
                    .unwrap()
                    .get_f64(row)
                    .unwrap();
            }
        }
        f64::NAN
    };
    let vol = speedup_at("Apps_VOL3D", 8_388_608);
    let hydro = speedup_at("Lcals_HYDRO_1D", 8_388_608);
    println!("speedup at 8388608: Apps_VOL3D = {vol:.2}x, Lcals_HYDRO_1D = {hydro:.2}x");
    assert!(vol > hydro, "VOL3D should gain more on the GPU");
}
