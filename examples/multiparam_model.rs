//! Multi-parameter performance modeling (paper §4.2.3: Extra-P covers
//! "one or more modeling parameters"): a MARBL *weak-scaling* sweep over
//! both the MPI rank count and the zones-per-rank load, modeled as
//! `f(p, q) = c0 + c1·t1(p) + c2·t2(q)`.
//!
//! The simulator's per-cycle cost is compute (∝ zones/rank) plus a 3-D
//! halo exchange (∝ (zones/rank)^(2/3)) plus a log-depth collective —
//! so the planted truth is additive in `log2(p)` and `q^(2/3)`/`q`, and
//! the fitted model should land in that family.
//!
//! ```sh
//! cargo run --example multiparam_model
//! ```

use thicket::prelude::*;
use thicket_model::fit_model2;
use thicket_perfsim::marbl::time_per_cycle;

fn main() {
    // Weak scaling grid: nodes × zones-per-rank.
    let node_counts = [1u32, 2, 4, 8, 16, 32];
    let zones_per_rank = [96_000u64, 192_000, 384_000, 768_000];

    let mut params = Vec::new();
    let mut times = Vec::new();
    println!(
        "{:>6} {:>6} {:>12} {:>14}",
        "nodes", "ranks", "zones/rank", "time/cycle(s)"
    );
    for &nodes in &node_counts {
        for &zpr in &zones_per_rank {
            let mut cfg = MarblConfig::triple_point(MarblCluster::RzTopaz, nodes, 0);
            cfg.zones = zpr * cfg.ranks() as u64;
            let t = time_per_cycle(&cfg);
            println!(
                "{nodes:>6} {:>6} {zpr:>12} {t:>14.4}",
                cfg.ranks()
            );
            params.push((cfg.ranks() as f64, zpr as f64));
            times.push(t);
        }
    }

    let model = fit_model2(&params, &times).expect("two-parameter fit");
    println!("\nfitted model (p = ranks, q = zones/rank):");
    println!("  f(p, q) = {}", model.formula());
    println!("  SMAPE = {:.3} %", model.smape);

    // Extrapolate to a configuration outside the sweep.
    let big = model.eval(64.0 * 36.0, 1_536_000.0);
    println!("\nextrapolated time/cycle at 64 nodes, 1.54M zones/rank: {big:.3} s");

    // Sanity: model tracks the simulator on held-out points.
    let mut worst = 0.0f64;
    for &nodes in &[3u32, 12, 24] {
        for &zpr in &[128_000u64, 512_000] {
            let mut cfg = MarblConfig::triple_point(MarblCluster::RzTopaz, nodes, 0);
            cfg.zones = zpr * cfg.ranks() as u64;
            let truth = time_per_cycle(&cfg);
            let pred = model.eval(cfg.ranks() as f64, zpr as f64);
            worst = worst.max((pred - truth).abs() / truth);
        }
    }
    println!("worst relative error on held-out grid points: {:.2} %", worst * 100.0);
    assert!(worst < 0.15, "model should generalize on the weak-scaling grid");
}
