//! Outlier hunting across an ensemble (the Figure 12 workflow, extended):
//! pivot a metric into a node×profile matrix, flag outlier runs per node
//! with Tukey fences and z-scores, and render box plots per kernel.
//!
//! ```sh
//! cargo run --example outlier_hunt
//! ```

use thicket::prelude::*;
use thicket_learn::{dbscan, DbscanLabel, StandardScaler};
use thicket_stats::{iqr_outliers, zscore_outliers};
use thicket_viz::box_plot;

fn main() {
    // A 20-run ensemble with one deliberately perturbed run (e.g. a node
    // with a noisy neighbour): run 13 is 30 % slower across the board.
    let mut profiles: Vec<Profile> = (0..20)
        .map(|seed| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.problem_size = 4_194_304;
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect();
    {
        let slow = &mut profiles[13];
        let g = slow.graph().clone();
        for id in g.preorder() {
            if let Some(t) = slow.metric(id, "time (exc)") {
                slow.set_metric(id, "time (exc)", t * 1.3);
            }
        }
    }

    let tk = Thicket::loader(&profiles)
        .profile_ids(&(0..20i64).map(Value::Int).collect::<Vec<_>>())
        .load()
        .expect("compose")
        .0;

    // Node × profile matrix of exclusive times.
    let (node_names, profile_labels, matrix) = tk
        .pivot_matrix(&ColKey::new("time (exc)"))
        .expect("pivot");
    println!(
        "pivoted {} nodes × {} profiles of time (exc)\n",
        node_names.len(),
        profile_labels.len()
    );

    // Per-node outlier runs via Tukey fences.
    println!("per-kernel outlier runs (IQR fences, k = 1.5):");
    let mut votes = vec![0usize; profile_labels.len()];
    for (name, row) in node_names.iter().zip(matrix.iter()) {
        if let Some(outliers) = iqr_outliers(row, 1.5) {
            if !outliers.is_empty() {
                let labels: Vec<&str> =
                    outliers.iter().map(|&i| profile_labels[i].as_str()).collect();
                println!("  {name:<28} runs {labels:?}");
                for &i in &outliers {
                    votes[i] += 1;
                }
            }
        }
    }
    let culprit = votes
        .iter()
        .enumerate()
        .max_by_key(|(_, v)| **v)
        .map(|(i, _)| i)
        .expect("non-empty");
    println!(
        "\nmost-flagged run: profile {} ({} kernels agree)",
        profile_labels[culprit], votes[culprit]
    );
    assert_eq!(profile_labels[culprit], "13");

    // Cross-check with z-scores on the whole-run totals.
    let totals: Vec<f64> = tk
        .profile_totals(&ColKey::new("time (exc)"))
        .expect("totals")
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    let z_out = zscore_outliers(&totals, 3.0).unwrap_or_default();
    println!("z-score (>3σ) outliers on run totals: {z_out:?}");

    // And with DBSCAN over standardized per-run feature vectors
    // (total time, mean backend bound): the slow run becomes noise.
    let backend: Vec<f64> = (0..20i64)
        .map(|p| {
            let node = tk.find_node("Lcals_HYDRO_1D").unwrap();
            tk.metric_at(node, &Value::Int(p), &ColKey::new("Backend bound"))
                .unwrap()
        })
        .collect();
    let features: Vec<Vec<f64>> = totals
        .iter()
        .zip(backend.iter())
        .map(|(&t, &b)| vec![t, b])
        .collect();
    let (_, scaled) = StandardScaler::fit_transform(&features);
    let labels = dbscan(&scaled, 1.0, 4);
    let noise: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, l)| **l == DbscanLabel::Noise)
        .map(|(i, _)| i)
        .collect();
    println!("DBSCAN noise points (eps = 1.0, min_pts = 4): {noise:?}");

    // Box plots of the four headline kernels across the ensemble.
    let groups: Vec<(String, Vec<f64>)> = [
        "Apps_NODAL_ACCUMULATION_3D",
        "Apps_VOL3D",
        "Lcals_HYDRO_1D",
        "Stream_DOT",
    ]
    .iter()
    .map(|kernel| {
        let node = tk.find_node(kernel).unwrap();
        let values: Vec<f64> = tk
            .metric_series(node, &ColKey::new("time (exc)"))
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        (kernel.to_string(), values)
    })
    .collect();
    let svg = box_plot(&groups, "time (exc) across 20 runs", "seconds");
    let out = std::env::temp_dir().join("thicket-outlier-boxplot.svg");
    std::fs::write(&out, svg).expect("write svg");
    println!("\nbox plot written to {}", out.display());
}
