//! The paper's first case study (§5.1): top-down analysis and K-means
//! clustering of the RAJA Performance Suite on Quartz.
//!
//! Reproduces the shape of Figure 10 (clusters of "Stream" kernels over
//! compiler optimization levels) and Figure 14 (top-down boundedness per
//! kernel and problem size).
//!
//! ```sh
//! cargo run --example rajaperf_topdown
//! ```

use thicket::prelude::*;
use thicket_learn::{kmeans, silhouette_score, KMeansConfig, StandardScaler};

fn main() {
    // ---- Figure 14: top-down metrics vs problem size -------------------
    let sizes = [1_048_576u64, 2_097_152, 4_194_304, 8_388_608];
    let mut profiles = Vec::new();
    for &size in &sizes {
        let mut cfg = CpuRunConfig::quartz_default();
        cfg.problem_size = size;
        cfg.seed = size;
        profiles.push(simulate_cpu_run(&cfg));
    }
    let tk = Thicket::loader(&profiles)
        .profile_ids(&sizes.iter().map(|&s| Value::Int(s as i64)).collect::<Vec<_>>())
        .load()
        .expect("compose")
        .0;

    println!("top-down boundedness by kernel and problem size:");
    println!("{:<28} {:>9}  {:>8}  {:>8}", "kernel", "size", "retiring", "backend");
    for kernel in ["Apps_NODAL_ACCUMULATION_3D", "Apps_VOL3D", "Lcals_HYDRO_1D", "Stream_DOT"] {
        let node = tk.find_node(kernel).expect("kernel node");
        for &size in &sizes {
            let profile = Value::Int(size as i64);
            let ret = tk.metric_at(node, &profile, &ColKey::new("Retiring")).unwrap();
            let be = tk.metric_at(node, &profile, &ColKey::new("Backend bound")).unwrap();
            println!("{kernel:<28} {size:>9}  {ret:>8.3}  {be:>8.3}");
        }
    }

    // ---- Figure 10: K-means over Stream kernels × opt levels -----------
    // Four profiles at size 8388608, one per -O level.
    let mut opt_profiles = Vec::new();
    for opt in 0..=3u32 {
        let mut cfg = CpuRunConfig::quartz_default();
        cfg.problem_size = 8_388_608;
        cfg.opt_level = opt;
        cfg.seed = 100 + opt as u64;
        opt_profiles.push(simulate_cpu_run(&cfg));
    }
    let opt_tk = Thicket::loader(&opt_profiles)
        .profile_ids(&(0..4).map(Value::Int).collect::<Vec<_>>())
        .load()
        .expect("compose")
        .0;

    // Query out the Stream kernels (the paper uses the query language).
    let q = Query::builder()
        .any("*")
        .node(".", pred::name_starts_with("Stream_"))
        .build();
    let streams = opt_tk.query(&q).expect("query");

    // Speedup relative to -O0, plus top-down features, per (kernel, opt).
    let kernels = ["Stream_ADD", "Stream_COPY", "Stream_DOT", "Stream_MUL", "Stream_TRIAD"];
    let mut rows: Vec<(String, i64, Vec<f64>)> = Vec::new();
    for kernel in kernels {
        let node = streams.find_node(kernel).expect("stream kernel");
        let t0 = streams
            .metric_at(node, &Value::Int(0), &ColKey::new("time (exc)"))
            .expect("baseline time");
        for opt in 0..4i64 {
            let p = Value::Int(opt);
            let t = streams.metric_at(node, &p, &ColKey::new("time (exc)")).unwrap();
            let ret = streams.metric_at(node, &p, &ColKey::new("Retiring")).unwrap();
            let be = streams.metric_at(node, &p, &ColKey::new("Backend bound")).unwrap();
            rows.push((kernel.to_string(), opt, vec![t0 / t, ret, be]));
        }
    }

    // StandardScaler → silhouette scan → K-means (the paper's pipeline).
    let features: Vec<Vec<f64>> = rows.iter().map(|(_, _, f)| f.clone()).collect();
    let (_, scaled) = StandardScaler::fit_transform(&features);
    let mut best = (2, f64::MIN);
    for k in 2..=6 {
        let km = kmeans(&scaled, &KMeansConfig::new(k).with_seed(17));
        if let Some(s) = silhouette_score(&scaled, &km.labels) {
            if s > best.1 {
                best = (k, s);
            }
        }
    }
    println!("\nsilhouette selects k = {} (score {:.3})", best.0, best.1);
    let km = kmeans(&scaled, &KMeansConfig::new(best.0).with_seed(17));

    println!("{:<14} {:>4} {:>9} {:>9} {:>9}  cluster", "kernel", "opt", "speedup", "retiring", "backend");
    for ((kernel, opt, f), label) in rows.iter().zip(km.labels.iter()) {
        println!(
            "{kernel:<14} -O{opt} {:>9.3} {:>9.3} {:>9.3}  {label}",
            f[0], f[1], f[2]
        );
    }

    // The paper's conclusion: -O2 is the best level for every kernel.
    for kernel in kernels {
        let mut times: Vec<(i64, f64)> = rows
            .iter()
            .filter(|(k, _, _)| k == kernel)
            .map(|(_, o, f)| (*o, f[0]))
            .collect();
        times.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("{kernel}: best optimization level is -O{}", times[0].0);
    }
}
