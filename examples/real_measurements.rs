//! End-to-end with *real* measurements: execute the Stream kernels on
//! actual threads (crossbeam), collect wall-clock call-tree profiles with
//! the Caliper-like collector, write them to disk in the profile format,
//! read them back, and analyze the ensemble with the thicket — proving
//! the pipeline is not simulation-only.
//!
//! ```sh
//! cargo run --release --example real_measurements
//! ```

use thicket::prelude::*;
use thicket_dataframe::AggFn;
use thicket_perfsim::engine::{run_stream_suite, StreamRunConfig};

fn main() {
    let dir = std::env::temp_dir().join("thicket-real-profiles");
    std::fs::create_dir_all(&dir).expect("create profile dir");

    // Run the suite at several thread counts, several runs each.
    let mut paths = Vec::new();
    for threads in [1usize, 2, 4] {
        for run in 0..3 {
            let cfg = StreamRunConfig {
                n: 1 << 20,
                threads,
                reps: 3,
            };
            let (mut profile, dot) = run_stream_suite(&cfg);
            profile.set_metadata("run", run as i64);
            assert!(dot.is_finite());
            let path = dir.join(format!("stream-t{threads}-r{run}.json"));
            profile.save(&path).expect("save profile");
            paths.push(path);
        }
    }
    println!("wrote {} real profiles to {}", paths.len(), dir.display());

    // Read the on-disk ensemble back (the paper's "load data into
    // Thicket" step) and compose.
    let profiles: Vec<Profile> = paths
        .iter()
        .map(|p| Profile::load(p).expect("load profile"))
        .collect();
    let mut tk = Thicket::loader(&profiles).load().expect("compose").0;
    println!("{tk}");

    tk.compute_stats(&[(ColKey::new("time (inc)"), vec![AggFn::Mean, AggFn::Std])])
        .expect("stats");
    println!("mean/std wall-clock time per region across all runs:");
    println!("{}", tk.statsframe_named());

    // Does more parallelism help on this host? Compare per-thread-count
    // means of the whole Stream region.
    let stream = tk.find_node("Stream").expect("Stream region");
    let threads_of = tk.metadata_column(&ColKey::new("omp num threads")).unwrap();
    for t in [1i64, 2, 4] {
        let samples: Vec<f64> = tk
            .metric_series(stream, &ColKey::new("time (inc)"))
            .into_iter()
            .filter(|(p, _)| threads_of.get(p).and_then(|v| v.as_i64()) == Some(t))
            .map(|(_, v)| v)
            .collect();
        println!(
            "threads = {t}: mean Stream time = {:.4} s over {} runs",
            thicket_stats::mean(&samples).unwrap(),
            samples.len()
        );
    }

    // Clean up the temp profiles.
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}
