//! Cross-crate integration tests: full pipelines from profile collection
//! through thicket EDA, mirroring the paper's workflow (Figure 1).

use thicket::prelude::*;
use thicket_dataframe::AggFn;
use thicket_perfsim::engine::{run_stream_suite, StreamRunConfig};
use thicket_perfsim::Compiler;

/// Figure 1 end-to-end: run (simulated) → profiles on disk → load →
/// compose → filter → group → stats.
#[test]
fn full_workflow_via_disk() {
    let dir = std::env::temp_dir().join("thicket-it-workflow");
    std::fs::create_dir_all(&dir).unwrap();

    // Step 1–2: run the app under measurement, write profiles.
    let mut paths = Vec::new();
    for (i, size) in [1_048_576u64, 4_194_304].iter().enumerate() {
        for (j, compiler) in [Compiler::clang9(), Compiler::gcc8()].iter().enumerate() {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.problem_size = *size;
            cfg.compiler = compiler.clone();
            cfg.seed = (i * 2 + j) as u64;
            let p = simulate_cpu_run(&cfg);
            let path = dir.join(format!("run-{i}-{j}.json"));
            p.save(&path).unwrap();
            paths.push(path);
        }
    }

    // Step 3: load into a thicket.
    let profiles: Vec<Profile> = paths.iter().map(|p| Profile::load(p).unwrap()).collect();
    let mut tk = Thicket::loader(&profiles).load().unwrap().0;
    assert_eq!(tk.profiles().len(), 4);

    // Step 4: EDA.
    let clang = tk.filter_metadata(|r| r.str("compiler").as_deref() == Some("clang-9.0.0"));
    assert_eq!(clang.profiles().len(), 2);

    let groups = tk
        .groupby(&[ColKey::new("compiler"), ColKey::new("problem size")])
        .unwrap();
    assert_eq!(groups.len(), 4);

    tk.compute_stats(&[(ColKey::new("time (exc)"), vec![AggFn::Mean, AggFn::Std])])
        .unwrap();
    assert!(tk.statsframe().has_column(&ColKey::new("time (exc)_std")));

    for p in paths {
        std::fs::remove_file(p).ok();
    }
}

/// Real execution path: collector-produced profiles compose and analyze
/// exactly like simulated ones.
#[test]
fn real_measurements_compose() {
    let mut profiles = Vec::new();
    for run in 0..3 {
        let (mut p, dot) = run_stream_suite(&StreamRunConfig {
            n: 1 << 14,
            threads: 2,
            reps: 1,
        });
        assert!(dot.is_finite());
        p.set_metadata("run", run as i64);
        profiles.push(p);
    }
    let mut tk = Thicket::loader(&profiles).load().unwrap().0;
    assert_eq!(tk.profiles().len(), 3);
    // Identical call trees collapse into one graph.
    assert_eq!(tk.graph().len(), 7);
    tk.compute_stats(&[(ColKey::new("time (inc)"), vec![AggFn::Mean])])
        .unwrap();
    assert_eq!(tk.statsframe().len(), 7);
}

/// The query language composes with simulated ensembles and re-keys the
/// performance data consistently.
#[test]
fn query_preserves_metric_values() {
    let profiles: Vec<_> = (0..3)
        .map(|seed| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect();
    let tk = Thicket::loader(&profiles).load().unwrap().0;
    let q = Query::builder()
        .any("*")
        .node(".", pred::name_eq("Apps_VOL3D"))
        .build();
    let sub = tk.query(&q).unwrap();

    let before = tk.find_node("Apps_VOL3D").unwrap();
    let after = sub.find_node("Apps_VOL3D").unwrap();
    for profile in tk.profiles() {
        assert_eq!(
            tk.metric_at(before, &profile, &ColKey::new("time (exc)")),
            sub.metric_at(after, &profile, &ColKey::new("time (exc)")),
        );
    }
}

/// Hierarchical composition round trip with derived metrics (Figures 4
/// and 15 combined).
#[test]
fn compose_and_derive_speedup() {
    let sizes = [1_048_576u64, 4_194_304];
    let cpu = Thicket::loader(
        sizes
            .iter()
            .map(|&s| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.problem_size = s;
                simulate_cpu_run(&cfg)
            })
            .collect::<Vec<_>>(),
    )
    .load()
    .unwrap()
    .0
    .reindex_profiles_by(&ColKey::new("problem size"))
    .unwrap();
    let gpu = Thicket::loader(
        sizes
            .iter()
            .map(|&s| {
                let mut cfg = GpuRunConfig::lassen_default();
                cfg.problem_size = s;
                simulate_gpu_run(&cfg)
            })
            .collect::<Vec<_>>(),
    )
    .load()
    .unwrap()
    .0
    .reindex_profiles_by(&ColKey::new("problem size"))
    .unwrap();

    let mut composed =
        concat_thickets(&[("CPU", &cpu), ("GPU", &gpu)], NodeMatch::Name).unwrap();
    composed
        .add_derived_column(ColKey::grouped("Derived", "speedup"), |r| {
            match (
                r.f64(ColKey::grouped("CPU", "time (exc)")),
                r.f64(ColKey::grouped("GPU", "time (gpu)")),
            ) {
                (Some(c), Some(g)) if g > 0.0 => Value::Float(c / g),
                _ => Value::Null,
            }
        })
        .unwrap();

    // Derived speedup equals the ratio of the source thickets' values.
    let vol_cpu = cpu.find_node("Apps_VOL3D").unwrap();
    let vol_gpu = gpu.find_node("Apps_VOL3D").unwrap();
    for &size in &sizes {
        let p = Value::Int(size as i64);
        let c = cpu.metric_at(vol_cpu, &p, &ColKey::new("time (exc)")).unwrap();
        let g = gpu.metric_at(vol_gpu, &p, &ColKey::new("time (gpu)")).unwrap();
        let row = composed
            .perf_data()
            .index()
            .keys()
            .iter()
            .position(|k| k[0] == Value::from("Apps_VOL3D") && k[1] == p)
            .unwrap();
        let got = composed
            .perf_data()
            .column(&ColKey::grouped("Derived", "speedup"))
            .unwrap()
            .get_f64(row)
            .unwrap();
        assert!((got - c / g).abs() < 1e-12);
    }
}

/// Modeling glue over a simulated MARBL ensemble recovers the planted
/// scaling family end to end (Figure 11's pipeline).
#[test]
fn marbl_modeling_end_to_end() {
    let profiles = marbl_ensemble(&[1, 2, 4, 8, 16], 3);
    let tk = Thicket::loader(&profiles).load().unwrap().0;
    let cts = tk.filter_metadata(|r| r.str("arch").as_deref() == Some("CTS1"));
    let models = model_metric(
        &cts,
        &ColKey::new("avg#inclusive#sum#time.duration"),
        &ColKey::new("mpi.world.size"),
    )
    .unwrap();
    let solver = models.iter().find(|m| m.name == "M_solver->Mult").unwrap();
    assert!(solver.model.c1 < 0.0);
    assert!(solver.model.smape < 5.0);
}

/// Degenerate ensembles fail loudly, not silently.
#[test]
fn failure_modes() {
    // Empty ensemble.
    assert!(Thicket::loader(&[]).load().is_err());

    // Corrupt profile file.
    let dir = std::env::temp_dir().join("thicket-it-corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{not json").unwrap();
    assert!(Profile::load(&bad).is_err());
    std::fs::remove_file(bad).ok();

    // Composing thickets with clashing labels.
    let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
    let tk = Thicket::loader(std::slice::from_ref(&p)).load().unwrap().0;
    assert!(concat_thickets(&[("X", &tk), ("X", &tk)], NodeMatch::Name).is_err());
}

/// NaN metric values flow through stats without poisoning other nodes.
#[test]
fn nan_metrics_contained() {
    let mut p1 = simulate_cpu_run(&CpuRunConfig::quartz_default());
    let node = p1.graph().find_by_name("Stream_DOT").unwrap();
    p1.set_metric(node, "time (exc)", f64::NAN);
    let mut cfg = CpuRunConfig::quartz_default();
    cfg.seed = 1;
    let p2 = simulate_cpu_run(&cfg);
    let mut tk = Thicket::loader(&[p1, p2]).load().unwrap().0;
    tk.compute_stats(&[(ColKey::new("time (exc)"), vec![AggFn::Max])]).unwrap();
    // Other nodes unaffected.
    let vol = tk.find_node("Apps_VOL3D").unwrap();
    let vol_v = tk.value_of_node(vol);
    let row = tk
        .statsframe()
        .index()
        .keys()
        .iter()
        .position(|k| k[0] == vol_v)
        .unwrap();
    let got = tk
        .statsframe()
        .column(&ColKey::new("time (exc)_max"))
        .unwrap()
        .get_f64(row)
        .unwrap();
    assert!(got.is_finite());
}
