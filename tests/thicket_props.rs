//! Property tests over the thicket object itself: composition, filter,
//! groupby, and query invariants on randomized ensembles.

use proptest::prelude::*;
use thicket::prelude::*;
use thicket_graph::{Frame, Graph};

/// Random profile: a tree from a parent vector, metrics on every node,
/// metadata with a categorical "cfg" and a run id.
fn make_profile(parents: &[usize], cfg: u8, run: i64) -> Profile {
    let mut g = Graph::new();
    let mut ids = Vec::new();
    for (i, &p) in parents.iter().enumerate() {
        let name = format!("f{}", i % 6);
        let id = if i == 0 {
            g.add_root(Frame::named(&name))
        } else {
            g.add_child(ids[p % i], Frame::named(&name))
        };
        ids.push(id);
    }
    let mut profile = Profile::new(g);
    profile.set_metadata("cfg", format!("c{}", cfg % 3));
    profile.set_metadata("run", run);
    for (i, &id) in ids.iter().enumerate() {
        profile.set_metric(id, "time", (i + 1) as f64 * (run + 1) as f64 * 0.25);
    }
    profile
}

fn ensemble_strategy() -> impl Strategy<Value = Vec<Profile>> {
    (
        proptest::collection::vec(any::<usize>(), 1..10),
        proptest::collection::vec(any::<u8>(), 1..6),
    )
        .prop_map(|(parents, cfgs)| {
            cfgs.iter()
                .enumerate()
                .map(|(run, &cfg)| make_profile(&parents, cfg, run as i64))
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Composition conserves measurements: the (node, profile) index is
    /// unique (duplicate sibling frames merge by summation), no more rows
    /// than source nodes exist, and the total of the `time` metric is
    /// conserved exactly.
    #[test]
    fn composition_conserves_rows(profiles in ensemble_strategy()) {
        let tk = Thicket::loader(&profiles).load().unwrap().0;
        let max_rows: usize = profiles
            .iter()
            .map(|p| p.graph().ids().filter(|&id| !p.node_metrics(id).is_empty()).count())
            .sum();
        prop_assert!(tk.perf_data().len() <= max_rows);
        prop_assert_eq!(tk.metadata().len(), profiles.len());
        prop_assert!(tk.perf_data().index().is_unique());
        let source_total: f64 = profiles
            .iter()
            .flat_map(|p| p.graph().ids().filter_map(|id| p.metric(id, "time")).collect::<Vec<_>>())
            .sum();
        let composed_total = tk.perf_data().column_sum(&ColKey::new("time")).unwrap();
        prop_assert!((source_total - composed_total).abs() < 1e-9 * (1.0 + source_total));
    }

    /// groupby partitions the profile set exactly.
    #[test]
    fn groupby_partitions_profiles(profiles in ensemble_strategy()) {
        let tk = Thicket::loader(&profiles).load().unwrap().0;
        let groups = tk.groupby(&[ColKey::new("cfg")]).unwrap();
        let total: usize = groups.iter().map(|(_, t)| t.profiles().len()).sum();
        prop_assert_eq!(total, tk.profiles().len());
        // Each subset is homogeneous in the grouping key.
        for (key, sub) in &groups {
            let vals = sub.metadata().unique(&ColKey::new("cfg")).unwrap();
            prop_assert_eq!(vals.len(), 1);
            prop_assert_eq!(vals[0].clone(), key[0].clone());
        }
    }

    /// filter_metadata(p) ∪ filter_metadata(!p) recovers all profiles.
    #[test]
    fn filter_complement(profiles in ensemble_strategy()) {
        let tk = Thicket::loader(&profiles).load().unwrap().0;
        let yes = tk.filter_metadata(|r| r.str("cfg").as_deref() == Some("c0"));
        let no = tk.filter_metadata(|r| r.str("cfg").as_deref() != Some("c0"));
        prop_assert_eq!(yes.profiles().len() + no.profiles().len(), tk.profiles().len());
        prop_assert_eq!(
            yes.perf_data().len() + no.perf_data().len(),
            tk.perf_data().len()
        );
    }

    /// A query that matches every node preserves all perf rows.
    #[test]
    fn universal_query_preserves_rows(profiles in ensemble_strategy()) {
        let tk = Thicket::loader(&profiles).load().unwrap().0;
        let q = Query::builder().any("+").build();
        let all = tk.query(&q).unwrap();
        prop_assert_eq!(all.perf_data().len(), tk.perf_data().len());
        prop_assert_eq!(all.graph().len(), tk.graph().len());
    }

    /// squash never loses perf rows, and every surviving node is measured.
    #[test]
    fn squash_invariants(profiles in ensemble_strategy()) {
        let tk = Thicket::loader(&profiles).load().unwrap().0;
        let sq = tk.squash();
        prop_assert_eq!(sq.perf_data().len(), tk.perf_data().len());
        let measured: std::collections::HashSet<Value> = sq
            .perf_data()
            .index()
            .keys()
            .iter()
            .map(|k| k[0].clone())
            .collect();
        prop_assert_eq!(measured.len(), sq.graph().len());
    }

    /// Aggregated stats rows cover exactly the measured nodes, and the
    /// mean lies within [min, max] per node.
    #[test]
    fn stats_bounds(profiles in ensemble_strategy()) {
        let mut tk = Thicket::loader(&profiles).load().unwrap().0;
        tk.compute_stats(&[(ColKey::new("time"),
            vec![AggFn::Mean, AggFn::Min, AggFn::Max])]).unwrap();
        let measured: std::collections::HashSet<Value> = tk
            .perf_data()
            .index()
            .keys()
            .iter()
            .map(|k| k[0].clone())
            .collect();
        prop_assert_eq!(tk.statsframe().len(), measured.len());
        for row in 0..tk.statsframe().len() {
            let mean = tk.statsframe().column(&ColKey::new("time_mean")).unwrap().get_f64(row).unwrap();
            let min = tk.statsframe().column(&ColKey::new("time_min")).unwrap().get_f64(row).unwrap();
            let max = tk.statsframe().column(&ColKey::new("time_max")).unwrap().get_f64(row).unwrap();
            prop_assert!(min <= mean + 1e-12 && mean <= max + 1e-12);
        }
    }

    /// Profile round trip through disk preserves the composed thicket.
    #[test]
    fn disk_roundtrip_preserves_thicket(profiles in ensemble_strategy()) {
        let dir = std::env::temp_dir().join(format!(
            "thicket-prop-{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let _ = save_ensemble(&dir, &profiles).unwrap();
        let (loaded, _) = load_dir(&dir, None, Strictness::FailFast).unwrap();
        let a = Thicket::loader(&profiles).load().unwrap().0;
        let b = Thicket::loader(&loaded).load().unwrap().0;
        prop_assert_eq!(a.perf_data().len(), b.perf_data().len());
        prop_assert_eq!(a.graph().len(), b.graph().len());
        let mut pa = a.profiles();
        let mut pb = b.profiles();
        pa.sort();
        pb.sort();
        prop_assert_eq!(pa, pb);
        std::fs::remove_dir_all(dir).ok();
    }
}
