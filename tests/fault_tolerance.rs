//! Fault-tolerance end-to-end: a realistic campaign directory with a
//! mix of healthy and corrupt profiles must flow through lenient load
//! and lenient thicket construction without a panic, yielding a usable
//! thicket over exactly the healthy subset plus a complete typed
//! account of everything dropped.

use thicket::prelude::*;
use thicket_perfsim::faults::{inject, inject_all, FaultKind};
use thicket_perfsim::{load_dir, DiagKind};

fn campaign_dir(name: &str, n: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-ft-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let profiles: Vec<_> = (0..n)
        .map(|seed| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect();
    save_ensemble(&dir, &profiles).unwrap();
    dir
}

/// Disk faults → lenient load → thicket → stats, never panicking.
#[test]
fn corrupt_campaign_still_yields_a_workable_thicket() {
    let dir = campaign_dir("campaign", 10);
    let faults = inject_all(&dir, 4).unwrap();
    let corrupted = faults
        .iter()
        .filter(|(k, _)| !matches!(k, FaultKind::DuplicateProfile | FaultKind::Unreadable))
        .count();

    let (profiles, report) = load_dir(&dir, None, Strictness::lenient()).unwrap();
    assert_eq!(profiles.len(), 10 - corrupted);
    assert_eq!(report.dropped(), faults.len());
    // The report renders a human-readable account.
    let rendered = report.to_string();
    assert!(rendered.contains(&format!("{} dropped", faults.len())), "{rendered}");

    // The healthy subset composes and aggregates normally.
    let (mut tk, build_report) = Thicket::loader(&profiles).strictness(Strictness::lenient()).load().unwrap();
    assert!(build_report.is_clean());
    assert_eq!(tk.profiles().len(), profiles.len());
    tk.compute_stats(&[(ColKey::new("time (exc)"), vec![AggFn::Mean])])
        .unwrap();
    assert!(tk.statsframe().has_column(&ColKey::new("time (exc)_mean")));
    std::fs::remove_dir_all(dir).ok();
}

/// The lenient pipeline is deterministic: same faults, same report,
/// for every worker-thread count.
#[test]
fn lenient_pipeline_is_thread_count_invariant() {
    let dir = campaign_dir("invariant", 9);
    inject_all(&dir, 2).unwrap();
    let baseline = load_dir(&dir, Some(1), Strictness::lenient()).unwrap();
    for threads in [2, 8] {
        let got =
            load_dir(&dir, Some(threads), Strictness::lenient()).unwrap();
        assert_eq!(baseline.1, got.1, "report differs at threads={threads}");
        assert_eq!(
            baseline.0.len(),
            got.0.len(),
            "profile count differs at threads={threads}"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

/// Strict mode surfaces the first fault as a typed error naming the
/// offending file — the acceptance contract for fail-fast campaigns.
#[test]
fn strict_mode_error_names_the_corrupt_file() {
    let dir = campaign_dir("strictpath", 6);
    let victim = inject(&dir, FaultKind::Truncate, 1).unwrap();
    let err = load_dir(&dir, None, Strictness::FailFast).map(|_| ()).unwrap_err();
    assert!(
        err.to_string().contains(&victim.display().to_string()),
        "error {err} does not name {}",
        victim.display()
    );
    std::fs::remove_dir_all(dir).ok();
}

/// Every individual ensemble-level fault kind drives the full pipeline
/// to a typed diagnostic — the per-kind acceptance matrix at the facade
/// level. (Store-level kinds have their own matrix in
/// `store_recovery.rs`; they target shard files, not JSON ensembles.)
#[test]
fn every_fault_kind_maps_to_its_diagnostic() {
    for (i, kind) in FaultKind::ENSEMBLE.iter().enumerate() {
        let dir = campaign_dir(&format!("matrix-{i}"), 6);
        inject(&dir, *kind, 9).unwrap();
        let (profiles, report) = load_dir(&dir, None, Strictness::lenient()).unwrap();
        assert_eq!(report.dropped(), 1, "{kind:?}");
        assert!(
            kind.matches(&report.diagnostics[0].kind),
            "{kind:?} surfaced as {:?}",
            report.diagnostics[0].kind
        );
        assert!(!profiles.is_empty());
        // The lenient thicket build accepts whatever survived.
        let (tk, r) = Thicket::loader(&profiles).strictness(Strictness::lenient()).load().unwrap();
        assert!(r.is_clean());
        assert_eq!(tk.profiles().len(), profiles.len());
        std::fs::remove_dir_all(dir).ok();
    }
}

/// A duplicated file on disk surfaces the duplicate-id diagnostic with
/// a pointer back to the first occurrence.
#[test]
fn duplicate_diagnostic_points_at_first_occurrence() {
    let dir = campaign_dir("dup", 6);
    inject(&dir, FaultKind::DuplicateProfile, 0).unwrap();
    let (_, report) = load_dir(&dir, None, Strictness::lenient()).unwrap();
    match &report.diagnostics[0].kind {
        DiagKind::DuplicateProfile { first } => {
            assert!(first.ends_with(".json"), "first occurrence is a path: {first}")
        }
        other => panic!("expected duplicate diagnostic, got {other:?}"),
    }
    std::fs::remove_dir_all(dir).ok();
}
