//! Shape checks for every paper figure the reproduction regenerates:
//! the qualitative findings of each figure, asserted as tests (the
//! DESIGN.md experiment index's acceptance criteria).

use thicket::prelude::*;
use thicket_dataframe::AggFn;
use thicket_learn::{kmeans, silhouette_score, KMeansConfig, StandardScaler};
use thicket_model::Fraction;
use thicket_perfsim::marbl::time_per_cycle;

/// Figure 10: k-means on (speedup vs −O0, retiring, backend bound) for
/// the Stream kernels separates −O0 runs from optimized runs, and −O2 is
/// the best level for every kernel.
#[test]
fn fig10_stream_clusters() {
    let mut profiles = Vec::new();
    for opt in 0..=3u32 {
        let mut cfg = CpuRunConfig::quartz_default();
        cfg.problem_size = 8_388_608;
        cfg.opt_level = opt;
        cfg.seed = 40 + opt as u64;
        profiles.push(simulate_cpu_run(&cfg));
    }
    let tk = Thicket::loader(&profiles)
        .profile_ids(&(0..4i64).map(Value::Int).collect::<Vec<_>>())
        .load()
        .unwrap()
        .0;

    let kernels = ["Stream_ADD", "Stream_COPY", "Stream_DOT", "Stream_MUL", "Stream_TRIAD"];
    let mut labels_by_row: Vec<(String, i64)> = Vec::new();
    let mut features = Vec::new();
    for kernel in kernels {
        let node = tk.find_node(kernel).unwrap();
        let t0 = tk
            .metric_at(node, &Value::Int(0), &ColKey::new("time (exc)"))
            .unwrap();
        for opt in 0..4i64 {
            let p = Value::Int(opt);
            let t = tk.metric_at(node, &p, &ColKey::new("time (exc)")).unwrap();
            let ret = tk.metric_at(node, &p, &ColKey::new("Retiring")).unwrap();
            let be = tk.metric_at(node, &p, &ColKey::new("Backend bound")).unwrap();
            features.push(vec![t0 / t, ret, be]);
            labels_by_row.push((kernel.to_string(), opt));

            // −O2 must be the fastest level for every kernel.
            if opt == 2 {
                for other in [0i64, 1, 3] {
                    let to = tk
                        .metric_at(node, &Value::Int(other), &ColKey::new("time (exc)"))
                        .unwrap();
                    assert!(t < to, "{kernel}: -O2 should beat -O{other}");
                }
            }
        }
    }

    let (_, scaled) = StandardScaler::fit_transform(&features);
    let km = kmeans(&scaled, &KMeansConfig::new(3).with_seed(5));
    assert!(silhouette_score(&scaled, &km.labels).unwrap() > 0.3);

    // All −O0 rows share a cluster, and no optimized row joins it
    // (the paper's Cluster 1).
    let o0_cluster = km.labels[labels_by_row.iter().position(|(_, o)| *o == 0).unwrap()];
    for ((_, opt), &label) in labels_by_row.iter().zip(km.labels.iter()) {
        if *opt == 0 {
            assert_eq!(label, o0_cluster, "-O0 rows should cluster together");
        } else {
            assert_ne!(label, o0_cluster, "optimized rows leave the -O0 cluster");
        }
    }
}

/// Figure 11: the Extra-P fit of the MARBL solver is `c0 + c1·p^(1/3)`
/// with `c1 < 0` on both clusters, and the AWS curve sits below CTS over
/// the measured range.
#[test]
fn fig11_extrap_models() {
    let profiles = marbl_ensemble(&[1, 2, 4, 8, 16, 32], 5);
    let tk = Thicket::loader(&profiles).load().unwrap().0;
    let mut evals = Vec::new();
    for arch in ["CTS1", "C5n.18xlarge"] {
        let sub = tk.filter_metadata(|r| r.str("arch").as_deref() == Some(arch));
        let models = model_metric(
            &sub,
            &ColKey::new("avg#inclusive#sum#time.duration"),
            &ColKey::new("mpi.world.size"),
        )
        .unwrap();
        let solver = models.iter().find(|m| m.name == "M_solver->Mult").unwrap();
        assert_eq!(solver.model.term.exponent, Fraction::new(1, 3), "{arch}");
        assert_eq!(solver.model.term.log_power, 0, "{arch}");
        assert!(solver.model.c1 < 0.0, "{arch}");
        evals.push(solver.model.eval(576.0));
    }
    assert!(evals[1] < evals[0], "AWS solver below CTS");
}

/// Figure 14: VOL3D is the most retiring-heavy kernel; the memory-bound
/// kernels become more backend bound as the problem size scales.
#[test]
fn fig14_topdown_shapes() {
    let sizes = [1_048_576u64, 2_097_152, 4_194_304, 8_388_608];
    let mut by_size = Vec::new();
    for &size in &sizes {
        let mut cfg = CpuRunConfig::quartz_default();
        cfg.problem_size = size;
        cfg.seed = size;
        by_size.push(simulate_cpu_run(&cfg));
    }
    let tk = Thicket::loader(&by_size)
        .profile_ids(&sizes.iter().map(|&s| Value::Int(s as i64)).collect::<Vec<_>>())
        .load()
        .unwrap()
        .0;

    let ret = |kernel: &str, size: u64| {
        let n = tk.find_node(kernel).unwrap();
        tk.metric_at(n, &Value::Int(size as i64), &ColKey::new("Retiring"))
            .unwrap()
    };
    let backend = |kernel: &str, size: u64| {
        let n = tk.find_node(kernel).unwrap();
        tk.metric_at(n, &Value::Int(size as i64), &ColKey::new("Backend bound"))
            .unwrap()
    };

    for size in sizes {
        // VOL3D more compute-bound than the others.
        for other in ["Apps_NODAL_ACCUMULATION_3D", "Lcals_HYDRO_1D", "Stream_DOT"] {
            assert!(
                ret("Apps_VOL3D", size) > ret(other, size),
                "VOL3D retiring should exceed {other} at {size}"
            );
        }
    }
    // Backend bound grows with problem size (data saturation).
    for kernel in ["Apps_NODAL_ACCUMULATION_3D", "Lcals_HYDRO_1D", "Stream_DOT"] {
        assert!(
            backend(kernel, 8_388_608) > backend(kernel, 1_048_576),
            "{kernel} backend bound should grow with size"
        );
        assert!(backend(kernel, 8_388_608) > 0.6);
    }
}

/// Figure 15: at size 8388608, both kernels gain on the GPU, VOL3D gains
/// more, and HYDRO_1D is far more backend bound than VOL3D.
#[test]
fn fig15_speedup_shape() {
    let mut cpu_cfg = CpuRunConfig::quartz_default();
    cpu_cfg.problem_size = 8_388_608;
    let mut gpu_cfg = GpuRunConfig::lassen_default();
    gpu_cfg.problem_size = 8_388_608;
    let cpu = simulate_cpu_run(&cpu_cfg);
    let gpu = simulate_gpu_run(&gpu_cfg);

    let speedup = |kernel: &str| {
        let nc = cpu.graph().find_by_name(kernel).unwrap();
        let ng = gpu.graph().find_by_name(kernel).unwrap();
        cpu.metric(nc, "time (exc)").unwrap() / gpu.metric(ng, "time (gpu)").unwrap()
    };
    let s_vol = speedup("Apps_VOL3D");
    let s_hyd = speedup("Lcals_HYDRO_1D");
    assert!(s_vol > 1.0 && s_hyd > 1.0);
    assert!(s_vol > s_hyd, "VOL3D {s_vol} vs HYDRO {s_hyd}");

    let nc = cpu.graph().find_by_name("Lcals_HYDRO_1D").unwrap();
    let nv = cpu.graph().find_by_name("Apps_VOL3D").unwrap();
    // HYDRO_1D is strongly backend bound, far beyond VOL3D, which keeps
    // a much larger retiring share (paper: ≈90 % vs 54 %/37 %).
    assert!(cpu.metric(nc, "Backend bound").unwrap() > 0.7);
    assert!(
        cpu.metric(nc, "Backend bound").unwrap()
            > cpu.metric(nv, "Backend bound").unwrap() + 0.15
    );
    assert!(cpu.metric(nv, "Retiring").unwrap() > 0.3);
}

/// Figure 17: near-ideal strong scaling (slope ≈ −1 in log2) through 16
/// nodes on both clusters, with AWS consistently faster.
#[test]
fn fig17_strong_scaling() {
    for cluster in [MarblCluster::RzTopaz, MarblCluster::AwsParallelCluster] {
        let t1 = time_per_cycle(&MarblConfig::triple_point(cluster, 1, 0));
        let t16 = time_per_cycle(&MarblConfig::triple_point(cluster, 16, 0));
        let slope = (t16 / t1).log2() / (16f64 / 1.0).log2();
        assert!(
            (-1.05..=-0.8).contains(&slope),
            "{cluster:?} log-log slope {slope}"
        );
    }
    for nodes in [1, 2, 4, 8, 16, 32] {
        let cts = time_per_cycle(&MarblConfig::triple_point(MarblCluster::RzTopaz, nodes, 0));
        let aws = time_per_cycle(&MarblConfig::triple_point(
            MarblCluster::AwsParallelCluster,
            nodes,
            0,
        ));
        assert!(aws < cts);
    }
}

/// Figure 18: walltime is inversely rank-correlated with MPI world size,
/// and AWS walltimes sit below CTS at matched node counts.
#[test]
fn fig18_metadata_relationships() {
    let profiles = marbl_ensemble(&[1, 2, 4, 8, 16, 32], 3);
    let tk = Thicket::loader(&profiles).load().unwrap().0;
    let meta = tk.metadata();
    let ranks: Vec<f64> = (0..meta.len())
        .filter_map(|i| meta.row(i).f64("mpi.world.size"))
        .collect();
    let wall: Vec<f64> = (0..meta.len())
        .filter_map(|i| meta.row(i).f64("walltime"))
        .collect();
    let rho = thicket_stats::spearman(&ranks, &wall).unwrap();
    assert!(rho < -0.9, "spearman(ranks, walltime) = {rho}");

    for nodes in [1i64, 4, 16] {
        let mean_wall = |arch: &str| {
            let v: Vec<f64> = (0..meta.len())
                .filter(|&i| {
                    meta.row(i).str("arch").as_deref() == Some(arch)
                        && meta.row(i).get("numhosts").as_i64() == Some(nodes)
                })
                .filter_map(|i| meta.row(i).f64("walltime"))
                .collect();
            thicket_stats::mean(&v).unwrap()
        };
        assert!(mean_wall("C5n.18xlarge") < mean_wall("CTS1"));
    }
}

/// Figures 9 & 12: the aggregated statistics pipeline over a 10-run
/// ensemble produces positive stds and histograms that bin every run.
#[test]
fn fig09_12_stats_and_histograms() {
    let profiles: Vec<_> = (0..10)
        .map(|seed| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect();
    let mut tk = Thicket::loader(&profiles).load().unwrap().0;
    tk.compute_stats(&[
        (ColKey::new("Retiring"), vec![AggFn::Std]),
        (ColKey::new("Backend bound"), vec![AggFn::Std]),
        (ColKey::new("time (exc)"), vec![AggFn::Std]),
    ])
    .unwrap();

    let node = tk.find_node("Lcals_HYDRO_1D").unwrap();
    let node_v = tk.value_of_node(node);
    let row = tk
        .statsframe()
        .index()
        .keys()
        .iter()
        .position(|k| k[0] == node_v)
        .unwrap();
    for col in ["Retiring_std", "Backend bound_std", "time (exc)_std"] {
        let v = tk
            .statsframe()
            .column(&ColKey::new(col))
            .unwrap()
            .get_f64(row)
            .unwrap();
        assert!(v > 0.0, "{col} should be positive over a noisy ensemble");
    }

    let times: Vec<f64> = tk
        .metric_series(node, &ColKey::new("time (exc)"))
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    let hist = thicket_stats::histogram(&times, 5).unwrap();
    assert_eq!(hist.total(), 10);
    // Filtering the stats table narrows to the two Apps kernels (Fig 9).
    let filtered = tk.filter_stats(|r| {
        let name = tk.node_name(&r.level("node"));
        name == "Apps_NODAL_ACCUMULATION_3D" || name == "Apps_VOL3D"
    });
    assert_eq!(filtered.statsframe().len(), 2);
}
