//! Crash-safety acceptance for the sharded ensemble store: the writer
//! crash-point matrix (a recovered store always serves exactly one
//! generation, never a mix), the store-level fault matrix
//! (inject → fsck classifies → recover → clean reload), metadata
//! pushdown (strictly fewer bytes, same thicket), and thread-count
//! invariance of the diagnostics.

use thicket::prelude::*;
use thicket_perfsim::faults::{inject, FaultKind};
use thicket_perfsim::StoreError;

fn runs(seeds: std::ops::Range<u64>) -> Vec<Profile> {
    seeds
        .map(|seed| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect()
}

fn hash_set(ps: &[Profile]) -> std::collections::BTreeSet<i64> {
    ps.iter().map(|p| p.profile_hash()).collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-storerec-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small shards so every write exercises multiple shard files (and
/// therefore multiple crash points and CRC scopes).
fn opts() -> StoreOptions {
    StoreOptions {
        shard_bytes: 1,
        ..StoreOptions::default()
    }
}

/// Abort the writer at every enumerable crash point; after recovery the
/// store must serve exactly the old batch or exactly the new batch —
/// never a mix, never a loss.
#[test]
fn crash_point_matrix_recovers_to_exactly_one_generation() {
    let old_batch = runs(0..3);
    let new_batch = runs(10..13);
    let old_hashes = hash_set(&old_batch);
    let new_hashes = hash_set(&new_batch);

    // Probe a clean two-generation write to count the crash points of
    // the second save.
    let probe = tmp("probe");
    Store::save_opts(&probe, &old_batch, &opts()).unwrap();
    let clean = Store::save_opts(&probe, &new_batch, &opts()).unwrap();
    std::fs::remove_dir_all(&probe).ok();
    assert!(clean.crash_points >= 7, "points: {}", clean.crash_points);

    for point in 0..clean.crash_points {
        let dir = tmp(&format!("matrix-{point}"));
        Store::save_opts(&dir, &old_batch, &opts()).unwrap();
        let crash_opts = StoreOptions {
            crash_after: Some(point),
            ..opts()
        };
        let err = Store::save_opts(&dir, &new_batch, &crash_opts).unwrap_err();
        assert!(
            matches!(err, StoreError::InjectedCrash { .. }),
            "point {point}: {err}"
        );

        let rec = Store::recover(&dir).unwrap();
        let reader = Store::open(&dir).unwrap();
        let (profiles, report) = reader.load_all().unwrap();
        assert!(report.is_clean(), "point {point}: {report}");
        let got = hash_set(&profiles);
        assert!(
            got == old_hashes || got == new_hashes,
            "point {point}: recovered generation {} is a mix: {got:?}",
            rec.generation
        );
        // Recovery converges: a second pass finds nothing to fix.
        assert!(Store::fsck(&dir).unwrap().is_clean(), "point {point}");
        std::fs::remove_dir_all(dir).ok();
    }
}

/// Every store-level fault kind: inject → fsck classifies the damage
/// with its pinned diagnostic → recover → the store reloads clean.
#[test]
fn store_fault_matrix_classify_recover_reload() {
    for (i, kind) in FaultKind::STORE.iter().enumerate() {
        let dir = tmp(&format!("fault-{i}"));
        let profiles = runs(0..4);
        Store::save_opts(&dir, &profiles, &opts()).unwrap();

        inject(&dir, *kind, 9).unwrap();
        let fsck = Store::fsck(&dir).unwrap();
        assert!(!fsck.is_clean(), "{kind:?} left the store clean");
        assert!(
            fsck.findings().any(|d| kind.matches(&d.kind)),
            "{kind:?} not classified: {fsck}"
        );

        let rec = Store::recover(&dir).unwrap();
        assert!(Store::fsck(&dir).unwrap().is_clean(), "{kind:?}: {rec:?}");
        let (reloaded, report) = Store::open(&dir).unwrap().load_all().unwrap();
        assert!(report.is_clean(), "{kind:?}: {report}");
        // A stale manifest loses no records (the shards are intact);
        // shard damage loses at most the record it hit.
        let lost = profiles.len() - reloaded.len();
        assert!(lost <= 1, "{kind:?} lost {lost} records");
        if *kind == FaultKind::StaleManifest {
            assert_eq!(hash_set(&reloaded), hash_set(&profiles), "{kind:?}");
        }
        std::fs::remove_dir_all(dir).ok();
    }
}

/// Metadata pushdown parses strictly fewer bytes than a full load and
/// the filtered thicket equals filtering the same profiles after a
/// full load.
#[test]
fn pushdown_reads_fewer_bytes_and_matches_filter_after_load() {
    let dir = tmp("pushdown");
    let profiles = runs(0..8);
    Store::save_opts(&dir, &profiles, &opts()).unwrap();

    let full = Store::open(&dir).unwrap();
    let (all, _) = full.load_all().unwrap();
    let full_bytes = full.bytes_read();
    assert_eq!(all.len(), 8);

    let filtered = Store::open(&dir).unwrap();
    let (subset, report) = filtered
        .load_matching(&MetaPred::lt("seed", 3i64))
        .unwrap();
    assert!(report.is_clean());
    assert_eq!(subset.len(), 3);
    assert!(
        filtered.bytes_read() < full_bytes,
        "pushdown read {} bytes, full load {}",
        filtered.bytes_read(),
        full_bytes
    );

    // The pushdown thicket equals the filter-after-full-load thicket.
    let (tk_push, rep_push) = thicket::core::Thicket::loader(LoadSource::store(&dir))
    .filter(MetaPred::lt("seed", 3i64))
    .strictness(Strictness::lenient())
    .load()
    .unwrap();
    assert!(rep_push.is_clean(), "{rep_push}");
    let post: Vec<Profile> = all
        .into_iter()
        .filter(|p| {
            matches!(p.metadata("seed"), Some(Value::Int(s)) if *s < 3)
        })
        .collect();
    let tk_post = Thicket::loader(&post).load().unwrap().0;
    assert_eq!(tk_push.profiles(), tk_post.profiles());
    assert_eq!(tk_push.perf_data(), tk_post.perf_data());
    assert_eq!(tk_push.metadata(), tk_post.metadata());
    std::fs::remove_dir_all(dir).ok();
}

/// A lenient store load on a clean store composes every stored
/// profile; its report chains the store read and the build.
#[test]
fn from_store_composes_full_ensemble() {
    let dir = tmp("fromstore");
    let profiles = runs(0..5);
    Store::save_opts(&dir, &profiles, &opts()).unwrap();
    let (tk, report) = thicket::core::Thicket::loader(LoadSource::store(&dir))
        .strictness(Strictness::lenient())
        .load()
        .unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.attempted, 5);
    assert_eq!(tk.profiles().len(), 5);
    assert_eq!(report.summary(), "ingest: 5/5 loaded, 0 dropped");
    std::fs::remove_dir_all(dir).ok();
}

/// Store-load diagnostics are byte-identical for any worker-thread
/// count, even when records are corrupt.
#[test]
fn corrupt_store_reports_identical_across_thread_counts() {
    let dir = tmp("threads");
    let profiles = runs(0..6);
    Store::save_opts(&dir, &profiles, &opts()).unwrap();
    inject(&dir, FaultKind::BitRot, 5).unwrap();

    let baseline_reader = Store::open(&dir).unwrap();
    let (base_profiles, baseline) = baseline_reader.load_matching_threads(&MetaPred::True, 1).unwrap();
    assert_eq!(baseline.dropped(), 1, "{baseline}");
    for threads in [2, 8] {
        let reader = Store::open(&dir).unwrap();
        let (got_profiles, got) = reader.load_matching_threads(&MetaPred::True, threads).unwrap();
        assert_eq!(baseline, got, "report differs at threads={threads}");
        assert_eq!(
            hash_set(&base_profiles),
            hash_set(&got_profiles),
            "profiles differ at threads={threads}"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

/// Abort `Store::append` at every enumerable crash point; recovery
/// must serve exactly the base batch or exactly the committed
/// base-plus-appended set — never a mix, never a loss of committed
/// profiles.
#[test]
fn append_crash_point_matrix_recovers_to_exactly_one_generation() {
    let base_batch = runs(0..3);
    let new_batch = runs(20..23);
    let base_hashes = hash_set(&base_batch);
    let union_hashes: std::collections::BTreeSet<i64> =
        base_hashes.iter().copied().chain(hash_set(&new_batch)).collect();

    // Probe a clean append to enumerate its crash points.
    let probe = tmp("append-probe");
    Store::save_opts(&probe, &base_batch, &opts()).unwrap();
    let clean = Store::append_opts(&probe, &new_batch, &opts()).unwrap();
    std::fs::remove_dir_all(&probe).ok();
    assert_eq!(clean.appended, 3);
    assert!(clean.crash_points >= 7, "points: {}", clean.crash_points);

    for point in 0..clean.crash_points {
        let dir = tmp(&format!("append-matrix-{point}"));
        Store::save_opts(&dir, &base_batch, &opts()).unwrap();
        let crash_opts = StoreOptions {
            crash_after: Some(point),
            ..opts()
        };
        let err = Store::append_opts(&dir, &new_batch, &crash_opts).unwrap_err();
        assert!(
            matches!(err, thicket_perfsim::StoreError::InjectedCrash { .. }),
            "point {point}: {err}"
        );

        let rec = Store::recover(&dir).unwrap();
        let reader = Store::open(&dir).unwrap();
        let (profiles, report) = reader.load_all().unwrap();
        assert!(report.is_clean(), "point {point}: {report}");
        let got = hash_set(&profiles);
        assert!(
            got == base_hashes || got == union_hashes,
            "point {point}: recovered generation {} is a mix: {got:?}",
            rec.generation
        );
        assert!(Store::fsck(&dir).unwrap().is_clean(), "point {point}");
        std::fs::remove_dir_all(dir).ok();
    }
}

/// Abort `Store::compact` at every enumerable crash point; the profile
/// set is invariant under compaction, so recovery must always serve
/// exactly the pre-compaction profiles, fsck-clean.
#[test]
fn compact_crash_point_matrix_never_loses_a_profile() {
    let profiles = runs(0..5);
    let hashes = hash_set(&profiles);

    let probe = tmp("compact-probe");
    Store::save_opts(&probe, &profiles, &opts()).unwrap();
    // Repack the 1-byte-budget shards (one per profile) into one full
    // shard per generation.
    let clean = Store::compact_opts(&probe, &StoreOptions::default()).unwrap();
    std::fs::remove_dir_all(&probe).ok();
    assert_eq!(clean.profiles, 5);
    assert!(clean.shards < 5, "compaction did not repack: {}", clean.shards);
    assert!(clean.crash_points >= 5, "points: {}", clean.crash_points);

    for point in 0..clean.crash_points {
        let dir = tmp(&format!("compact-matrix-{point}"));
        Store::save_opts(&dir, &profiles, &opts()).unwrap();
        let crash_opts = StoreOptions {
            crash_after: Some(point),
            ..StoreOptions::default()
        };
        let err = Store::compact_opts(&dir, &crash_opts).unwrap_err();
        assert!(
            matches!(err, thicket_perfsim::StoreError::InjectedCrash { .. }),
            "point {point}: {err}"
        );

        Store::recover(&dir).unwrap();
        let reader = Store::open(&dir).unwrap();
        let (reloaded, report) = reader.load_all().unwrap();
        assert!(report.is_clean(), "point {point}: {report}");
        assert_eq!(
            hash_set(&reloaded),
            hashes,
            "point {point}: compaction crash lost or mixed profiles"
        );
        assert!(Store::fsck(&dir).unwrap().is_clean(), "point {point}");
        std::fs::remove_dir_all(dir).ok();
    }
}

/// Older-format stores (v1 row manifests, v2 columnar manifests with
/// JSON payloads) load unchanged through the unified loader, and
/// `Store::compact` migrates each to the v3 binary-payload format with
/// the same profiles and working pushdown.
#[test]
fn old_format_stores_load_unchanged_and_compact_migrates_to_v3() {
    use thicket_perfsim::ManifestVersion;

    for old in [ManifestVersion::V1, ManifestVersion::V2] {
        let dir = tmp(&format!("{old:?}-migrate"));
        let profiles = runs(0..4);
        let old_opts = StoreOptions {
            format: old,
            ..opts()
        };
        Store::save_opts(&dir, &profiles, &old_opts).unwrap();
        assert_eq!(Store::open(&dir).unwrap().manifest().version, old);

        // The old format loads through the same unified front door,
        // pushdown included.
        let (tk_old, report) = thicket::core::Thicket::loader(LoadSource::store(&dir))
            .filter(MetaPred::lt("seed", 2i64))
            .strictness(Strictness::lenient())
            .load()
            .unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(tk_old.profiles().len(), 2);

        let migrated = Store::compact(&dir).unwrap();
        assert_eq!(migrated.profiles, 4, "{old:?}");
        let reader = Store::open(&dir).unwrap();
        assert_eq!(reader.manifest().version, ManifestVersion::V3);

        let (tk_v3, report) = thicket::core::Thicket::loader(LoadSource::store(&dir))
            .filter(MetaPred::lt("seed", 2i64))
            .strictness(Strictness::lenient())
            .load()
            .unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(tk_old.profiles(), tk_v3.profiles());
        assert_eq!(tk_old.perf_data(), tk_v3.perf_data());
        assert_eq!(tk_old.metadata(), tk_v3.metadata());
        std::fs::remove_dir_all(dir).ok();
    }
}
