//! # thicket
//!
//! A from-scratch Rust reproduction of **Thicket: Seeing the Performance
//! Experiment Forest for the Individual Run Trees** (Brink et al.,
//! HPDC '23) — an Exploratory Data Analysis toolkit for *ensembles* of
//! performance profiles: multi-run, multi-scale, multi-architecture,
//! multi-tool.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | role |
//! |---|---|
//! | [`core`] | the thicket object: composition, filtering, grouping, querying, statistics |
//! | [`dataframe`] | multi-indexed column-oriented tables (the pandas stand-in) |
//! | [`graph`] | call trees/DAGs and structural union (the Hatchet stand-in) |
//! | [`query`] | the Call Path Query Language |
//! | [`stats`] | descriptive statistics, correlation, regression |
//! | [`model`] | Extra-P-style scaling-model fitting |
//! | [`learn`] | StandardScaler, k-means, silhouette, PCA (the scikit-learn stand-in) |
//! | [`perfsim`] | profile collection: real instrumented execution plus RAJA-Perf / MARBL simulators |
//! | [`viz`] | call-tree rendering, text and SVG charts |
//!
//! ## Quickstart
//!
//! ```
//! use thicket::prelude::*;
//!
//! // 1. "Run" an ensemble: four RAJA Performance Suite executions.
//! let profiles: Vec<_> = (0..4)
//!     .map(|seed| {
//!         let mut cfg = CpuRunConfig::quartz_default();
//!         cfg.seed = seed;
//!         simulate_cpu_run(&cfg)
//!     })
//!     .collect();
//!
//! // 2. Compose them into a thicket and aggregate across runs.
//! let mut tk = Thicket::loader(&profiles).load().unwrap().0;
//! tk.compute_stats(&[(ColKey::new("time (exc)"), vec![AggFn::Mean, AggFn::Std])])
//!     .unwrap();
//! assert!(tk.statsframe().has_column(&ColKey::new("time (exc)_std")));
//! ```

pub use thicket_core as core;
pub use thicket_dataframe as dataframe;
pub use thicket_graph as graph;
pub use thicket_learn as learn;
pub use thicket_model as model;
pub use thicket_perfsim as perfsim;
pub use thicket_query as query;
pub use thicket_stats as stats;
pub use thicket_viz as viz;

/// The most common imports in one place.
pub mod prelude {
    pub use thicket_core::{
        concat_thickets, model_metric, LoadSource, Loader, NodeMatch, PredExpr, Thicket,
    };
    pub use thicket_dataframe::{AggFn, ColKey, DataFrame, Index, JoinHow, Value};
    pub use thicket_graph::{Frame, Graph, GraphUnion, NodeId};
    pub use thicket_learn::{dbscan, kmeans, pca, silhouette_score, KMeansConfig, StandardScaler};
    pub use thicket_model::{fit_model, fit_model2};
    pub use thicket_perfsim::{
        load_dir, marbl_ensemble, save_ensemble, simulate_cpu_run, simulate_gpu_run, Collector,
        CpuRunConfig, GpuRunConfig, IngestReport, MarblCluster, MarblConfig, MetaPred, Profile,
        Store, StoreEntry, StoreOptions, Strictness,
    };
    pub use thicket_query::{parse_pred, pred, Query};
}
