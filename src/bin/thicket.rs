//! `thicket` — a small CLI for exploring on-disk profile ensembles.
//!
//! ```text
//! thicket <PROFILE_DIR> [COMMAND]
//!
//! COMMANDS:
//!   summary                     ensemble overview (default)
//!   metadata                    print the metadata table
//!   perf [N]                    print the first N perf-data rows (default 20)
//!   stats <METRIC>              mean/std/min/max of METRIC per node
//!   tree <METRIC>               call tree annotated with METRIC (first profile)
//!   query <QUERY> <METRIC>      apply a string-dialect query, print the tree
//!   csv  <perf|metadata|stats>  CSV to stdout
//! ```

use std::process::ExitCode;
use thicket::prelude::*;
use thicket_dataframe::AggFn;
use thicket_perfsim::{load_dir, Strictness};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("thicket: {msg}");
            eprintln!(
                "usage: thicket <PROFILE_DIR> [summary|metadata|perf [N]|stats <METRIC>|tree <METRIC>|query <QUERY> <METRIC>|csv <perf|metadata|stats>]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or("missing profile directory")?;
    let (profiles, _) = load_dir(dir, None, Strictness::FailFast).map_err(|e| format!("loading {dir}: {e}"))?;
    if profiles.is_empty() {
        return Err(format!("no profiles found in {dir}"));
    }
    let mut tk = Thicket::loader(&profiles)
        .load()
        .map_err(|e| e.to_string())?
        .0;

    let command = args.get(1).map(String::as_str).unwrap_or("summary");
    match command {
        "summary" => {
            print!("{tk}");
            println!("metric columns:");
            for key in tk.perf_data().column_keys() {
                println!("  {key}");
            }
            println!("metadata columns:");
            for key in tk.metadata().column_keys() {
                println!("  {key}");
            }
        }
        "metadata" => print!("{}", tk.metadata()),
        "perf" => {
            let n: usize = args
                .get(2)
                .map(|s| s.parse().map_err(|_| format!("bad row count {s:?}")))
                .transpose()?
                .unwrap_or(20);
            print!("{}", tk.perf_data_named().head(n));
        }
        "stats" => {
            let metric = args.get(2).ok_or("stats needs a metric name")?;
            tk.compute_stats(&[(
                ColKey::new(metric),
                vec![AggFn::Mean, AggFn::Std, AggFn::Min, AggFn::Max],
            )])
            .map_err(|e| e.to_string())?;
            print!("{}", tk.statsframe_named());
        }
        "tree" => {
            let metric = args.get(2).ok_or("tree needs a metric name")?;
            let profile = tk.profiles()[0].clone();
            print!("{}", tk.tree(&ColKey::new(metric), &profile));
        }
        "query" => {
            let query = args.get(2).ok_or("query needs a query string")?;
            let metric = args.get(3).ok_or("query needs a metric name")?;
            let sub = tk.query_str(query).map_err(|e| e.to_string())?;
            if sub.graph().is_empty() {
                println!("(no nodes matched)");
            } else {
                let profile = sub.profiles()[0].clone();
                print!("{}", sub.tree(&ColKey::new(metric), &profile));
            }
        }
        "csv" => {
            let what = args.get(2).map(String::as_str).unwrap_or("perf");
            match what {
                "perf" => print!("{}", tk.perf_csv()),
                "metadata" => print!("{}", tk.metadata_csv()),
                "stats" => {
                    tk.compute_stats_all(AggFn::Mean).map_err(|e| e.to_string())?;
                    print!("{}", tk.stats_csv());
                }
                other => return Err(format!("unknown csv target {other:?}")),
            }
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}
