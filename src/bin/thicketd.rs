//! `thicketd` — the Thicket query daemon, plus the client verbs that
//! drive it from scripts (tier1.sh's service smoke uses exactly these).
//!
//! ```text
//! thicketd seed <STORE_DIR> [--profiles N] [--base-seed S]
//! thicketd serve <STORE_DIR> [--addr HOST:PORT] [--workers N]
//!                            [--queue N] [--deadline-ms N] [--debug-ops]
//! thicketd query <ADDR> [PRED]          filtered load; prints counts
//! thicketd callpath <ADDR> <QUERY>      call-path query; prints nodes
//! thicketd status <ADDR>                server/store status
//! ```
//!
//! `serve` binds (port 0 = ephemeral), prints `listening on ADDR` to
//! stdout, and runs until SIGTERM — on which it stops accepting,
//! drains in-flight requests (releasing every per-request pin), and
//! exits 0.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::time::Duration;

use thicket_perfsim::{simulate_cpu_run, CpuRunConfig, Store};
use thicket_serve::{ServeOptions, Server, ThicketClient};

/// SIGTERM/SIGINT latch, set from the signal handler.
static TERM: AtomicBool = AtomicBool::new(false);

/// Write end of the self-pipe; the handler pokes it so the main
/// thread's blocking read wakes immediately (no poll tick).
static TERM_WAKE_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn pipe(fds: *mut i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
    // Self-pipe trick: `write(2)` is async-signal-safe, and one byte
    // into the pipe turns the latch into an event the blocked main
    // thread observes immediately.
    let fd = TERM_WAKE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        unsafe {
            write(fd, [1u8].as_ptr(), 1);
        }
    }
}

/// Install the shutdown handler via libc `signal(2)` and create the
/// self-pipe it signals through — std links libc already, so no new
/// dependency. SIGTERM = 15, SIGINT = 2 on every platform this repo
/// targets. Returns the read end of the pipe (or -1 if `pipe(2)`
/// failed, in which case the wait falls back to polling the latch).
fn install_signal_handlers() -> i32 {
    let mut fds = [-1i32; 2];
    let piped = unsafe { pipe(fds.as_mut_ptr()) } == 0;
    if piped {
        TERM_WAKE_FD.store(fds[1], Ordering::SeqCst);
    }
    unsafe {
        signal(15, on_term as extern "C" fn(i32) as usize);
        signal(2, on_term as extern "C" fn(i32) as usize);
    }
    if piped {
        fds[0]
    } else {
        -1
    }
}

/// Block until the TERM latch is set: a blocking read on the
/// self-pipe's read end. The signal handler's write wakes the read;
/// an `EINTR` return re-checks the latch and re-blocks. Without a
/// pipe, degrade to the old 25 ms latch poll.
fn wait_for_term(pipe_rd: i32) {
    let mut buf = [0u8; 8];
    while !TERM.load(Ordering::SeqCst) {
        if pipe_rd < 0 {
            std::thread::sleep(Duration::from_millis(25));
            continue;
        }
        unsafe {
            read(pipe_rd, buf.as_mut_ptr(), buf.len());
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("thicketd: {msg}");
            eprintln!(
                "usage: thicketd <seed <DIR> [--profiles N] [--base-seed S]\n\
                 \x20              | serve <DIR> [--addr A] [--workers N] [--queue N] [--deadline-ms N] [--debug-ops]\n\
                 \x20              | query <ADDR> [PRED] | callpath <ADDR> <QUERY> | status <ADDR>>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Parse `--flag value` pairs and boolean `--flag`s from `args`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(text) => text.parse().map_err(|_| format!("bad value for {flag}: {text:?}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let verb = args.first().map(String::as_str).ok_or("missing subcommand")?;
    let rest = &args[1..];
    match verb {
        "seed" => seed(rest),
        "serve" => serve(rest),
        "query" => {
            let addr = rest.first().ok_or("query needs an address")?;
            let pred = rest.get(1).map(String::as_str);
            let (generation, profiles) = ThicketClient::new(addr)
                .load_matching(pred)
                .map_err(|e| e.to_string())?;
            println!("generation {generation}: {} matching profiles", profiles.len());
            Ok(())
        }
        "callpath" => {
            let addr = rest.first().ok_or("callpath needs an address")?;
            let query = rest.get(1).ok_or("callpath needs a query string")?;
            let (nodes, rows) = ThicketClient::new(addr)
                .query_nodes(query, None)
                .map_err(|e| e.to_string())?;
            println!("{} nodes, {rows} perf rows", nodes.len());
            for n in nodes {
                println!("  {n}");
            }
            Ok(())
        }
        "status" => {
            let addr = rest.first().ok_or("status needs an address")?;
            let s = ThicketClient::new(addr).status().map_err(|e| e.to_string())?;
            println!(
                "generation {} · {} profiles · served {} · shed {} · up {} ms",
                s.generation, s.profiles, s.served, s.shed, s.uptime_ms
            );
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Build a store of simulated RAJA-Perf runs to serve.
fn seed(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or("seed needs a store directory")?;
    let n: usize = parse_flag(args, "--profiles", 16)?;
    let base: u64 = parse_flag(args, "--base-seed", 0)?;
    let profiles: Vec<_> = (0..n)
        .map(|i| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = base + i as u64;
            // Two problem sizes so metadata predicates have something
            // to select on.
            if i % 2 == 1 {
                cfg.problem_size /= 2;
            }
            simulate_cpu_run(&cfg)
        })
        .collect();
    let report = Store::save(dir, &profiles).map_err(|e| e.to_string())?;
    println!("seeded {} profiles into {dir} ({} shards)", n, report.shards);
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or("serve needs a store directory")?;
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:0");
    let mut opts = ServeOptions {
        workers: parse_flag(args, "--workers", 2)?,
        queue_depth: parse_flag(args, "--queue", 32)?,
        enable_debug_ops: args.iter().any(|a| a == "--debug-ops"),
        ..ServeOptions::default()
    };
    let deadline_ms: u64 = parse_flag(args, "--deadline-ms", 10_000)?;
    opts.request_deadline = Duration::from_millis(deadline_ms);

    // Refuse to serve a directory without a verifiable generation: a
    // typo'd path should fail at startup, not per-request.
    Store::open(dir).map_err(|e| format!("store {dir}: {e}"))?;

    let pipe_rd = install_signal_handlers();
    let server = Server::bind(dir, addr, opts).map_err(|e| format!("bind {addr}: {e}"))?;
    // The smoke script scrapes this line for the ephemeral port.
    println!("listening on {}", server.addr());
    use std::io::Write;
    std::io::stdout().flush().ok();

    wait_for_term(pipe_rd);
    let served = server.served();
    server.shutdown();
    println!("drained after {served} requests; exiting");
    Ok(())
}
