//! Value-generation strategies: the `Strategy` trait, primitive
//! implementations (ranges, `&str` regex subsets, tuples), and the
//! combinators the workspace's property tests use (`prop_map`,
//! `prop_flat_map`, `prop_recursive`, `boxed`, unions).
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with the asserted values instead of a minimized counterexample.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// Something that can generate values of a fixed type from randomness.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategy: `self` is the leaf; `recurse` builds a branch
    /// from a strategy for the level below. `depth` bounds the nesting;
    /// the size hints of upstream proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        cur
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_value(rng)
    }
}

trait DynStrategy<T> {
    fn dyn_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice among alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over the given arms; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.choice(self.arms.len());
        self.arms[i].new_value(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i128_in(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.i128_in(lo as i128, hi as i128 + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

// u64 needs care: `u64::MAX as i128 + 1` still fits, so the macro body
// would work, but keep it explicit for the full-domain case.
impl Strategy for core::ops::Range<u64> {
    type Value = u64;
    fn new_value(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.i128_in(self.start as i128, self.end as i128) as u64
    }
}

impl Strategy for core::ops::RangeInclusive<u64> {
    type Value = u64;
    fn new_value(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        rng.i128_in(lo as i128, hi as i128 + 1) as u64
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64_unit() as f32 * (self.end - self.start)
    }
}

/// String strategies: a `&str` pattern is interpreted as the regex subset
/// `(<charclass or literal>{m,n}?)*` — enough for the character-class
/// patterns property tests conventionally use (e.g. `"[a-z]{0,6}"`).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy::unit")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-5i64..7).new_value(&mut r);
            assert!((-5..7).contains(&v));
            let f = (0.5f64..2.0).new_value(&mut r);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..4).prop_flat_map(|n| (0usize..10).prop_map(move |v| vec![v; n]));
        for _ in 0..100 {
            let v = s.new_value(&mut r);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut r = rng();
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.new_value(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_bounds_depth() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(()).prop_map(|_| T::Leaf).prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&s.new_value(&mut r)) <= 3);
        }
    }
}
