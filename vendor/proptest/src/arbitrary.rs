//! `any::<T>()` for the primitive types the workspace's tests draw
//! without an explicit range.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    fn arbitrary() -> ArbFn<Self>;
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbFn<T> {
    T::arbitrary()
}

/// Function-backed strategy used by [`any`].
#[derive(Clone, Copy)]
pub struct ArbFn<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for ArbFn<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbFn<$t> {
                ArbFn(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> ArbFn<bool> {
        ArbFn(TestRng::bool)
    }
}

impl Arbitrary for f64 {
    // Finite values only (a tame subset of upstream's domain).
    fn arbitrary() -> ArbFn<f64> {
        ArbFn(|rng| (rng.f64_unit() - 0.5) * 2e12)
    }
}

impl Arbitrary for f32 {
    fn arbitrary() -> ArbFn<f32> {
        ArbFn(|rng| ((rng.f64_unit() - 0.5) * 2e6) as f32)
    }
}

impl Arbitrary for char {
    // Printable ASCII keeps generated text debuggable.
    fn arbitrary() -> ArbFn<char> {
        ArbFn(|rng| char::from_u32(rng.usize_in(0x20, 0x7e) as u32).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_domains() {
        let mut rng = TestRng::for_test("arbitrary::unit");
        let mut seen = [false; 256];
        let s = any::<u8>();
        for _ in 0..8000 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() > 250);
        let sb = any::<bool>();
        let (mut t, mut f) = (false, false);
        for _ in 0..100 {
            if sb.new_value(&mut rng) { t = true } else { f = true }
        }
        assert!(t && f);
    }
}
