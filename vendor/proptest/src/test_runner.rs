//! Case runner plumbing: configuration, the per-test RNG, and the
//! rejection marker used by `prop_assume!`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Marker returned (via `Err`) when `prop_assume!` rejects a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Runner configuration. Only `cases` is consulted by the shim; the
/// remaining knobs of upstream proptest are accepted-and-ignored through
/// `Default`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Resolve the case count, honouring a `PROPTEST_CASES` env override.
pub fn resolved_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// Deterministic per-test random source. Seeded from the test's path so
/// every run (and every machine) explores the same inputs; set
/// `PROPTEST_SEED` to explore a different universe.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let base = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.parse().unwrap_or(0u64),
            Err(_) => 0,
        };
        // FNV-1a over the test path, mixed with the optional user seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen_range(0u64..=u64::MAX)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return lo;
        }
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `i128` in `[lo, hi)` (wide enough for every int strategy).
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        let v = (((self.next_u64() as u128) << 64) | self.next_u64() as u128) % span;
        lo + v as i128
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        self.rng.gen_range(0.0f64..1.0)
    }

    /// Uniform choice among `n` alternatives.
    pub fn choice(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.rng.gen_range(0..n)
    }

    /// Random bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
