//! Tiny regex-subset string generator backing the `&str` strategy.
//!
//! Supported syntax: literal characters, `[...]` character classes with
//! ranges and `\`-escapes, and the repetition suffixes `{m}`, `{m,n}`,
//! `?`, `*`, `+` (unbounded repeats are capped at 8). This covers the
//! class-plus-count patterns the workspace's property tests use, e.g.
//! `"[a-z]{0,6}"`.

use crate::test_runner::TestRng;

/// One pattern element: a set of `(lo, hi)` inclusive char ranges plus a
/// repetition count range.
struct Token {
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse(pattern: &str) -> Vec<Token> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    i += 1;
                    // `a-z` range (a trailing `-` is a literal dash).
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(i < chars.len(), "unterminated [class] in pattern {pattern:?}");
                i += 1; // skip ']'
                ranges
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                vec![(c, c)]
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // Optional repetition suffix.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .expect("unterminated {m,n} in pattern");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => {
                            let m: usize = m.trim().parse().expect("bad {m,n}");
                            let n: usize = n.trim().parse().expect("bad {m,n}");
                            (m, n)
                        }
                        None => {
                            let m: usize = body.trim().parse().expect("bad {m}");
                            (m, m)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        tokens.push(Token { ranges, min, max });
    }
    tokens
}

fn pick(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
    let mut idx = rng.usize_in(0, total as usize - 1) as u32;
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if idx < span {
            return char::from_u32(lo as u32 + idx).expect("range landed on a non-char");
        }
        idx -= span;
    }
    unreachable!("pick index exceeded range total")
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for tok in parse(pattern) {
        let n = rng.usize_in(tok.min, tok.max);
        for _ in 0..n {
            out.push(pick(&tok.ranges, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen100(pattern: &str) -> Vec<String> {
        let mut rng = TestRng::for_test("string::unit");
        (0..100).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_with_count() {
        for s in gen100("[a-z]{0,6}") {
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn escapes_and_literals() {
        // The exact class used by the core round-trip tests.
        let allowed = |c: char| {
            c.is_ascii_alphanumeric() || " _-\"\\\n\t".contains(c)
        };
        for s in gen100("[a-zA-Z0-9 _\\-\"\\\\\n\t]{0,12}") {
            assert!(s.len() <= 12);
            assert!(s.chars().all(allowed), "bad char in {s:?}");
        }
        assert!(gen100("ab{2}c").iter().all(|s| s == "abbc"));
    }
}
