//! Offline shim for the `proptest` API subset used by this workspace.
//!
//! Implements `proptest!` (with optional `#![proptest_config(...)]`),
//! `prop_assert*`, `prop_assume!`, `prop_oneof!`, range/tuple/str
//! strategies, `any::<T>()`, and `collection::{vec, hash_set}` on top of
//! a deterministic per-test RNG. Differences from upstream: no
//! shrinking (failures report the raw generated values) and seeds derive
//! from the test path (override with `PROPTEST_SEED`; case count with
//! `PROPTEST_CASES`).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface test files expect.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs from the strategies and runs the
/// body for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cases = $crate::test_runner::resolved_cases(($cfg).cases);
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __cases.saturating_mul(20).max(1000);
                while __accepted < __cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest: prop_assume! rejected too many cases in `{}` \
                         ({} accepted of {} wanted after {} attempts)",
                        stringify!($name),
                        __accepted,
                        __cases,
                        __attempts,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    // The immediately-called closure scopes `?`-style
                    // rejection (prop_assume!) to this one case.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if __outcome.is_ok() {
                        __accepted += 1;
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Reject the current case unless the condition holds; the runner draws
/// a replacement case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among alternative strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn draws_respect_strategies(x in 0i64..10, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(v.len() < 4);
        }

        fn assume_rejects_without_failing(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        fn oneof_and_str_strategies(tag in prop_oneof![Just(0u8), Just(1u8)], s in "[a-z]{1,3}") {
            prop_assert!(tag < 2);
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert_ne!(s.as_str(), "");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("same::name");
        let mut b = crate::test_runner::TestRng::for_test("same::name");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
