//! Collection strategies: `vec` and `hash_set` with a flexible size
//! specification (`usize`, `a..b`, or `a..=b`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;

/// Inclusive size bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.usize_in(self.size.lo, self.size.hi);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
///
/// Best-effort on size: if the element domain is too small to reach the
/// drawn target, the set is returned at whatever size the bounded number
/// of draws achieved (upstream proptest rejects instead).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

/// See [`hash_set`].
#[derive(Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = rng.usize_in(self.size.lo, self.size.hi);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 100 + 100 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_elements() {
        let mut rng = TestRng::for_test("collection::unit");
        let s = vec(0i64..5, 2..7);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    #[test]
    fn hash_set_hits_target_when_domain_allows() {
        let mut rng = TestRng::for_test("collection::unit2");
        let s = hash_set(0i64..1000, 5..=5);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut rng).len(), 5);
        }
    }
}
