//! Offline shim for the `rand` 0.8 API subset used by this workspace.
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over the primitive range types the workspace
//! samples from. The generator is xoshiro256** seeded through SplitMix64:
//! deterministic for a given seed across runs and platforms (but not
//! bit-compatible with upstream `rand`'s ChaCha-based `StdRng`, which no
//! in-tree consumer relies on).

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`start..end` or `start..=end`).
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 so that nearby seeds produce unrelated streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<usize> = (0..8).map(|_| c.gen_range(0..1000)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<usize> = (0..8).map(|_| d.gen_range(0..1000)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(3usize..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn f64_unit_covers_span() {
        let mut r = StdRng::seed_from_u64(1);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for _ in 0..10_000 {
            let v = r.gen_range(0.0f64..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95);
    }
}
