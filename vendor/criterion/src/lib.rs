//! Offline shim for the `criterion` API subset used by this workspace.
//!
//! Real wall-clock measurement with warmup, fixed-sample statistics
//! (mean / median / min), and plain-text reporting — but none of
//! upstream's adaptive sampling, outlier analysis, or HTML reports.
//! `cargo test` passes `--test` to harness-less bench binaries; in that
//! mode every benchmark body runs exactly once as a smoke test. A
//! positional CLI argument acts as a substring filter on benchmark ids.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like upstream.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Clone, Copy)]
enum Mode {
    /// Full timing run.
    Measure,
    /// `--test`: one iteration per benchmark, no timing output.
    Smoke,
}

/// Top-level driver handed to every `criterion_group!` target function.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Smoke,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { mode, filter, sample_size: 60 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Benchmark a single closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.to_string(), sample_size, |b| f(b));
        self
    }

    fn skip(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => !id.contains(f.as_str()),
            None => false,
        }
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if self.skip(&id) {
            return;
        }
        match self.mode {
            Mode::Smoke => {
                let mut b = Bencher { mode: Mode::Smoke, samples: Vec::new() };
                f(&mut b);
                println!("test {id} ... ok");
            }
            Mode::Measure => {
                // Warmup: run the body untimed for ~3 iterations or 200ms.
                let mut b = Bencher { mode: Mode::Smoke, samples: Vec::new() };
                let warm_start = Instant::now();
                for _ in 0..3 {
                    f(&mut b);
                    if warm_start.elapsed() > Duration::from_millis(200) {
                        break;
                    }
                }
                let mut b = Bencher { mode: Mode::Measure, samples: Vec::with_capacity(sample_size) };
                while b.samples.len() < sample_size {
                    f(&mut b);
                    // Keep any single benchmark under ~3s of sampling.
                    if b.samples.iter().sum::<Duration>() > Duration::from_secs(3)
                        && b.samples.len() >= 10
                    {
                        break;
                    }
                }
                report(&id, &b.samples);
            }
        }
    }
}

/// Group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(full, n, |b| f(b));
        self
    }

    /// Benchmark a closure that borrows a fixed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let n = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(full, n, |b| f(b, input));
        self
    }

    /// End the group (upstream flushes reports here; the shim reports
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Collects timed iterations of a benchmark body.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `body` (or run it once untimed in smoke
    /// mode). The closure's return value is passed through `black_box`
    /// so results are not optimized away.
    pub fn iter<O, F>(&mut self, mut body: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::Smoke => {
                black_box(body());
            }
            Mode::Measure => {
                let start = Instant::now();
                black_box(body());
                self.samples.push(start.elapsed());
            }
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    println!(
        "{id:<48} mean {:>12} median {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(median),
        fmt_duration(min),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher { mode: Mode::Measure, samples: Vec::new() };
        for _ in 0..5 {
            b.iter(|| black_box(1 + 1));
        }
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("join", 10).0, "join/10");
        assert_eq!(BenchmarkId::from_parameter(560).0, "560");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
