//! Offline shim for the `parking_lot` API subset used by this workspace:
//! non-poisoning [`Mutex`] and [`RwLock`] built on `std::sync`. A panicked
//! lock holder does not poison the lock — subsequent `lock()` calls
//! recover the inner state, matching `parking_lot` semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
