//! Offline shim for the `crossbeam` API subset used by this workspace:
//! `crossbeam::thread::scope` with scoped `spawn`, backed by
//! `std::thread::scope` (stable since Rust 1.63).

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Result of [`scope`]: `Err` carries a child panic payload. With the
    /// `std` backing, a child panic propagates out of the scope itself, so
    /// in practice this is always `Ok` — callers `.expect()` it either way.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a spawned scoped thread.
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    /// A scope in which threads borrowing the enclosing stack frame can
    /// be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope again so nested spawns are possible (crossbeam's
        /// signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a [`Scope`]; returns once every spawned thread has
    /// finished.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack() {
        let data = [1u64, 2, 3, 4];
        let mut partial = [0u64; 2];
        super::thread::scope(|scope| {
            let (a, b) = partial.split_at_mut(1);
            let (lo, hi) = data.split_at(2);
            scope.spawn(|_| a[0] = lo.iter().sum());
            scope.spawn(|_| b[0] = hi.iter().sum());
        })
        .unwrap();
        assert_eq!(partial[0] + partial[1], 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    flag.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(flag.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
