#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, lint-clean.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# Fault-injection smoke: corrupt ensembles must degrade into typed
# diagnostics, never a panic (cheap: binaries already built above).
cargo test -q --test fault_tolerance
cargo test -q -p thicket-perfsim --test faults
# Store crash-safety smoke: write a sharded store, inject each store
# fault, fsck classifies, recover, reload clean — plus the writer
# crash-point matrix and the single-bit-flip CRC property.
cargo test -q --test store_recovery
cargo test -q -p thicket-perfsim --test store_props
# Doc examples (the loader-builder docs especially) must compile and run.
cargo test -q --doc
# v3 fault-injection smoke + writer/append crash-point matrices under
# --release: optimized builds must hit the same typed-diagnostic paths
# (bounds checks and CRC verification are not debug-only behavior).
cargo test -q --release -p thicket-perfsim --test faults v3_
cargo test -q --release --test store_recovery crash_point
# Predicate-engine equivalence properties: vectorized bitmap evaluation
# must agree with the row-wise reference on random frames/null masks/ASTs,
# compiled MetaPred/dialect predicates with their legacy semantics, and
# loader results must be thread-count invariant (1/2/8).
cargo test -q -p thicket-dataframe --test proptests
cargo test -q -p thicket-query --test proptests
cargo test -q -p thicket-core --test planner
cargo test -q -p thicket-core --test proptests filter_expr_thread_invariant
# Concurrency smoke under --release: the live-contention matrix (readers
# × appender × compactor with GC on), the chaos-schedule linearization
# check, and the kill-9 subprocess recovery test — timing-sensitive
# paths that only mean something on optimized builds.
cargo test -q --release -p thicket-perfsim --test concurrency
# W4 smoke under --release: the predicate workload end-to-end (row-walk
# vs vectorized vs planner pushdown) on a small 60-profile store — this
# exercises select_expr, load_matching_expr, and the residual path on
# optimized builds, not the recorded PERF.md numbers.
cargo run -q -p thicket-bench --release --example payload_bench -- 60 w4
# Streaming trace ingest: emitter/reader round-trips, the chunk-boundary
# and thread invariance properties, and the trace fault family (torn /
# out-of-order / unbalanced event streams → typed diagnostics).
cargo test -q -p thicket-perfsim --lib trace
cargo test -q -p thicket-core --test trace_stream
# W7 bounded-memory smoke under --release: stream a trace ≥4× the RSS
# budget through the LoadSource::trace pipeline in a fresh child process
# and fail if its VmHWM reaches the budget — the O(depth × ranks)
# memory claim is enforced, not just documented.
cargo run -q -p thicket-bench --release --example trace_bench -- smoke
# Service layer: protocol/service suites, then the wire chaos schedule
# (torn frames, oversized lengths, slow-loris, connection kills, one
# kill-9 of the daemon) under --release — recovery timing only means
# something on optimized builds.
cargo test -q -p thicket-serve
cargo test -q --release -p thicket-serve --test chaos
# Live daemon smoke under --release: seed a store, start thicketd on an
# ephemeral port, one filtered query + one call-path query through the
# client verbs, SIGTERM, assert a clean drain and zero leftover leases.
SMOKE_DIR=$(mktemp -d)
./target/release/thicketd seed "$SMOKE_DIR/store" --profiles 12 > /dev/null
./target/release/thicketd serve "$SMOKE_DIR/store" > "$SMOKE_DIR/serve.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/serve.log")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "tier1: thicketd never published an address"; exit 1; }
./target/release/thicketd query "$ADDR" 'seed >= 6' | grep -q '6 matching profiles'
./target/release/thicketd callpath "$ADDR" '("*", name contains "Stream")' | grep -q 'Stream_MUL'
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" # non-zero exit here = the drain was not clean
grep -q 'drained after' "$SMOKE_DIR/serve.log"
LEFTOVER=$(find "$SMOKE_DIR/store" -name 'pin-*' | wc -l)
[ "$LEFTOVER" -eq 0 ] || { echo "tier1: thicketd left $LEFTOVER lease files"; exit 1; }
rm -rf "$SMOKE_DIR"
# Benches must at least compile (they are not run here: tier-1 stays fast).
cargo bench -p thicket-bench --no-run
# All targets: library code AND tests/benches/bins lint-clean.
cargo clippy --all-targets -- -D warnings
echo "tier1: OK"
