#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, lint-clean.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
echo "tier1: OK"
